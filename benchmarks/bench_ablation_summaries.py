"""Ablation: layered summarization vs monolithic symbolic execution.

DESIGN.md calls out summarization as the key design choice; this ablation
quantifies it by verifying the same engine on the same zone twice — once
with the layered pipeline (TreeSearch and Find replaced by their summary
specifications when Resolve is verified) and once fully inlined. Both must
reach the same verdict; the comparison shows what the summaries buy in
solver work and wall-clock as zones grow.
"""

import pytest

from repro.core.pipeline import VerificationSession
from repro.zonegen import GeneratorConfig, ZoneGenerator, evaluation_zone, minimal_zone

_STATS = {}


def run(zone, use_summaries):
    session = VerificationSession(zone, "verified")
    result = session.verify(use_summaries=use_summaries)
    assert result.verified, result.describe()
    return result


@pytest.mark.parametrize("mode", ["layered", "monolithic"])
@pytest.mark.parametrize("zone_name", ["minimal", "evaluation"])
def test_ablation(benchmark, mode, zone_name):
    zone = minimal_zone() if zone_name == "minimal" else evaluation_zone()
    result = benchmark.pedantic(
        run, args=(zone, mode == "layered"), rounds=1, iterations=1
    )
    _STATS[(zone_name, mode)] = (result.elapsed_seconds, result.solver_checks)


def test_ablation_report(benchmark):
    if len(_STATS) < 4:
        for zone_name, zone in (("minimal", minimal_zone()), ("evaluation", evaluation_zone())):
            for mode in ("layered", "monolithic"):
                if (zone_name, mode) not in _STATS:
                    result = run(zone, mode == "layered")
                    _STATS[(zone_name, mode)] = (
                        result.elapsed_seconds,
                        result.solver_checks,
                    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Ablation: layered (with summaries) vs monolithic (inlined):")
    print(f"{'zone':<12} {'mode':<12} {'seconds':>8} {'solver checks':>14}")
    for (zone_name, mode), (seconds, checks) in sorted(_STATS.items()):
        print(f"{zone_name:<12} {mode:<12} {seconds:>8.2f} {checks:>14}")

"""Static-analysis discharge: what the interprocedural pass buys.

One verify of the corrected engine with the panic-pruning pass off and
one with it on, on the same zone. The off run is the denominator: every
panic guard goes to the solver. The on run's residual guard checks give
the discharge ratio (paper-style headline: the fraction of guard
feasibility queries the relational domain answered statically), and the
solve-phase timings give the wall-clock effect.

Run under pytest for the regression bar, or standalone for the
machine-readable snapshot::

    PYTHONPATH=src python benchmarks/bench_analysis.py \
        [--out BENCH_analysis.json]

The checked-in ``BENCH_analysis.json`` is the reference snapshot; the CI
analysis gate re-measures the discharge ratio and fails if it drops
below ``floors.discharge_ratio`` recorded there.
"""

import argparse
import json

import pytest

from repro.core.pipeline import VerificationSession
from repro.zonegen import minimal_zone

#: The regression floor the CI gate enforces (and the pytest bar below
#: asserts). Deliberately under the measured ~98% so a small, explained
#: precision loss needs a snapshot refresh, not an emergency.
DISCHARGE_FLOOR = 0.80


def measure(version="verified"):
    """Verify ``version`` with analysis off and on; return the comparison."""
    zone = minimal_zone()
    off = VerificationSession(zone, version, analysis=False).verify()
    on = VerificationSession(zone, version, analysis=True).verify()
    assert on.verdict == off.verdict, "pruning changed the verdict"
    baseline = off.analysis["panic_guard_checks"]
    residual = on.analysis["panic_guard_checks"]
    row = {
        "version": version,
        "verdict": on.verdict,
        "guard_checks_off": baseline,
        "guard_checks_on": residual,
        "discharge_ratio": round((baseline - residual) / baseline, 4),
        "solver_checks_off": off.solver_checks,
        "solver_checks_on": on.solver_checks,
        "solver_checks_avoided": on.analysis["solver_checks_avoided"],
        "guards_total": on.analysis.get("guards_total", 0),
        "guards_pruned": on.analysis.get("guards_pruned", 0),
        "guard_prepass_checks": on.analysis["guard_prepass_checks"],
        "guard_prepass_unsat": on.analysis["guard_prepass_unsat"],
        "residual_by_function": on.analysis["guard_checks_by_function"],
        "discharged_by_function": on.analysis["pruned_hits_by_function"],
        "summary_digest": on.analysis.get("summary_digest"),
        "solve_seconds_off": round(
            (off.phase_seconds or {}).get("solve", 0.0), 3),
        "solve_seconds_on": round(
            (on.phase_seconds or {}).get("solve", 0.0), 3),
    }
    return row


def test_discharge_snapshot(benchmark):
    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"  guard checks: {row['guard_checks_off']} -> "
          f"{row['guard_checks_on']} "
          f"({row['discharge_ratio']:.1%} discharged)")
    print(f"  solver checks: {row['solver_checks_off']} -> "
          f"{row['solver_checks_on']}")
    assert row["discharge_ratio"] >= DISCHARGE_FLOOR


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON document to FILE "
                        "(e.g. BENCH_analysis.json)")
    parser.add_argument("--check", default=None, metavar="FILE",
                        help="gate mode: compare the fresh measurement "
                        "against the floors in FILE; exit 1 on regression")
    args = parser.parse_args(argv)

    row = measure()
    document = {
        "benchmark": "analysis_discharge",
        "floors": {"discharge_ratio": DISCHARGE_FLOOR},
        "row": row,
    }
    print(json.dumps(document, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            reference = json.load(handle)
        floor = reference["floors"]["discharge_ratio"]
        if row["discharge_ratio"] < floor:
            print(f"ANALYSIS GATE: discharge {row['discharge_ratio']:.1%} "
                  f"below floor {floor:.0%}")
            return 1
        print(f"analysis gate ok: {row['discharge_ratio']:.1%} >= "
              f"{floor:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

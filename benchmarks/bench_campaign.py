"""Campaign throughput: the section 6.5 operating mode at benchmark scale.

The paper's workflow verifies each engine iteration against thousands of
randomly generated zone configurations. This benchmark measures one small
campaign (full pipeline per zone) for the corrected engine and for v3.0,
and cross-checks that the prover's verdict matches the differential
tester's on every zone.

Worker scaling
--------------

The second half measures the :mod:`repro.parallel` executor: one campaign
at workers ∈ {1, 2, 4, 8}, asserting the canonical report is bit-identical
at every point of the curve, and recording wall time / units-per-second /
speedup-over-1-worker per point. Run under pytest for the harness, or
standalone for machine-readable trajectory output::

    PYTHONPATH=src python benchmarks/bench_campaign.py \
        [--zones N] [--workers 1,2,4,8] [--out BENCH_campaign_workers.json]

The standalone mode writes a single JSON document (the repo's
``BENCH_*.json`` trajectory format) with one row per worker count.
"""

import argparse
import json
import sys

import pytest

from repro.core import run_campaign

_REPORTS = {}

#: Zone shape for the scaling curve: small enough that an 8×-fan-out run
#: finishes in CI, big enough that per-unit work dominates pool overhead.
SCALING_CONFIG = dict(num_hosts=2, num_wildcards=1, num_delegations=0,
                      num_cnames=1, num_mx=0)
SCALING_SEED = 31
SCALING_VERSION = "verified"


def run_worker_curve(num_zones, worker_counts):
    """One campaign per worker count; returns (rows, canonical) and
    asserts every point of the curve is canonically bit-identical."""
    rows = []
    canonical = None
    for workers in worker_counts:
        report = run_campaign(
            SCALING_VERSION, num_zones=num_zones, seed=SCALING_SEED,
            workers=workers, **SCALING_CONFIG,
        )
        if canonical is None:
            canonical = report.canonical_json()
        elif report.canonical_json() != canonical:
            raise AssertionError(
                f"workers={workers} diverged from workers={worker_counts[0]}"
            )
        perf = report.perf
        rows.append({
            "workers": workers,
            "zones": report.zones_run,
            "wall_seconds": round(report.elapsed_seconds, 3),
            "units_per_second": perf["units_per_second"],
            "busy_seconds": perf["busy_seconds"],
            "parallel_efficiency": perf["parallel_efficiency"],
            "compile_seconds": perf["compile_seconds"],
            "summarize_seconds": perf["summarize_seconds"],
            "solve_seconds": perf["solve_seconds"],
            "solver_checks_avoided": perf.get("solver_checks_avoided", 0),
            "guards_pruned": perf.get("guards_pruned", 0),
        })
    base = rows[0]["wall_seconds"]
    for row in rows:
        row["speedup"] = round(base / max(row["wall_seconds"], 1e-9), 2)
    return rows, canonical


@pytest.mark.parametrize("version", ["verified", "v3.0"])
def test_campaign(benchmark, version):
    report = benchmark.pedantic(
        run_campaign,
        args=(version,),
        kwargs=dict(num_zones=3, seed=31, num_hosts=4, num_wildcards=1,
                    num_delegations=1, num_cnames=1, num_mx=1),
        rounds=1,
        iterations=1,
    )
    _REPORTS[version] = report
    if version == "verified":
        assert report.zones_refuted == 0
    else:
        assert report.zones_refuted >= 1


def test_campaign_report(benchmark):
    for version in ("verified", "v3.0"):
        if version not in _REPORTS:
            _REPORTS[version] = run_campaign(
                version, num_zones=3, seed=31, num_hosts=4, num_wildcards=1,
                num_delegations=1, num_cnames=1, num_mx=1,
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for version, report in _REPORTS.items():
        print(report.describe())
        zones_per_minute = 60 * report.zones_run / max(report.elapsed_seconds, 1e-9)
        print(f"  throughput: {zones_per_minute:.1f} zones/minute/core")


def test_worker_scaling(benchmark):
    """Reduced scaling curve under pytest: identity across worker counts
    plus a throughput print; the full 1/2/4/8 curve runs standalone."""
    rows, _canonical = benchmark.pedantic(
        run_worker_curve, args=(4, [1, 2]), rounds=1, iterations=1,
    )
    print()
    for row in rows:
        print(f"  workers={row['workers']}: {row['wall_seconds']:.1f}s wall, "
              f"{row['units_per_second']:.2f} units/s, "
              f"speedup {row['speedup']}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--zones", type=int, default=8,
                        help="campaign size per curve point")
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON document to FILE "
                        "(e.g. BENCH_campaign_workers.json)")
    args = parser.parse_args(argv)
    worker_counts = [int(w) for w in args.workers.split(",")]

    rows, canonical = run_worker_curve(args.zones, worker_counts)
    document = {
        "benchmark": "campaign_workers",
        "version": SCALING_VERSION,
        "zones": args.zones,
        "seed": SCALING_SEED,
        "config": SCALING_CONFIG,
        "canonical_sha": __import__("hashlib").sha256(
            canonical.encode()).hexdigest(),
        "identical_across_workers": True,  # run_worker_curve asserted it
        "rows": rows,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Campaign throughput: the section 6.5 operating mode at benchmark scale.

The paper's workflow verifies each engine iteration against thousands of
randomly generated zone configurations. This benchmark measures one small
campaign (full pipeline per zone) for the corrected engine and for v3.0,
and cross-checks that the prover's verdict matches the differential
tester's on every zone.
"""

import pytest

from repro.core import run_campaign

_REPORTS = {}


@pytest.mark.parametrize("version", ["verified", "v3.0"])
def test_campaign(benchmark, version):
    report = benchmark.pedantic(
        run_campaign,
        args=(version,),
        kwargs=dict(num_zones=3, seed=31, num_hosts=4, num_wildcards=1,
                    num_delegations=1, num_cnames=1, num_mx=1),
        rounds=1,
        iterations=1,
    )
    _REPORTS[version] = report
    if version == "verified":
        assert report.zones_refuted == 0
    else:
        assert report.zones_refuted >= 1


def test_campaign_report(benchmark):
    for version in ("verified", "v3.0"):
        if version not in _REPORTS:
            _REPORTS[version] = run_campaign(
                version, num_zones=3, seed=31, num_hosts=4, num_wildcards=1,
                num_delegations=1, num_cnames=1, num_mx=1,
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for version, report in _REPORTS.items():
        print(report.describe())
        zones_per_minute = 60 * report.zones_run / max(report.elapsed_seconds, 1e-9)
        print(f"  throughput: {zones_per_minute:.1f} zones/minute/core")

"""Campaign-service benchmark: throughput, verdict mix, checkpoint cost.

Three questions about the continuous campaign daemon, measured:

- **units per second** at workers ∈ {1, 4, 8} — the service fans each
  scheduling batch through :mod:`repro.parallel`, so throughput should
  scale with the pool while the verdict ledger stays bit-identical at
  every point of the curve (asserted, not assumed: batching is fixed so
  the scheduler sees feedback at the same task boundaries regardless of
  worker count);
- **verdict mix** — what a seeded campaign against a clean and a buggy
  engine version actually yields (the v2.0 points double as a liveness
  check that the adversarial profiles keep finding the Table-2 bugs);
- **checkpoint overhead** — the crash-safety tax: cumulative seconds
  spent in ``CheckpointWriter.append`` (atomic whole-file republish per
  unit) as a fraction of campaign wall time.

Run under pytest for the harness (one small point), or standalone for
the machine-readable trajectory committed as
``BENCH_campaign_service.json``::

    PYTHONPATH=src python benchmarks/bench_campaign_service.py \
        [--units N] [--workers 1,4,8] [--out BENCH_campaign_service.json]
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignService, CampaignServiceConfig
from repro.core.options import VerifyOptions
from repro.resilience.checkpoint import CheckpointWriter

SEED = 2023
VERSIONS = ("verified", "v2.0")
#: Fixed so every worker count schedules identically (feedback lands at
#: the same task boundaries); parallelism then only changes wall time.
BATCH_TASKS = 4


class _AppendTimer:
    """Accumulates wall time spent inside ``CheckpointWriter.append``."""

    def __init__(self):
        self.seconds = 0.0
        self.calls = 0
        self._original = None

    def __enter__(self):
        timer = self
        self._original = CheckpointWriter.append

        def timed(writer, unit_key, payload):
            start = time.perf_counter()
            try:
                return timer._original(writer, unit_key, payload)
            finally:
                timer.seconds += time.perf_counter() - start
                timer.calls += 1

        CheckpointWriter.append = timed
        return self

    def __exit__(self, *exc):
        CheckpointWriter.append = self._original
        return False


def run_point(workers, units, workdir):
    config = CampaignServiceConfig(
        corpus_dir=str(Path(workdir) / f"w{workers}"),
        seed=SEED,
        versions=VERSIONS,
        units=units,
        batch_tasks=BATCH_TASKS,
        minimize=False,
        status_port=None,
    )
    options = VerifyOptions(budget_seconds=120.0, workers=workers)
    service = CampaignService(config, options=options)
    with _AppendTimer() as checkpointing:
        start = time.perf_counter()
        report = service.run()
        wall = time.perf_counter() - start
    assert report.exit_code == 0, report.describe()
    assert report.units_completed >= units
    return {
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "units_completed": report.units_completed,
        "units_per_second": round(report.units_completed / wall, 4),
        "verdict_mix": report.verdict_mix,
        "kinds": report.kinds,
        "regressions_captured": report.regressions.get("captured", 0),
        "checkpoint_seconds": round(checkpointing.seconds, 4),
        "checkpoint_appends": checkpointing.calls,
        "checkpoint_overhead_fraction": round(
            checkpointing.seconds / wall, 5) if wall > 0 else 0.0,
    }, Path(config.corpus_dir) / "ledger.jsonl"


def run_trajectory(units, workers_list, out=None):
    points = {}
    ledgers = {}
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as workdir:
        for workers in workers_list:
            point, ledger_path = run_point(workers, units, workdir)
            points[str(workers)] = point
            ledgers[workers] = ledger_path.read_bytes()
            print(
                f"workers={workers}: {point['units_per_second']:.3f} "
                f"units/s over {point['units_completed']} units, "
                f"checkpointing {point['checkpoint_overhead_fraction']:.2%} "
                f"of {point['wall_seconds']:.1f}s wall",
                flush=True,
            )
        baseline = ledgers[workers_list[0]]
        identical = all(blob == baseline for blob in ledgers.values())
    assert identical, "verdict ledger differs across worker counts"
    base_rate = points[str(workers_list[0])]["units_per_second"]
    for point in points.values():
        point["speedup"] = round(point["units_per_second"] / base_rate, 3)
    document = {
        "benchmark": "campaign_service",
        # Interpret the speedup column against this: on a 1-core host
        # the curve is flat and only the identity property is news.
        "host_cpus": os.cpu_count(),
        "seed": SEED,
        "versions": list(VERSIONS),
        "units": units,
        "batch_tasks": BATCH_TASKS,
        "points": points,
        "ledger_bit_identical_across_workers": identical,
    }
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}")
    return document


def test_campaign_service_point(benchmark, tmp_path):
    """Harness entry: one small point, pinned to the pool path."""
    point, ledger = benchmark.pedantic(
        run_point, args=(2, 2, str(tmp_path)), rounds=1, iterations=1)
    assert point["units_completed"] == 2
    assert sum(point["verdict_mix"].values()) == 2
    assert ledger.exists()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--units", type=int, default=8)
    parser.add_argument("--workers", default="1,4,8")
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    workers_list = [int(w) for w in args.workers.split(",") if w.strip()]
    document = run_trajectory(args.units, workers_list, out=args.out)
    if not args.out:
        print(json.dumps(document, indent=1, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Chaos-plane benchmark: degraded-mode throughput and crash recovery.

Two questions the degradation ladder and the publish journal exist to
answer, measured:

- **qps per ladder rung** — how fast ``handle_packet`` answers with the
  overload controller pinned at NORMAL, TRUNCATE, and SERVFAIL_SHED.
  Degraded modes exist to be *cheaper* than resolving: TRUNCATE skips
  the resolve entirely and SERVFAIL_SHED answers shed clients with 12
  header bytes, so both must beat NORMAL or the ladder sheds nothing.
- **recovery time** — how long a SIGKILL'd server takes to come back:
  the digest-match path (journal head == on-disk zone: adopt and serve,
  no prover) and the re-verify path (journal ran ahead: a full
  bootstrap verification gates startup).

Run under pytest (``pytest benchmarks/bench_chaos.py``) for the
pytest-benchmark harness, or standalone for machine-readable output::

    PYTHONPATH=src python benchmarks/bench_chaos.py \
        [--queries N] [--out BENCH_chaos.json]
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.dns.zonefile import parse_zone_text
from repro.incremental.digest import zone_digest
from repro.serve import (
    PublishJournal,
    ZoneServer,
    degrade,
)
from repro.serve.journal import JournalRecord
from repro.zonegen import evaluation_zone
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

from bench_serve import wire_mix  # the representative query mix


def pinned_server(level):
    """A server whose ladder is pinned at ``level`` (tick disabled)."""
    controller = degrade.OverloadController(100.0, interval=1e9)
    controller.level = level
    return ZoneServer(evaluation_zone(), degrade=controller)


def measure_rung_qps(level, num_queries):
    # Clients rotate so SERVFAIL_SHED exercises both its branches (a
    # fixed client is deterministically shed-or-not, which would bench
    # only one of them).
    server = pinned_server(level)
    wires = wire_mix()
    clients = [f"198.51.100.{i}" for i in range(16)]
    for wire in wires:  # warm: intern tables, engine module import
        server.handle_packet(wire, clients[0])
    start = time.perf_counter()
    for i in range(num_queries):
        server.handle_packet(wires[i % len(wires)], clients[i % 16])
    elapsed = time.perf_counter() - start
    assert server.metrics.conservation()["conserved"]
    return num_queries / elapsed, 1e6 * elapsed / num_queries


def measure_recovery(workdir):
    """Both boot-recovery paths, timed from constructor to serveable."""
    zone = parse_zone_text(MINIMAL_ZONE_TEXT)
    digest = zone_digest(zone)

    # Digest match: the journal head names the on-disk zone. No prover.
    match_path = os.path.join(workdir, "match.journal")
    PublishJournal(match_path).append(JournalRecord(
        sequence=4, digest=digest, verdict="VERIFIED", source="publish"))
    start = time.perf_counter()
    server = ZoneServer(zone, journal=match_path, status_port=None)
    adopt_seconds = time.perf_counter() - start
    assert server.recovered_sequence == 4

    # Journal ahead: head names a zone that never hit the disk, so
    # start() must re-verify before binding a socket.
    import asyncio

    ahead_path = os.path.join(workdir, "ahead.journal")
    PublishJournal(ahead_path).append(JournalRecord(
        sequence=9, digest="crashed-before-the-swap",
        verdict="VERIFIED", source="publish"))
    server = ZoneServer(zone, journal=ahead_path, status_port=None)

    async def boot():
        await server.start()
        await server.stop()

    start = time.perf_counter()
    asyncio.run(boot())
    reverify_seconds = time.perf_counter() - start
    assert server.recovered_sequence == 10

    return {
        "digest_match_seconds": round(adopt_seconds, 4),
        "reverify_seconds": round(reverify_seconds, 4),
    }


# -- pytest harness ----------------------------------------------------------


def test_degraded_rungs_are_cheaper_than_normal(benchmark):
    def run():
        results = {}
        for name, level in (("normal", degrade.NORMAL),
                            ("truncate", degrade.TRUNCATE),
                            ("shed", degrade.SERVFAIL_SHED)):
            results[name], _ = measure_rung_qps(level, 3000)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, qps in results.items():
        print(f"  {name}: {qps:,.0f} qps")
    assert results["truncate"] > results["normal"]
    assert results["shed"] > results["normal"]


def test_recovery_paths(benchmark):
    def run():
        with tempfile.TemporaryDirectory() as tmp:
            return measure_recovery(tmp)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  digest-match {report['digest_match_seconds']}s, "
          f"re-verify {report['reverify_seconds']}s")
    # Adopting a matching journal must not pay for a verification.
    assert report["digest_match_seconds"] < report["reverify_seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=20000,
                        help="query count per ladder rung")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON document to FILE "
                        "(e.g. BENCH_chaos.json)")
    args = parser.parse_args(argv)

    rungs = {}
    for name, level in (("NORMAL", degrade.NORMAL),
                        ("TRUNCATE", degrade.TRUNCATE),
                        ("SERVFAIL_SHED", degrade.SERVFAIL_SHED)):
        qps, micros = measure_rung_qps(level, args.queries)
        rungs[name] = {"qps": round(qps, 1),
                       "query_micros": round(micros, 2)}

    with tempfile.TemporaryDirectory() as tmp:
        recovery = measure_recovery(tmp)

    document = {
        "benchmark": "chaos",
        "zone": "evaluation",
        "queries_per_rung": args.queries,
        "rungs": rungs,
        "degraded_speedup": {
            "truncate_vs_normal": round(
                rungs["TRUNCATE"]["qps"] / rungs["NORMAL"]["qps"], 2),
            "shed_vs_normal": round(
                rungs["SERVFAIL_SHED"]["qps"] / rungs["NORMAL"]["qps"], 2),
        },
        "recovery": recovery,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    degraded_cheaper = (
        rungs["TRUNCATE"]["qps"] > rungs["NORMAL"]["qps"]
        and rungs["SERVFAIL_SHED"]["qps"] > rungs["NORMAL"]["qps"]
    )
    if not degraded_cheaper:
        print("FAIL: a degraded rung is slower than NORMAL — the ladder "
              "sheds nothing", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

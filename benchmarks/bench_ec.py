"""Equivalence-class planning at TLD scale: O(behaviours) solver work.

The by-label planner verifies one unit per below-apex subtree — linear in
zone size, the ROADMAP bottleneck for million-record zones. The
equivalence-class planner collapses behaviourally identical subtrees into
one symbolic verify per class. This benchmark measures that collapse on
TLD-shaped zones from :func:`repro.zonegen.tld_zone`:

- **calibration** (small scale): both planners run fully through the
  incremental engine; verdicts must match and the measured checks-per-unit
  of the by-label run anchors the large-scale estimates;
- **scale rows** (10k / 100k / 1M records): the EC planner runs fully
  (units, solver checks, wall time); the by-label cost is *estimated* as
  units x calibrated checks-per-unit, because actually running hundreds of
  thousands of symbolic sessions is exactly the cost the planner exists to
  avoid — the estimate is a lower bound (the by-label miss unit also grows
  O(tops) exclusion constraints per check, which the estimate ignores);
- **per-delta re-verify**: glue-address updates applied through
  ``IncrementalVerifier.adopt(new_zone, delta)`` — the flat-cost entry
  point — timed per delta. The acceptance bar is that this cost stays flat
  from 10k to 1M records.

Run under pytest (``pytest benchmarks/bench_ec.py``) for the
pytest-benchmark harness, or standalone for machine-readable output::

    PYTHONPATH=src python benchmarks/bench_ec.py [--scales 10000,100000]

The standalone mode prints a single JSON document (the checked-in
``BENCH_ec.json`` is one such run; the ec-smoke CI job regenerates the
100k row on every push).
"""

import argparse
import json
import sys
import time

from repro.dns.rdata import ARdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import RecordChange, ZoneDelta
from repro.incremental.engine import IncrementalVerifier
from repro.incremental.planner.by_label import ByLabelPlanner
from repro.zonegen import tld_zone

DEFAULT_SCALES = (10_000, 100_000, 1_000_000)
#: Largest TLD zone where the full by-label run is still affordable: every
#: by-label unit is a complete symbolic session against the whole zone
#: (~10s and ~1.7k solver checks each on one core), so the calibration
#: cost is units x that, and checks-per-unit only grows with zone size —
#: which is what keeps the large-scale estimate a *lower* bound.
CALIBRATION_SCALE = 64
VERSION = "verified"
DELTA_ROUNDS = 3
SEED = 2023


def calibrate(scale=CALIBRATION_SCALE, version=VERSION):
    """Run BOTH planners fully on a small TLD zone.

    Asserts bit-identity of the verdicts and returns the by-label
    checks-per-unit figure that anchors the large-scale estimates."""
    zone = tld_zone(scale, seed=SEED)
    measured = {}
    for planner in ("by-label", "equivalence-class"):
        verifier = IncrementalVerifier(
            zone, version, cache=SummaryCache(memory_only=True),
            planner=planner,
        )
        t0 = time.perf_counter()
        outcome = verifier.verify_current()
        seconds = time.perf_counter() - t0
        assert outcome.result.verified, outcome.result.describe()
        measured[planner] = {
            "solver_checks": outcome.result.solver_checks,
            "units": outcome.reuse.partitions_total,
            "seconds": round(seconds, 3),
        }
    by_label = measured["by-label"]
    ec = measured["equivalence-class"]
    return {
        "scale": scale,
        "records": len(zone),
        "verdicts_match": True,
        "by_label": by_label,
        "equivalence_class": ec,
        "checks_ratio": round(
            by_label["solver_checks"] / ec["solver_checks"], 2
        ),
        "checks_per_by_label_unit": by_label["solver_checks"] / by_label["units"],
    }


def glue_update_delta(zone, round_no):
    """One universe-preserving rdata update on a delegation's own glue
    record — the dominant real-world TLD delta shape (a registrant moves
    hosts). Deliberately NOT the registry's shared nameserver host
    (`ns1.nic`): renumbering shared infrastructure legitimately re-signs
    every consuming class and is a different (rarer, costlier) shape."""
    origin_depth = len(zone.origin.labels)
    for rec in zone.records:
        if (
            rec.rtype is RRType.A
            and len(rec.rname.labels) == origin_depth + 2
            and rec.rname.labels[0] == "ns1"
            and rec.rname.labels[1] != "nic"
        ):
            fresh = ARdata(f"172.16.{round_no % 250}.{(round_no * 7) % 250 + 1}")
            return ZoneDelta(zone.origin, (
                RecordChange("delete", rec),
                RecordChange("add", ResourceRecord(
                    rec.rname, rec.rtype, fresh, rec.ttl)),
            ))
    raise ValueError("zone has no in-bailiwick glue record to update")


def bench_scale(scale, calib, version=VERSION, delta_rounds=DELTA_ROUNDS):
    t0 = time.perf_counter()
    zone = tld_zone(scale, seed=SEED)
    gen_seconds = time.perf_counter() - t0

    by_label_units = len(ByLabelPlanner().plan(zone))

    verifier = IncrementalVerifier(
        zone, version, cache=SummaryCache(memory_only=True),
        planner="equivalence-class",
    )
    t0 = time.perf_counter()
    warm = verifier.verify_current()
    warm_seconds = time.perf_counter() - t0
    assert warm.result.verified, warm.result.describe()

    ec_checks = warm.result.solver_checks
    estimated = int(by_label_units * calib["checks_per_by_label_unit"])

    deltas = []
    current = zone
    for round_no in range(1, delta_rounds + 1):
        delta = glue_update_delta(current, round_no)
        # Zone materialisation is the publisher's cost, not the
        # verifier's: keep delta.apply outside the timer so the row
        # isolates re-verification.
        new_zone = delta.apply(current)
        t0 = time.perf_counter()
        outcome = verifier.adopt(new_zone, delta)
        delta_seconds = time.perf_counter() - t0
        assert outcome.result.verified, outcome.result.describe()
        deltas.append({
            "round": round_no,
            "seconds": round(delta_seconds, 3),
            "solver_checks": outcome.result.solver_checks,
            "units_recomputed": outcome.reuse.partitions_recomputed,
            "units_total": outcome.reuse.partitions_total,
        })
        current = new_zone

    return {
        "scale": scale,
        "records": len(zone),
        "zone_gen_seconds": round(gen_seconds, 2),
        "by_label_units": by_label_units,
        "ec_units": warm.reuse.partitions_total,
        "ec_solver_checks": ec_checks,
        "by_label_solver_checks_estimated_lower_bound": estimated,
        "checks_ratio_vs_estimate": round(estimated / ec_checks, 1),
        "warm_seconds": round(warm_seconds, 2),
        "deltas": deltas,
        "delta_seconds_mean": round(
            sum(d["seconds"] for d in deltas) / len(deltas), 3
        ) if deltas else None,
    }


def run_report(scales=DEFAULT_SCALES, version=VERSION,
               delta_rounds=DELTA_ROUNDS):
    calib = calibrate(version=version)
    rows = [
        bench_scale(scale, calib, version=version, delta_rounds=delta_rounds)
        for scale in scales
    ]
    return {
        "benchmark": "bench_ec",
        "version": version,
        "seed": SEED,
        "estimate_basis": (
            f"by-label checks-per-unit measured at the "
            f"{calib['scale']}-record calibration scale, where both "
            f"planners ran fully and verdicts matched"
        ),
        "calibration": calib,
        "rows": rows,
    }


_REPORT = {}


def test_ec_collapse(benchmark):
    report = benchmark.pedantic(
        lambda: run_report(scales=(10_000,), delta_rounds=2),
        rounds=1, iterations=1,
    )
    _REPORT.update(report)
    assert report["calibration"]["verdicts_match"]
    assert report["calibration"]["checks_ratio"] > 2.0
    row = report["rows"][0]
    assert row["checks_ratio_vs_estimate"] >= 10.0
    assert row["ec_units"] < row["by_label_units"] / 100


def test_ec_report(benchmark):
    if not _REPORT:
        _REPORT.update(run_report(scales=(10_000,), delta_rounds=2))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Equivalence-class planning vs by-label (estimated) cost:")
    header = (f"{'records':>9} {'BL units':>9} {'EC units':>9} "
              f"{'EC checks':>10} {'BL est.':>10} {'ratio':>7} "
              f"{'warm s':>7} {'delta s':>8}")
    print(header)
    for row in _REPORT["rows"]:
        print(
            f"{row['records']:>9} {row['by_label_units']:>9} "
            f"{row['ec_units']:>9} {row['ec_solver_checks']:>10} "
            f"{row['by_label_solver_checks_estimated_lower_bound']:>10} "
            f"{row['checks_ratio_vs_estimate']:>6.0f}x "
            f"{row['warm_seconds']:>7.2f} {row['delta_seconds_mean']:>8.3f}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", default=",".join(str(s) for s in DEFAULT_SCALES),
        help="comma-separated zone record counts (default 10000,100000,1000000)",
    )
    parser.add_argument("--version", default=VERSION, help="engine version")
    parser.add_argument("--delta-rounds", type=int, default=DELTA_ROUNDS,
                        help="per-scale incremental deltas to time")
    parser.add_argument("--out", help="write the JSON report here instead of stdout")
    args = parser.parse_args(argv)
    scales = tuple(int(part) for part in args.scales.split(",") if part)
    report = run_report(scales=scales, version=args.version,
                        delta_rounds=args.delta_rounds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    else:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figures 4/10 (section 6.3): the Name-layer refinement experiment.

Benchmarks the refinement proof that the production byte-level
``compare_raw`` refines the abstract word-level comparison under the
byte/code interface relation, over every bounded name shape — and checks
the negative control: the revision without the label-boundary check must
be rejected with a concrete counterexample.
"""

from repro.dns.name import DnsName
from repro.spec.namespec import check_name_refinement


def run_refinement(raw_function="compare_raw"):
    return check_name_refinement(
        DnsName.from_text("ab.cd."),
        extra_labels=["x", "yz"],
        max_labels=3,
        max_label_len=3,
        raw_function=raw_function,
    )


def test_fig10_compare_raw_refines_abstract_spec(benchmark):
    report = benchmark.pedantic(run_refinement, rounds=3, iterations=1)
    assert report.verified
    assert report.shapes_checked == 39
    print()
    print(report.describe())


def test_fig10_negative_control_rejected(benchmark):
    report = benchmark.pedantic(
        run_refinement, args=("compare_raw_noboundary",), rounds=1, iterations=1
    )
    assert not report.verified
    print()
    print(report.describe())

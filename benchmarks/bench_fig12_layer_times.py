"""Figure 12: per-layer symbolic execution / summarization time.

The paper's claim: for each layer, DNS-V finishes symbolic execution and
automatic summarization in under one minute. This benchmark measures each
layer of the v2.0 engine on the evaluation zone separately — the Name-layer
refinement, the TreeSearch and Find summarizations, and the top-level
Resolve refinement — and prints the regenerated figure as a bar chart.
"""

import pytest

from repro.core.layers import resolution_layers
from repro.core.pipeline import VerificationSession
from repro.dns.name import DnsName
from repro.reporting import render_fig12
from repro.spec.namespec import check_name_refinement
from repro.zonegen import evaluation_zone


def test_fig12_name_layer(benchmark):
    report = benchmark.pedantic(
        check_name_refinement,
        args=(DnsName.from_text("ab.cd."),),
        kwargs={"extra_labels": ["x", "yz"]},
        rounds=3,
        iterations=1,
    )
    assert report.verified
    assert report.elapsed_seconds < 60


@pytest.mark.parametrize("layer_index,layer_name", [(0, "TreeSearch"), (1, "Find")])
def test_fig12_summarized_layer(benchmark, layer_index, layer_name):
    layers = resolution_layers()

    def run():
        session = VerificationSession(evaluation_zone(), "v2.0")
        for dependency in layers[:layer_index]:
            session.summarize_layer(dependency)
        return session.summarize_layer(layers[layer_index])

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.elapsed_seconds < 60
    assert len(summary.cases) > 0


def test_fig12_resolve_layer(benchmark):
    def run():
        session = VerificationSession(evaluation_zone(), "v2.0")
        return session.verify()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    resolve_layer = [l for l in result.layers if l.name == "Resolve"][0]
    assert resolve_layer.elapsed_seconds < 60


def test_fig12_render(benchmark):
    text = benchmark.pedantic(render_fig12, rounds=1, iterations=1)
    print()
    print(text)

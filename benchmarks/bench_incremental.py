"""Incremental verification: delta size vs reuse (Janus-style curve).

The incremental subsystem re-verifies only the query-space partitions whose
dependency closure a zone delta touched.  This benchmark warms an
:class:`IncrementalVerifier` on a flat zone, then applies batches of
k ∈ {1, 4, 16} record-level rdata updates and compares the incremental
re-verification against a from-scratch monolithic run on the same zone —
wall time and solver checks.  Expected shape: speedup is largest for k=1
(one subtree invalidated) and decays toward 1× as the delta sweeps most
subtrees.

Run under pytest (``pytest benchmarks/bench_incremental.py``) for the
pytest-benchmark harness, or standalone for machine-readable output::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--hosts N] [--ks 1,4]

The standalone mode prints a single JSON document with one row per k.
"""

import argparse
import json
import sys
import time

from repro.core.pipeline import verify_engine
from repro.dns.rdata import ARdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zonefile import parse_zone_text
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import RecordChange, ZoneDelta
from repro.incremental.engine import IncrementalVerifier

DEFAULT_HOSTS = 16
DEFAULT_KS = (1, 4, 16)
VERSION = "verified"


def bench_zone(num_hosts=DEFAULT_HOSTS):
    """A flat zone with ``num_hosts`` independent host subtrees plus a
    wildcard, a delegation and a CNAME, so single-host deltas leave most
    partitions untouched."""
    hosts = "\n".join(
        f"h{i:02d} IN A 192.0.2.{i + 10}" for i in range(1, num_hosts + 1)
    )
    text = f"""\
$ORIGIN bench.example.
@ IN SOA ns1.bench.example. hostmaster.bench.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
{hosts}
*.tenants IN A 192.0.2.90
sub IN NS ns1.sub
ns1.sub IN A 192.0.2.100
www IN CNAME h01.bench.example.
"""
    return parse_zone_text(text)


def rdata_update_delta(zone, k, round_no):
    """k universe-preserving rdata updates on the first k host A records."""
    hosts = sorted(
        (
            rec for rec in zone.records
            if rec.rtype is RRType.A and rec.rname.labels[0].startswith("h")
        ),
        key=lambda rec: rec.rname.to_text(),
    )
    if k > len(hosts):
        raise ValueError(f"zone has only {len(hosts)} host records, need {k}")
    changes = []
    for i, rec in enumerate(hosts[:k]):
        fresh = ARdata(f"198.51.100.{(round_no * 37 + i) % 200 + 1}")
        changes.append(RecordChange("delete", rec))
        changes.append(RecordChange("add", ResourceRecord(rec.rname, rec.rtype, fresh, rec.ttl)))
    return ZoneDelta(zone.origin, tuple(changes))


def run_curve(num_hosts=DEFAULT_HOSTS, ks=DEFAULT_KS, version=VERSION):
    """Warm once, then one row per k: incremental apply vs scratch."""
    zone = bench_zone(num_hosts)
    verifier = IncrementalVerifier(zone, version, cache=SummaryCache(memory_only=True))
    t0 = time.perf_counter()
    warm = verifier.verify_current()
    warm_seconds = time.perf_counter() - t0
    assert warm.result.verified, warm.result.describe()

    rows = []
    for round_no, k in enumerate(ks, start=1):
        delta = rdata_update_delta(verifier.zone, k, round_no)

        t0 = time.perf_counter()
        outcome = verifier.apply(delta)
        inc_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        scratch = verify_engine(verifier.zone, version)
        scratch_seconds = time.perf_counter() - t0

        assert outcome.result.verified == scratch.verified
        inc_checks = outcome.result.solver_checks
        rows.append({
            "k": k,
            "incremental_seconds": round(inc_seconds, 3),
            "scratch_seconds": round(scratch_seconds, 3),
            "incremental_checks": inc_checks,
            "scratch_checks": scratch.solver_checks,
            "speedup_time": round(scratch_seconds / inc_seconds, 2) if inc_seconds else None,
            "speedup_checks": round(scratch.solver_checks / inc_checks, 2) if inc_checks else None,
            "partitions_reused": outcome.reuse.partitions_reused,
            "partitions_total": outcome.reuse.partitions_total,
        })
    return {
        "benchmark": "bench_incremental",
        "version": version,
        "zone_origin": str(verifier.zone.origin.to_text()),
        "records": len(verifier.zone),
        "warm_seconds": round(warm_seconds, 3),
        "warm_checks": warm.result.solver_checks,
        "rows": rows,
    }


_REPORT = {}


def test_incremental_curve(benchmark):
    report = benchmark.pedantic(run_curve, rounds=1, iterations=1)
    _REPORT.update(report)
    for row in report["rows"]:
        # Small deltas must show real reuse; the curve may flatten at k=16.
        assert row["partitions_reused"] > 0 or row["k"] >= report["records"]
        assert row["incremental_checks"] <= row["scratch_checks"]
    assert report["rows"][0]["speedup_checks"] >= 5.0


def test_incremental_report(benchmark):
    if not _REPORT:
        _REPORT.update(run_curve())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Incremental vs from-scratch (k rdata updates per delta):")
    header = (f"{'k':>4} {'inc s':>8} {'scratch s':>10} {'inc checks':>11} "
              f"{'scratch checks':>15} {'speedup':>8} {'reused':>7}")
    print(header)
    for row in _REPORT["rows"]:
        print(
            f"{row['k']:>4} {row['incremental_seconds']:>8.2f} "
            f"{row['scratch_seconds']:>10.2f} {row['incremental_checks']:>11} "
            f"{row['scratch_checks']:>15} {row['speedup_checks']:>7.1f}x "
            f"{row['partitions_reused']:>3}/{row['partitions_total']}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=DEFAULT_HOSTS,
                        help="number of host subtrees in the bench zone")
    parser.add_argument("--ks", default=",".join(str(k) for k in DEFAULT_KS),
                        help="comma-separated delta sizes (default 1,4,16)")
    parser.add_argument("--version", default=VERSION, help="engine version")
    args = parser.parse_args(argv)
    ks = tuple(int(part) for part in args.ks.split(",") if part)
    report = run_curve(num_hosts=args.hosts, ks=ks, version=args.version)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

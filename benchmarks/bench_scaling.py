"""Scaling: verification cost vs zone size.

Not a paper artifact (the paper fixes the engine and sweeps zones at
production scale); this pins how the reproduction's end-to-end time and
solver load grow with the number of records, so future optimisations have a
baseline. Expected shape: engine paths grow roughly linearly with tree
nodes, and each path re-runs the specification's filters over the flat
list, giving the top-level check a soft-quadratic trend.
"""

import pytest

from repro.core.pipeline import VerificationSession
from repro.zonegen import GeneratorConfig, ZoneGenerator

SIZES = {
    "small": GeneratorConfig(seed=61, num_hosts=2, num_wildcards=0,
                             num_delegations=0, num_cnames=0, num_mx=0),
    "medium": GeneratorConfig(seed=61, num_hosts=5, num_wildcards=1,
                              num_delegations=1, num_cnames=1, num_mx=1),
    "large": GeneratorConfig(seed=61, num_hosts=9, num_wildcards=2,
                             num_delegations=2, num_cnames=2, num_mx=2),
}

_ROWS = {}


@pytest.mark.parametrize("size", list(SIZES))
def test_scaling(benchmark, size):
    zone = ZoneGenerator(SIZES[size]).generate(0)

    def run():
        session = VerificationSession(zone, "verified")
        result = session.verify()
        assert result.verified, result.describe()
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    paths = [l.paths for l in result.layers if l.name == "Resolve"][0]
    _ROWS[size] = (len(zone), paths, result.elapsed_seconds, result.solver_checks)


def test_scaling_report(benchmark):
    for size in SIZES:
        if size not in _ROWS:
            zone = ZoneGenerator(SIZES[size]).generate(0)
            result = VerificationSession(zone, "verified").verify()
            paths = [l.paths for l in result.layers if l.name == "Resolve"][0]
            _ROWS[size] = (
                len(zone), paths, result.elapsed_seconds, result.solver_checks
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Verification cost vs zone size (verified engine):")
    print(f"{'size':<8} {'records':>8} {'paths':>7} {'seconds':>9} {'solver checks':>14}")
    for size, (records, paths, seconds, checks) in _ROWS.items():
        print(f"{size:<8} {records:>8} {paths:>7} {seconds:>9.2f} {checks:>14}")

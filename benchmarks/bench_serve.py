"""Serving-plane benchmark: query throughput and publish latency.

Two numbers an operator of the verified serving plane cares about:

- **qps** — how fast the synchronous query path (wire parse → snapshot
  resolve → wire serialize, the exact code UDP datagrams hit) answers a
  representative mix on the demo zone. The RFC-level transports add only
  event-loop dispatch on top, so this is the per-core ceiling.
- **publish latency after a delta** — how long a zone change is held at
  the verify-then-publish gate before the new snapshot starts serving:
  the cold bootstrap verification, an incremental benign delta (warm
  partition cache — the steady-state operator path), and a bug-triggering
  delta that the gate holds (time to *reject* matters too; that is how
  long the alarm takes to fire).

Run under pytest (``pytest benchmarks/bench_serve.py``) for the
pytest-benchmark harness, or standalone for machine-readable output::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--queries N] [--rounds N] [--out BENCH_serve.json]

The standalone mode writes a single JSON document (the repo's
``BENCH_*.json`` format).
"""

import argparse
import json
import sys
import time

from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.wire import build_query
from repro.dns.zonefile import parse_zone_text
from repro.serve import PublishGate, ZoneServer, build_snapshot
from repro.zonegen import evaluation_zone
from repro.zonegen.corpus import MINIMAL_ZONE_TEXT

#: Representative mix over the demo (evaluation) zone: exact match,
#: ANY at the apex, CNAME chase, wildcard synthesis with fresh labels,
#: delegation walk, NXDOMAIN.
QUERY_MIX = [
    ("www.example.com.", RRType.A),
    ("example.com.", RRType.ANY),
    ("alias.example.com.", RRType.A),
    ("fresh1.fresh2.wild.example.com.", RRType.MX),
    ("deep.sub.example.com.", RRType.A),
    ("missing.example.com.", RRType.A),
]

BENIGN_DELTA = MINIMAL_ZONE_TEXT.replace("192.0.2.10", "192.0.2.200")
BUGGY_DELTA = MINIMAL_ZONE_TEXT + (
    "*.wild IN A 192.0.2.20\n"
    "*.wild IN MX 10 ns1.example.com.\n"
)


def wire_mix():
    return [
        build_query(txid, Query(DnsName.from_text(text), qtype))
        for txid, (text, qtype) in enumerate(QUERY_MIX, start=1)
    ]


def measure_qps(num_queries):
    """Drive ``handle_packet`` (the full UDP datagram path, minus the
    socket) round-robin over the mix; returns (qps, per-query µs)."""
    server = ZoneServer(evaluation_zone())
    wires = wire_mix()
    for wire in wires:  # warm: intern tables, engine module import
        assert server.handle_packet(wire, "bench")
    start = time.perf_counter()
    for i in range(num_queries):
        server.handle_packet(wires[i % len(wires)], "bench")
    elapsed = time.perf_counter() - start
    return num_queries / elapsed, 1e6 * elapsed / num_queries


def measure_publish_latency(rounds):
    """Bootstrap + benign-delta + buggy-delta gate latencies (seconds).

    The benign delta is measured ``rounds`` times (alternating two rdata
    values so every submit is a real change) and the minimum is reported —
    the steady-state incremental cost, without scheduler noise.
    """
    zone = parse_zone_text(MINIMAL_ZONE_TEXT)
    gate = PublishGate(build_snapshot(zone, "verified"))

    start = time.perf_counter()
    boot = gate.bootstrap()
    bootstrap_seconds = time.perf_counter() - start
    assert boot.accepted, boot.describe()

    benign = []
    for round_no in range(rounds):
        text = MINIMAL_ZONE_TEXT.replace(
            "192.0.2.10", f"192.0.2.{100 + round_no}"
        )
        result = gate.submit(parse_zone_text(text))
        assert result.accepted, result.describe()
        benign.append(result.verify_seconds + result.publish_seconds)

    buggy_gate = PublishGate(build_snapshot(zone, "v2.0"))
    buggy_gate.bootstrap()
    held = buggy_gate.submit(parse_zone_text(BUGGY_DELTA))
    assert not held.accepted

    return {
        "bootstrap_seconds": round(bootstrap_seconds, 4),
        "benign_publish_seconds": round(min(benign), 4),
        "benign_publish_seconds_all": [round(s, 4) for s in benign],
        "buggy_hold_seconds": round(
            held.verify_seconds + held.publish_seconds, 4
        ),
        "buggy_verdict": held.verdict,
    }


# -- pytest harness ----------------------------------------------------------


def test_query_path_qps(benchmark):
    server = ZoneServer(evaluation_zone())
    wires = wire_mix()
    state = {"i": 0}

    def one_query():
        i = state["i"] = state["i"] + 1
        assert server.handle_packet(wires[i % len(wires)], "bench")

    benchmark(one_query)


def test_publish_latency(benchmark):
    report = benchmark.pedantic(
        measure_publish_latency, args=(2,), rounds=1, iterations=1
    )
    print()
    print(f"  bootstrap {report['bootstrap_seconds']}s, "
          f"benign publish {report['benign_publish_seconds']}s, "
          f"buggy hold {report['buggy_hold_seconds']}s")
    # The steady-state operator path must be much cheaper than bootstrap.
    assert report["benign_publish_seconds"] < report["bootstrap_seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=20000,
                        help="query count for the qps measurement")
    parser.add_argument("--rounds", type=int, default=3,
                        help="benign-delta publish repetitions")
    parser.add_argument("--min-qps", type=float, default=None,
                        help="exit 1 if measured qps falls below this")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the JSON document to FILE "
                        "(e.g. BENCH_serve.json)")
    args = parser.parse_args(argv)

    qps, micros = measure_qps(args.queries)
    publish = measure_publish_latency(args.rounds)
    document = {
        "benchmark": "serve",
        "zone": "evaluation",
        "engine_version": "verified",
        "query_mix": [f"{name} {qtype.name}" for name, qtype in QUERY_MIX],
        "queries": args.queries,
        "qps": round(qps, 1),
        "query_micros": round(micros, 2),
        "publish": publish,
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    if args.min_qps is not None and qps < args.min_qps:
        print(f"FAIL: {qps:.0f} qps below the {args.min_qps:.0f} floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Substrate micro-benchmarks: solver, executor, differential tester.

Not a paper artifact — these pin the performance of the layers everything
else is built on, so regressions in the SMT-lite solver or the executor are
visible independently of the end-to-end pipeline numbers.
"""

from repro.frontend import compile_source
from repro.solver import SolveResult, Solver, and_, eq, ge, isub, ivar, le, lt, ne, or_
from repro.symex import Executor
from repro.testing import differential_test
from repro.zonegen import evaluation_zone


def test_solver_conjunction_sat(benchmark):
    x = [ivar(f"x{i}") for i in range(12)]

    def check():
        solver = Solver()
        for a, b in zip(x, x[1:]):
            solver.add(lt(a, b))
        solver.add(ge(x[0], 0), le(x[-1], 100), ne(x[3], 17))
        return solver.check()

    result = benchmark(check)
    assert result is SolveResult.SAT


def test_solver_disjunction_search(benchmark):
    x, y = ivar("x"), ivar("y")
    formula = and_(
        or_(*[eq(x, k) for k in range(0, 40, 4)]),
        or_(*[eq(y, k) for k in range(1, 41, 4)]),
        eq(x, isub(y, 1)),
    )

    def check():
        solver = Solver()
        solver.add(formula, ge(x, 8))
        return solver.check()

    result = benchmark(check)
    assert result is SolveResult.SAT


LOOP_SOURCE = """
def f(xs: list[int], limit: int) -> int:
    total = 0
    for x in xs:
        if x < limit:
            total += x
    return total
"""


def test_executor_symbolic_loop(benchmark):
    from repro.solver import iconst, ivar
    from repro.symex import HeapLoader, PathState

    module = compile_source(LOOP_SOURCE)

    def run():
        executor = Executor([module])
        state = PathState()
        lst = HeapLoader(state.memory).load([1, 5, 9, 13])
        return executor.run("f", [lst, ivar("limit")], state=state)

    outcomes = benchmark(run)
    assert len(outcomes) > 1


def test_differential_tester_throughput(benchmark):
    zone = evaluation_zone()
    result = benchmark.pedantic(
        differential_test, args=(zone, "verified"), rounds=3, iterations=1
    )
    assert result.clean
    print(f"\n[{result.queries_run} queries cross-checked against 2 oracles]")

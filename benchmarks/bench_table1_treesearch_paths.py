"""Table 1 / Figure 11: TreeSearch path enumeration on the example tree.

Regenerates the paper's Table 1 — every execution path of TreeSearch
walking the section 6.4 example domain tree, each with an example qname
satisfying its path condition — and benchmarks the summarization that
produces it.
"""

from repro.core.layers import resolution_layers
from repro.core.pipeline import VerificationSession
from repro.reporting import render_table1
from repro.zonegen import paper_example_zone


def summarize_tree_search():
    session = VerificationSession(paper_example_zone())
    return session.summarize_layer(resolution_layers()[0])


def test_table1_treesearch_summarization(benchmark):
    summary = benchmark.pedantic(summarize_tree_search, rounds=3, iterations=1)
    assert 10 <= len(summary.cases) <= 25
    print()
    print(render_table1())
    print(f"\n[summary: {len(summary.cases)} input-effect pairs, "
          f"{summary.elapsed_seconds:.3f}s symbolic execution]")

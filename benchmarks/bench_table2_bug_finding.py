"""Table 2: bug classes found and prevented per engine version.

Runs the full DNS-V pipeline (summarize layers, verify Resolve against the
top-level specification, decode and validate counterexamples) once per
engine version on the evaluation zone, and prints the regenerated Table 2
with caught/not-caught status per paper row. The benchmark measures one
whole-version verification (v2.0, the Table-3 base version).
"""

import pytest

from repro.core import VerificationSession, verify_engine
from repro.reporting import EXPECTED_TABLE2, render_table2
from repro.reporting.tables import VERSIONS
from repro.zonegen import evaluation_zone

_RESULTS = {}


def _verify(version):
    result = verify_engine(evaluation_zone(), version)
    _RESULTS[version] = result
    return result


@pytest.mark.parametrize("version", VERSIONS)
def test_table2_verify_version(benchmark, version):
    result = benchmark.pedantic(_verify, args=(version,), rounds=1, iterations=1)
    if version == "verified":
        assert result.verified, result.describe()
    else:
        assert result.bugs, f"{version} should have been caught"
        assert all(bug.validated for bug in result.bugs)


def test_table2_render_and_check(benchmark):
    for version in VERSIONS:
        _RESULTS.setdefault(version, verify_engine(evaluation_zone(), version))
    text = benchmark.pedantic(render_table2, args=(_RESULTS,), rounds=1, iterations=1)
    print()
    print(text)
    # Every paper row must be caught at its version.
    for index, version, categories, _ in EXPECTED_TABLE2:
        found = _RESULTS[version].bug_categories()
        assert any(c in found for c in categories), f"Table 2 row {index} missed"

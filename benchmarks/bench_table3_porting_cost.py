"""Table 3: cost of verifying one version and porting to the next.

Measures the real artifacts in this repository — implementation LoC and
version-to-version churn, dependency specifications, interface
configuration, top-level specification, safety property — and prints the
regenerated Table 3. The paper's shape to reproduce: implementation size
and churn dominate everything; the specifications are an order of magnitude
smaller and essentially stable across versions.
"""

from repro.core.porting import porting_report, version_loc_table
from repro.reporting import render_table3


def test_table3_porting_cost(benchmark):
    report = benchmark.pedantic(porting_report, args=("v2.0", "v3.0"),
                                rounds=3, iterations=1)
    rows = {row.artifact: row for row in report.rows}
    impl = rows["implementation"]
    spec = rows["top-level specification"]
    deps = rows["dependency specification"]
    # Paper shape: the implementation changes (O(200) of O(2000) at paper
    # scale); specs are stable.
    assert impl.changed > 0
    assert spec.changed == 0 and deps.changed == 0
    assert rows["safety property"].loc == 1

    print()
    print(render_table3())
    print("\nPer-version implementation LoC / churn from previous version:")
    for version, (loc, churn) in version_loc_table().items():
        print(f"  {version:>9}: {loc:4d} LoC   {churn:3d} changed")
    print("\nFeature port (verified -> v4.0, the ALIAS flattening feature):")
    feature = porting_report("verified", "v4.0")
    print(feature.describe())
    spec_row = {row.artifact: row for row in feature.rows}["top-level specification"]
    assert 0 < spec_row.changed < 60  # the paper's 'short and simple' claim

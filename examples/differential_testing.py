#!/usr/bin/env python3
"""SCALE-style differential testing across random zone configurations.

Generates random zones (wildcards, delegations, CNAME chains — the
section 9 bias), then cross-checks each engine version against the
executable top-level specification and the independent reference resolver
over a structured query corpus. Shows how concrete testing flags the buggy
versions on *some* zones, while the verified engine stays clean on all —
and why verification (which proves the absence per zone) subsumes it.

Run:  python examples/differential_testing.py [num_zones]
"""

import sys

from repro.testing import differential_test
from repro.zonegen import GeneratorConfig, ZoneGenerator


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    generator = ZoneGenerator(
        GeneratorConfig(
            seed=20230701, num_hosts=5, num_wildcards=2, num_delegations=1,
            num_cnames=2, num_mx=1,
        )
    )
    versions = ("verified", "v1.0", "v2.0", "v3.0", "dev")
    caught = {version: 0 for version in versions}
    total_queries = 0

    for index, zone in enumerate(generator.stream(count)):
        line = [f"zone {index:2d} ({len(zone):2d} rrs):"]
        for version in versions:
            result = differential_test(zone, version)
            total_queries += result.queries_run
            if result.clean:
                line.append(f"{version}=clean")
            else:
                caught[version] += 1
                line.append(f"{version}={len(result.divergences)}x")
        print("  ".join(line))

    print(f"\n{total_queries} total queries cross-checked against 2 oracles")
    print("zones on which each version was flagged:")
    for version in versions:
        print(f"  {version:>9}: {caught[version]}/{count}")
    assert caught["verified"] == 0, "the corrected engine must stay clean"


if __name__ == "__main__":
    main()

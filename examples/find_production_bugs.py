#!/usr/bin/env python3
"""Reproduce Table 2: catch every seeded production bug class.

Runs the DNS-V pipeline over all four production engine versions (v1.0,
v2.0, v3.0, dev) plus the corrected engine on the evaluation zone, prints
each verification verdict with validated counterexamples, and finishes with
the regenerated Table 2.

Run:  python examples/find_production_bugs.py
"""

from repro.core import verify_engine
from repro.reporting import render_table2
from repro.reporting.tables import VERSIONS
from repro.zonegen import evaluation_zone


def main() -> None:
    zone = evaluation_zone()
    print(f"evaluation zone: {zone.origin.to_text()}, {len(zone)} records\n")

    results = {}
    for version in VERSIONS:
        print(f"--- {version} ---")
        result = verify_engine(zone, version)
        results[version] = result
        if result.verified:
            print(f"VERIFIED in {result.elapsed_seconds:.1f}s "
                  f"({result.solver_checks} solver checks)")
        else:
            print(f"{len(result.bugs)} validated bug(s) "
                  f"in {result.elapsed_seconds:.1f}s; examples:")
            for bug in result.bugs[:3]:
                print("  " + bug.describe())
        print()

    print(render_table2(results))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The porting workflow: a new engine feature and its spec adaptation.

Walks the paper's continuous-verification story on the v4.0 ALIAS feature:

1. the feature-less (but fully corrected) engine still verifies on plain
   zones — porting the verification costs nothing where nothing changed;
2. on a zone using the new ALIAS record, the adapted top-level spec
   refutes the old engine, with the exact flattened queries as
   counterexamples — the spec led the implementation;
3. engine v4.0 (44 changed implementation lines) verifies against the
   adapted spec (23 new spec lines) on both zone families;
4. the Table-3-style porting report for the feature iteration.

Run:  python examples/port_new_feature.py
"""

from repro.core import verify_engine
from repro.core.porting import porting_report
from repro.zonegen import alias_zone, evaluation_zone


def main() -> None:
    plain, feature = evaluation_zone(), alias_zone()

    print("1) corrected engine on a plain zone:")
    result = verify_engine(plain, "verified")
    print("   " + result.describe().splitlines()[0])
    assert result.verified

    print("\n2) corrected engine on the ALIAS feature zone (adapted spec):")
    result = verify_engine(feature, "verified")
    print("   " + result.describe().splitlines()[0])
    for bug in result.bugs[:3]:
        print("   " + bug.describe())
    assert not result.verified

    print("\n3) engine v4.0 on both:")
    for zone, label in ((feature, "feature zone"), (plain, "plain zone")):
        result = verify_engine(zone, "v4.0")
        print(f"   {label}: " + result.describe().splitlines()[0])
        assert result.verified

    print("\n4) porting cost of the feature iteration:")
    print(porting_report("verified", "v4.0").describe())


if __name__ == "__main__":
    main()

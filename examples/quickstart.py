#!/usr/bin/env python3
"""Quickstart: verify a DNS authoritative engine against the RFC spec.

Loads a zone, runs the full DNS-V pipeline on the fully corrected engine
(it proves out), then on the v1.0 production engine — where verification
fails and DNS-V hands back concrete, validated counterexample queries.

Run:  python examples/quickstart.py
"""

from repro.core import verify_engine
from repro.dns.zonefile import parse_zone_text

ZONE_TEXT = """\
$ORIGIN shop.example.
@ IN SOA ns1.shop.example. hostmaster.shop.example. 7 3600 600 86400 300
@ IN NS ns1
ns1 IN A 192.0.2.1
www IN A 192.0.2.80
www IN TXT "storefront"
*.tenants IN A 192.0.2.90
"""


def main() -> None:
    zone = parse_zone_text(ZONE_TEXT)
    print(f"zone {zone.origin.to_text()} with {len(zone)} records\n")

    print("=== verifying the corrected engine ===")
    result = verify_engine(zone, "verified")
    print(result.describe())
    assert result.verified

    print("\n=== verifying engine v1.0 (the base production version) ===")
    result = verify_engine(zone, "v1.0")
    print(result.describe())
    assert not result.verified

    print("\nEvery bug above comes with a concrete query; for example:")
    bug = result.bugs[0]
    print(f"  dig {bug.query.to_text()}" if bug.query else f"  codes {bug.qname_codes}")
    print(f"  engine:   {bug.engine_summary}")
    print(f"  expected: {bug.expected_summary}")


if __name__ == "__main__":
    main()

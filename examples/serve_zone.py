#!/usr/bin/env python3
"""Serve a zone with a *verified* engine version over real DNS packets.

The GoPy engine runs natively (it is plain Python), fronted by the wire
codec: parse query -> encode qname to label codes -> engine resolve ->
decode -> serialise response. Two modes:

- default: an offline demo that round-trips a handful of wire-format
  packets through the engine and prints dig-style output;
- ``--listen [port]``: bind a UDP socket (default 127.0.0.1:5353) and
  answer real queries; try ``dig -p 5353 @127.0.0.1 www.example.com``.

This is the pedagogical loop; the production serving plane (asyncio
UDP+TCP, verify-then-publish gate, rate limiting, status channel) is
``python -m repro serve`` — see :mod:`repro.serve`.

Run:  python examples/serve_zone.py [--version verified] [--listen [port]]
"""

import argparse
import socket

from repro.dns.message import Query, Response
from repro.dns.rtypes import RCode, RRType
from repro.dns.wire import WireError, build_query, build_response, parse_query
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.serve.snapshot import encode_query_name
from repro.zonegen import evaluation_zone


class EngineServer:
    """Wire-format front end over one engine version and one zone."""

    def __init__(self, zone, version: str):
        self.zone = zone
        self.version = version
        self.module = control.ENGINE_VERSIONS[version]
        self.encoder = ZoneEncoder(zone)
        self.tree = control.build_domain_tree(self.encoder)

    def handle(self, wire: bytes) -> bytes:
        try:
            txid, query = parse_query(wire)
        except WireError:
            return b""
        response = self.resolve(query)
        return build_response(txid, response)

    def resolve(self, query: Query) -> Response:
        # Distinct unknown labels get distinct, order-consistent fresh
        # codes (they used to collapse onto interner.max_code, so e.g.
        # a.b.wild.example.com looked like x.x.wild.example.com to the
        # engine); the overlay decodes synthesized wildcard answers back
        # to the labels the client actually sent.
        codes, overlay = encode_query_name(self.encoder.interner, query.qname)
        try:
            go_resp = control.run_engine_concrete(
                self.module, self.tree, codes, int(query.qtype)
            )
        except Exception as exc:  # a buggy version may crash: SERVFAIL
            print(f"!! engine crashed on {query.to_text()}: {exc}")
            return Response(query=query, rcode=RCode.SERVFAIL, aa=False)
        decoded = self.encoder.decode_response(query, go_resp, overrides=overlay)
        if decoded is None:
            return Response(query=query, rcode=RCode.SERVFAIL, aa=False)
        return decoded


def demo(server: EngineServer) -> None:
    from repro.dns.name import DnsName
    from repro.dns.wire import parse_response

    probes = [
        ("www.example.com.", RRType.A),
        ("example.com.", RRType.ANY),
        ("alias.example.com.", RRType.A),
        ("anything.wild.example.com.", RRType.MX),
        ("deep.sub.example.com.", RRType.A),
        ("missing.example.com.", RRType.A),
    ]
    for text, qtype in probes:
        query = Query(DnsName.from_text(text), qtype)
        wire_in = build_query(0xBEEF, query)
        wire_out = server.handle(wire_in)
        _, response = parse_response(wire_out)
        print(response.to_text())
        print(f";; packet sizes: query {len(wire_in)}B, response {len(wire_out)}B\n")


def listen(server: EngineServer, port: int) -> None:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("127.0.0.1", port))
    print(f"serving {server.zone.origin.to_text()} with engine "
          f"{server.version} on 127.0.0.1:{port} (ctrl-C to stop)")
    while True:
        wire, addr = sock.recvfrom(4096)
        reply = server.handle(wire)
        if reply:
            sock.sendto(reply, addr)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--version", default="verified",
                        choices=sorted(control.ENGINE_VERSIONS))
    parser.add_argument("--listen", nargs="?", const=5353, type=int, default=None)
    args = parser.parse_args()

    server = EngineServer(evaluation_zone(), args.version)
    if args.listen is not None:
        listen(server, args.listen)
    else:
        demo(server)


if __name__ == "__main__":
    main()

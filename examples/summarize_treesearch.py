#!/usr/bin/env python3
"""Section 6.4 walkthrough: automated summarization of TreeSearch.

Builds the paper's example domain tree (Figure 11), performs full-path
symbolic execution of TreeSearch with a symbolic query name, prints the
machine-generated summary specification (the set of input-effect pairs of
section 5.3), and reproduces Table 1 — one example qname per execution
path, obtained by solving each path condition.

Run:  python examples/summarize_treesearch.py
"""

from repro.core.layers import resolution_layers
from repro.core.pipeline import VerificationSession
from repro.reporting import render_table1
from repro.zonegen import paper_example_zone


def main() -> None:
    zone = paper_example_zone()
    print("example zone:")
    for record in zone:
        print("  " + record.to_text())

    session = VerificationSession(zone)
    layer = resolution_layers()[0]
    summary = session.summarize_layer(layer)

    print(
        f"\nsummarized {layer.function}: {len(summary.cases)} input-effect "
        f"pairs in {summary.elapsed_seconds:.3f}s\n"
    )
    print("three of the machine-generated cases (section 6.4's form):\n")
    interesting = [case for case in summary.cases if case.effects][:3]
    for case in interesting:
        print(case.describe())
        print()

    print(render_table1(zone))


if __name__ == "__main__":
    main()

"""DNS-V: automated verification of an in-production DNS authoritative engine.

Reproduction of the SOSP 2023 paper "Automated Verification of an
In-Production DNS Authoritative Engine" (Zheng, Liu, et al.).

The package is organised bottom-up:

- :mod:`repro.dns` — DNS domain model (names, records, zones, messages).
- :mod:`repro.solver` — SMT-lite decision procedure for linear integer
  arithmetic with models (the paper uses Z3 on the same fragment).
- :mod:`repro.ir` — AbsLLVM intermediate representation (paper section 5.1).
- :mod:`repro.frontend` — restricted-Python ("GoPy") to AbsLLVM compiler,
  standing in for GoLLVM and inserting explicit panic blocks (section 4.1).
- :mod:`repro.symex` — full-path symbolic executor with the flexible memory
  model supporting partial abstraction (section 5.1/5.2).
- :mod:`repro.summary` — automated specification summarization (section 5.3).
- :mod:`repro.refine` — refinement checking against manual specs (5.2).
- :mod:`repro.spec` — manual library specs and the SCALE-style top-level
  specification of authoritative resolution (section 6.1/6.3).
- :mod:`repro.engine` — the in-production-style DNS authoritative engine in
  several versions, with the paper's Table-2 bugs seeded (section 6).
- :mod:`repro.zonegen` — randomized zone-configuration generator (6.5/9).
- :mod:`repro.core` — the DNS-V pipeline tying everything together.
- :mod:`repro.testing` — SCALE-style differential tester used to validate
  counterexamples.
- :mod:`repro.reporting` — regeneration of the paper's tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""DNS-V: automated verification of an in-production DNS authoritative engine.

Reproduction of the SOSP 2023 paper "Automated Verification of an
In-Production DNS Authoritative Engine" (Zheng, Liu, et al.).

The top-level package re-exports the session facade — the recommended
programmatic entry point (see ``docs/api.md``)::

    from repro import Session

    session = Session(workers=4, budget=30.0)
    result = session.verify("zones/prod.zone", "v2.0")

The package is organised bottom-up:

- :mod:`repro.dns` — DNS domain model (names, records, zones, messages).
- :mod:`repro.solver` — SMT-lite decision procedure for linear integer
  arithmetic with models (the paper uses Z3 on the same fragment).
- :mod:`repro.ir` — AbsLLVM intermediate representation (paper section 5.1).
- :mod:`repro.frontend` — restricted-Python ("GoPy") to AbsLLVM compiler,
  standing in for GoLLVM and inserting explicit panic blocks (section 4.1).
- :mod:`repro.symex` — full-path symbolic executor with the flexible memory
  model supporting partial abstraction (section 5.1/5.2).
- :mod:`repro.summary` — automated specification summarization (section 5.3).
- :mod:`repro.refine` — refinement checking against manual specs (5.2).
- :mod:`repro.spec` — manual library specs and the SCALE-style top-level
  specification of authoritative resolution (section 6.1/6.3).
- :mod:`repro.engine` — the in-production-style DNS authoritative engine in
  several versions, with the paper's Table-2 bugs seeded (section 6).
- :mod:`repro.zonegen` — randomized zone-configuration generator (6.5/9).
- :mod:`repro.core` — the DNS-V pipeline tying everything together.
- :mod:`repro.parallel` — process-pool executor for campaigns and
  partitioned verifies, deterministic across worker counts.
- :mod:`repro.resilience` — typed verdicts, budgets, checkpoints, faults.
- :mod:`repro.incremental` — zone deltas, summary cache, watch daemon.
- :mod:`repro.testing` — SCALE-style differential tester used to validate
  counterexamples.
- :mod:`repro.reporting` — regeneration of the paper's tables and figures.
"""

__version__ = "1.0.0"

# Everything here pulls in the whole pipeline; exported lazily so
# ``import repro`` stays cheap for subpackage users (and fork-safe for
# pool workers that only need one module).
_LAZY = {
    "Session": ("repro.api", "Session"),
    "load_zone": ("repro.api", "load_zone"),
    "VerifyOptions": ("repro.core.options", "VerifyOptions"),
    "verify_engine": ("repro.core.pipeline", "verify_engine"),
    "VerificationResult": ("repro.core.pipeline", "VerificationResult"),
    "run_campaign": ("repro.core.campaign", "run_campaign"),
    "CampaignReport": ("repro.core.campaign", "CampaignReport"),
    "ZoneVerdict": ("repro.core.campaign", "ZoneVerdict"),
    "QueryPlanner": ("repro.incremental.planner.protocol", "QueryPlanner"),
    "PlanUnit": ("repro.incremental.planner.protocol", "PlanUnit"),
    "make_planner": ("repro.incremental.planner.protocol", "make_planner"),
    "ByLabelPlanner": ("repro.incremental.planner.by_label", "ByLabelPlanner"),
    "ECPlanner": ("repro.incremental.planner.ec", "ECPlanner"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = ["__version__", *_LAZY]

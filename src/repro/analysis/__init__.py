"""Static analysis over AbsLLVM: CFGs, dataflow, panic pruning, linting.

Two consumers:

- the verification pipeline runs :func:`repro.analysis.prune.prune_module`
  between compilation and symbolic execution, discharging panic guards the
  abstract domains prove dead so the executor skips their solver queries;
- ``repro lint`` runs :mod:`repro.analysis.lint` over engine sources,
  reporting restricted-subset violations, dead code, use-before-def, and
  the anti-modularity smells (section 7's lessons) with stable rule ids.
"""

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import DataflowResult, Domain, analyze
from repro.analysis.domains import (
    DiffBounds,
    GuardDomain,
    Interval,
    interval_of,
    nullness_of,
)
from repro.analysis.lint import (
    RULES,
    Finding,
    lint_module,
    lint_version,
    lint_versions,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.analysis.prune import (
    FunctionPruneReport,
    PruneReport,
    prune_function,
    prune_module,
)

__all__ = [
    "RULES",
    "Finding",
    "lint_module",
    "lint_version",
    "lint_versions",
    "load_baseline",
    "new_findings",
    "save_baseline",
    "CFG",
    "DataflowResult",
    "Domain",
    "analyze",
    "DiffBounds",
    "GuardDomain",
    "Interval",
    "interval_of",
    "nullness_of",
    "FunctionPruneReport",
    "PruneReport",
    "prune_function",
    "prune_module",
]

"""Control-flow graphs and dominator trees over AbsLLVM functions.

The CFG is the substrate every static analysis in this package shares:
successor/predecessor maps, entry-reachability, a reverse postorder
(the canonical worklist order for forward dataflow), and the immediate
dominator tree computed with the Cooper–Harvey–Kennedy iterative
algorithm ("A Simple, Fast Dominance Algorithm"). Everything is derived
once from the function's terminators and never mutates the function.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function


class CFG:
    """Successors, predecessors, reachability, RPO and dominators of one
    function. Construction is O(blocks + edges) plus the dominator
    fixpoint (linear in practice on reducible frontend CFGs)."""

    def __init__(self, function: Function):
        self.function = function
        self.entry = function.entry_label
        self.succs: Dict[str, Tuple[str, ...]] = {}
        self.preds: Dict[str, List[str]] = {label: [] for label in function.blocks}
        for label, block in function.blocks.items():
            targets = ()
            if block.terminator is not None:
                targets = tuple(
                    t for t in block.terminator.successors() if t in function.blocks
                )
            self.succs[label] = targets
            for target in targets:
                self.preds[target].append(label)
        self.rpo: List[str] = self._reverse_postorder()
        self.rpo_index: Dict[str, int] = {
            label: i for i, label in enumerate(self.rpo)
        }
        self.reachable = frozenset(self.rpo)
        self.idom: Dict[str, Optional[str]] = self._dominators()

    # -- orders and reachability -------------------------------------------

    def _reverse_postorder(self) -> List[str]:
        order: List[str] = []
        seen = set()
        # Iterative DFS with an explicit "exit" marker so deep CFGs cannot
        # hit the recursion limit.
        stack: List[Tuple[str, bool]] = [(self.entry, False)] if self.entry else []
        while stack:
            label, done = stack.pop()
            if done:
                order.append(label)
                continue
            if label in seen:
                continue
            seen.add(label)
            stack.append((label, True))
            for succ in reversed(self.succs[label]):
                if succ not in seen:
                    stack.append((succ, False))
        order.reverse()
        return order

    def unreachable(self) -> List[str]:
        """Blocks no path from entry reaches, in insertion order."""
        return [l for l in self.function.blocks if l not in self.reachable]

    # -- dominators ---------------------------------------------------------

    def _dominators(self) -> Dict[str, Optional[str]]:
        idom: Dict[str, Optional[str]] = {label: None for label in self.rpo}
        if not self.rpo:
            return idom
        entry = self.rpo[0]
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for label in self.rpo[1:]:
                candidates = [
                    p for p in self.preds[label]
                    if p in idom and idom[p] is not None
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for other in candidates[1:]:
                    new = self._intersect(new, other, idom)
                if idom[label] != new:
                    idom[label] = new
                    changed = True
        idom[entry] = None  # the entry has no immediate dominator
        return idom

    def _intersect(self, a: str, b: str, idom) -> str:
        # During the fixpoint idom[entry] == entry, so the two-finger walk
        # always meets (at entry in the worst case).
        index = self.rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def dominates(self, a: str, b: str) -> bool:
        """True when every entry→``b`` path passes through ``a``."""
        if a not in self.reachable or b not in self.reachable:
            return False
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom[node]
        return False

    def dominator_tree(self) -> Dict[str, List[str]]:
        """Children lists keyed by parent label (RPO-ordered)."""
        tree: Dict[str, List[str]] = {label: [] for label in self.rpo}
        for label in self.rpo:
            parent = self.idom[label]
            if parent is not None:
                tree[parent].append(label)
        return tree

"""A generic forward worklist dataflow engine over AbsLLVM CFGs.

A :class:`Domain` supplies the lattice (``join``/``equal``/``widen``),
the transfer function over straight-line instructions, and an optional
*edge refinement* that sharpens (or kills, by returning ``None``) the
state flowing along a specific CFG edge — how branch conditions become
facts. :func:`analyze` drives the classic worklist-to-fixpoint loop in
reverse postorder and returns the state at every reachable block entry.

Termination: the engine counts visits per block and switches the join to
``domain.widen`` once a block has been visited ``widen_after`` times, so
infinite-ascending-chain domains (intervals, difference bounds) still
converge. Determinism: blocks leave the worklist in reverse postorder
and domains are required to name any fresh abstract values after stable
program points (register names, block labels), never after iteration
counts — the fixpoint is then a pure function of the IR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.cfg import CFG
from repro.ir.function import BasicBlock, Function


class Domain:
    """Interface a dataflow domain implements. States are opaque to the
    engine; only the domain ever looks inside them."""

    def entry_state(self, function: Function):
        raise NotImplementedError

    def copy(self, state):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        raise NotImplementedError

    def widen(self, old, new):
        """Accelerated join applied after ``widen_after`` visits; the
        default is plain join (fine for finite-height domains)."""
        return self.join(old, new)

    def transfer(self, state, insn, label: str, index: int):
        """State after ``insn``; may mutate and return ``state``."""
        raise NotImplementedError

    def edge(self, state, block: BasicBlock, succ: str):
        """Refine ``state`` along the edge ``block → succ``; return None
        to declare the edge infeasible. Default: pass through."""
        return state


class DataflowResult:
    """The fixpoint: state at each reachable block entry, plus enough
    context to replay states at arbitrary program points."""

    def __init__(self, function: Function, cfg: CFG, domain: Domain,
                 block_in: Dict[str, object], visits: Dict[str, int]):
        self.function = function
        self.cfg = cfg
        self.domain = domain
        self.block_in = block_in
        self.visits = visits

    def state_at_terminator(self, label: str):
        """The abstract state just before ``label``'s terminator, or None
        when the block is unreachable."""
        entry = self.block_in.get(label)
        if entry is None:
            return None
        state = self.domain.copy(entry)
        block = self.function.blocks[label]
        for index, insn in enumerate(block.instructions):
            state = self.domain.transfer(state, insn, label, index)
        return state


def analyze(function: Function, domain: Domain, cfg: Optional[CFG] = None,
            widen_after: int = 12, max_visits: int = 200) -> DataflowResult:
    """Run ``domain`` to fixpoint over ``function``.

    ``widen_after`` bounds how many precise joins a block gets before
    widening kicks in; ``max_visits`` is a hard safety valve — exceeding
    it means the domain's widening is broken, and raises.
    """
    if cfg is None:
        cfg = CFG(function)
    block_in: Dict[str, object] = {}
    visits: Dict[str, int] = {label: 0 for label in function.blocks}
    if cfg.entry is None:
        return DataflowResult(function, cfg, domain, block_in, visits)

    block_in[cfg.entry] = domain.entry_state(function)
    # Worklist keyed by RPO position: pop the earliest pending block so
    # loop bodies stabilise before their exits are processed.
    pending = {cfg.entry}
    while pending:
        label = min(pending, key=lambda l: cfg.rpo_index[l])
        pending.discard(label)
        visits[label] += 1
        if visits[label] > max_visits:
            raise RuntimeError(
                f"dataflow did not converge at {function.name}:{label} "
                f"after {max_visits} visits (widening bug?)"
            )
        state = domain.copy(block_in[label])
        block = function.blocks[label]
        for index, insn in enumerate(block.instructions):
            state = domain.transfer(state, insn, label, index)
        for succ in cfg.succs[label]:
            out = domain.edge(domain.copy(state), block, succ)
            if out is None:
                continue  # proved infeasible: contributes nothing
            old = block_in.get(succ)
            if old is None:
                block_in[succ] = out
                pending.add(succ)
                continue
            if visits[succ] >= widen_after:
                new = domain.widen(old, out)
            else:
                new = domain.join(old, out)
            if not domain.equal(old, new):
                block_in[succ] = new
                pending.add(succ)
    return DataflowResult(function, cfg, domain, block_in, visits)

"""Abstract domains for the panic-pruning analysis.

Two abstractions cover the two guard families the frontend emits
(section 4.1's panic blocks):

- **Intervals / difference bounds** discharge index guards. Plain
  constant intervals cannot prove the hot case — ``name[i]`` inside
  ``is_prefix`` needs ``i < len(prefix) <= len(name)`` — so the numeric
  half is a tiny difference-bound matrix (:class:`DiffBounds`): closed
  constraints ``u - v <= c`` over deterministically named symbolic
  variables, with a distinguished zero variable anchoring constant
  bounds. :func:`interval_of` projects any variable's plain interval
  back out of it.
- **Nullness** (``null``/``nonnull``/``maybe``) discharges nil guards:
  ``newobject``/``list.new`` results are born non-null, and an
  ``x is None`` branch refines the value *and* the local slot it was
  loaded from, so ``while child is not None:`` bodies see a non-null
  ``child``.

:class:`GuardDomain` is the product domain the pruning pass runs
through :mod:`repro.analysis.dataflow`: an environment of abstract
values (registers + alloca slots), the difference bounds, and a list
*epoch* that versions ``list.len`` variables across mutations.

Every fresh abstract name is derived from a stable program point — a
destination register, a ``block:index`` call site, a ``(block, slot)``
join point — never from visit counts, so fixpoints are deterministic
and re-runs produce identical IR rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.dataflow import Domain
from repro.ir import (
    Alloca,
    BinOp,
    Call,
    CondBr,
    ConstBool,
    ConstInt,
    ConstNull,
    ElidedGuardBr,
    GEP,
    ICmp,
    Load,
    PointerType,
    Register,
    Store,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.types import BoolType, IntType

# ---------------------------------------------------------------------------
# Nullness lattice
# ---------------------------------------------------------------------------

NULL = "null"
NONNULL = "nonnull"
MAYBE = "maybe"


def join_nullness(a: str, b: str) -> str:
    return a if a == b else MAYBE


# ---------------------------------------------------------------------------
# Plain intervals (projection + golden tests)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds mean unbounded."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Keep only the bounds ``other`` did not loosen."""
        lo = self.lo if (self.lo is not None and other.lo is not None
                         and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None
                         and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def __str__(self):
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


# ---------------------------------------------------------------------------
# Difference bounds: closed constraint sets  u - v <= c
# ---------------------------------------------------------------------------

ZERO = ""  # the distinguished zero variable anchoring constant bounds


class DiffBounds:
    """A small always-closed difference-bound matrix.

    ``bound(u, v)`` is the tightest known ``c`` with ``u - v <= c`` (None
    when unconstrained); :meth:`add` inserts a constraint and incrementally
    re-closes in O(vars^2). Infeasibility (a negative self-cycle) is
    reported by ``add`` returning False — callers treat the carrying edge
    as unreachable.
    """

    __slots__ = ("_b",)

    def __init__(self, bounds: Optional[Dict[Tuple[str, str], int]] = None):
        self._b: Dict[Tuple[str, str], int] = dict(bounds) if bounds else {}

    def copy(self) -> "DiffBounds":
        return DiffBounds(self._b)

    def items(self):
        return self._b.items()

    def __eq__(self, other):
        return isinstance(other, DiffBounds) and self._b == other._b

    def __repr__(self):
        inner = ", ".join(
            f"{u or '0'}-{v or '0'}<={c}" for (u, v), c in sorted(self._b.items())
        )
        return f"DiffBounds({inner})"

    def vars(self) -> set:
        names = set()
        for u, v in self._b:
            names.add(u)
            names.add(v)
        names.discard(ZERO)
        return names

    def bound(self, u: str, v: str) -> Optional[int]:
        if u == v:
            return 0
        return self._b.get((u, v))

    def entails(self, u: str, v: str, c: int) -> bool:
        """Is ``u - v <= c`` implied?"""
        if u == v:
            return c >= 0
        known = self._b.get((u, v))
        return known is not None and known <= c

    def add(self, u: str, v: str, c: int) -> bool:
        """Record ``u - v <= c``; False means the system became infeasible."""
        if u == v:
            return c >= 0
        back = self._b.get((v, u))
        if back is not None and back + c < 0:
            return False
        old = self._b.get((u, v))
        if old is not None and old <= c:
            return True
        self._b[(u, v)] = c
        # Incremental closure through the new edge: x -> u -> v -> y.
        names = self.vars() | {ZERO}
        for x in names:
            xu = self.bound(x, u)
            if xu is None:
                continue
            for y in names:
                vy = self.bound(v, y)
                if vy is None or x == y:
                    continue
                through = xu + c + vy
                cur = self._b.get((x, y))
                if cur is None or through < cur:
                    self._b[(x, y)] = through
                    rev = self._b.get((y, x))
                    if rev is not None and rev + through < 0:
                        return False
        return True

    def kill(self, var: str) -> None:
        """Forget every constraint involving ``var`` (its program value is
        being redefined)."""
        if var == ZERO:
            return
        dead = [k for k in self._b if var in k]
        for k in dead:
            del self._b[k]

    def join(self, other: "DiffBounds") -> "DiffBounds":
        """Least upper bound: constraints present in both, at the looser
        bound. The pointwise max of closed DBMs is closed."""
        out: Dict[Tuple[str, str], int] = {}
        for key, c in self._b.items():
            oc = other._b.get(key)
            if oc is not None:
                out[key] = max(c, oc)
        return DiffBounds(out)

    def interval_of(self, var: str) -> Interval:
        """The plain interval of ``var`` relative to the zero variable."""
        hi = self.bound(var, ZERO)
        lo = self.bound(ZERO, var)
        return Interval(None if lo is None else -lo, hi)


def _projected(state: "GState", name: str):
    """The abstract value of a register or slot; a slot-address register
    (the alloca result) projects through to the slot's content."""
    value = state.regs.get(name, state.slots.get(name))
    if isinstance(value, SlotAddr):
        value = state.slots.get(value.slot)
    return value


def interval_of(state: "GState", name: str) -> Interval:
    """Project the interval of a register or slot out of a guard-domain
    state (golden tests and diagnostics)."""
    value = _projected(state, name)
    if isinstance(value, Num):
        base = state.facts.interval_of(value.var) if value.var else Interval(0, 0)
        lo = None if base.lo is None else base.lo + value.off
        hi = None if base.hi is None else base.hi + value.off
        return Interval(lo, hi)
    return Interval()


def nullness_of(state: "GState", name: str) -> str:
    """Project the nullness of a register or slot (golden tests)."""
    value = _projected(state, name)
    if isinstance(value, Ptr):
        return value.null
    return MAYBE


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """``var + off``; the empty var is the constant anchor (value = off)."""

    var: str
    off: int


@dataclass(frozen=True)
class Ptr:
    """An abstract pointer: identity ``pid``, nullness, and the alloca
    slot it currently also resides in (``origin``) for refinement
    write-back."""

    pid: str
    null: str
    origin: Optional[str] = None


@dataclass(frozen=True)
class SlotAddr:
    slot: str


@dataclass(frozen=True)
class Bool:
    """A boolean: a known constant, or a refinable test. ``weak`` limits
    which branch edge may refine with the test after a join mixed it
    with a constant ("" = both, "true"/"false" = that edge only).

    ``carry`` rides the short-circuit join: when a symbolic test is
    joined with a constant, the difference facts that held on the
    symbolic side but not the constant side would otherwise be lost —
    yet on the one edge the constant cannot reach, control *must* have
    come through the symbolic side, so those facts hold there. They are
    re-applied on that edge, but only while the branch sits in the same
    block as the join (``carry_at``): within a straight-line block no
    join variable is renamed and frontend registers are SSA-fresh, so
    the carried constraints still describe live values."""

    val: Optional[bool] = None
    test: Optional[tuple] = None
    weak: str = ""
    carry: tuple = ()
    carry_at: str = ""


@dataclass(frozen=True)
class Unknown:
    """An untracked value named after its defining instruction; coerces
    to a numeric or pointer view on demand."""

    uid: str


_NULL_CONST = object()  # marker for the ConstNull operand

_NEG_PRED = {"slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
             "eq": "ne", "ne": "eq"}


def _negate_bool(b: Bool) -> Bool:
    if b.val is not None:
        return Bool(not b.val)
    if b.test is None:
        return Bool()
    kind = b.test[0]
    # Negation flips which edge is the weak one; the carry flips with it
    # (it still marks "control came through the symbolic side").
    weak = {"true": "false", "false": "true", "": ""}[b.weak]
    if kind == "icmp":
        _, pred, l, r = b.test
        return Bool(None, ("icmp", _NEG_PRED[pred], l, r), weak,
                    b.carry, b.carry_at)
    if kind == "nil":
        _, tv, pred = b.test
        return Bool(None, ("nil", tv, _NEG_PRED[pred]), weak,
                    b.carry, b.carry_at)
    if kind == "summary":
        _, true_facts, false_facts = b.test
        return Bool(None, ("summary", false_facts, true_facts), weak,
                    b.carry, b.carry_at)
    if kind == "and":
        return Bool(None, ("or", _neg_test(b.test[1]), _neg_test(b.test[2])),
                    weak, b.carry, b.carry_at)
    if kind == "or":
        return Bool(None, ("and", _neg_test(b.test[1]), _neg_test(b.test[2])),
                    weak, b.carry, b.carry_at)
    return Bool()


def _neg_test(test: tuple) -> tuple:
    return _negate_bool(Bool(None, test)).test


def _durable_var(var: str) -> bool:
    """Carry only facts over join/length/param variables (and the zero
    anchor): they name loop-invariant or canonicalized values, which is
    what the short-circuit joins actually lose — register-named facts
    die with their block anyway and would crowd the cap."""
    return var == ZERO or var.startswith(("J!", "L!", "P!"))


def _dropped_facts(sym: DiffBounds, const: DiffBounds) -> tuple:
    """Difference facts holding on the symbolic side of a short-circuit
    join but not on the constant side — the carry a :class:`Bool` rides.
    Capped so a pathological join cannot blow up the value."""
    dropped = [
        (u, v, c)
        for (u, v), c in sym.items()
        if _durable_var(u) and _durable_var(v) and not const.entails(u, v, c)
    ]
    dropped.sort()
    return tuple(dropped[:64])


def _carry_closure(state: "GState", carry: tuple) -> DiffBounds:
    """The side's facts with its own carry conjoined (what provably holds
    when control came through that side's symbolic provenance)."""
    if not carry:
        return state.facts
    facts = state.facts.copy()
    for u, v, c in carry:
        facts.add(u, v, c)
    return facts


def _subst_facts(facts: tuple, subst: Dict[str, Tuple[str, int]]) -> tuple:
    """Substitute summary tokens with caller-side ``(var, off)`` views.

    A token fact ``u - v <= c`` with caller views ``u = u_var + u_off``
    and ``v = v_var + v_off`` becomes ``u_var - v_var <= c - u_off +
    v_off``. Facts mentioning a token the call site could not bind (an
    argument outside the abstraction) are dropped, not approximated.
    """
    out = []
    for u_tok, v_tok, c in facts:
        u = subst.get(u_tok)
        v = subst.get(v_tok)
        if u is None or v is None:
            continue
        (u_var, u_off), (v_var, v_off) = u, v
        out.append((u_var, v_var, c - u_off + v_off))
    return tuple(out)


# ---------------------------------------------------------------------------
# The product state
# ---------------------------------------------------------------------------


class GState:
    """Registers + slots -> abstract values, difference bounds, and the
    list epoch. ``at`` is the block label the state currently describes
    (names join-point variables; not part of equality)."""

    __slots__ = ("regs", "slots", "facts", "epoch", "at")

    def __init__(self, regs=None, slots=None, facts=None, epoch="init", at=""):
        self.regs: Dict[str, object] = regs if regs is not None else {}
        self.slots: Dict[str, object] = slots if slots is not None else {}
        self.facts: DiffBounds = facts if facts is not None else DiffBounds()
        self.epoch = epoch
        self.at = at

    def copy(self) -> "GState":
        return GState(dict(self.regs), dict(self.slots), self.facts.copy(),
                      self.epoch, self.at)

    def same(self, other: "GState") -> bool:
        return (
            self.regs == other.regs
            and self.slots == other.slots
            and self.facts == other.facts
            and self.epoch == other.epoch
        )


# ---------------------------------------------------------------------------
# The domain
# ---------------------------------------------------------------------------


class GuardDomain(Domain):
    """The panic-guard analysis: enough arithmetic to decide bounds
    guards, enough heap discipline to decide nil guards, and nothing
    else. Everything outside the abstraction collapses to
    :class:`Unknown` — the analysis only ever *prunes* on definite
    proofs, so imprecision costs queries, never soundness."""

    def __init__(self, cfg=None, summaries=None):
        #: Optional CFG: when present, numeric slot values are renamed to
        #: canonical per-(join point, slot) variables on edges into
        #: multi-predecessor blocks, so every fixpoint iteration (and both
        #: sides of a merge) constrain the *same* variable instead of
        #: minting a fresh one per visit — the difference between proving
        #: ``i < len(prefix)`` inside a loop body and losing it.
        self.cfg = cfg
        #: Optional ``{name: FunctionSummary}`` table (see
        #: :mod:`repro.analysis.interproc`). When a call site's callee has
        #: a summary, the transfer applies it instead of havocking: a
        #: pure callee keeps the list epoch, and the summary's token
        #: facts are substituted into the caller's difference bounds.
        self.summaries = summaries or {}

    # -- lattice ------------------------------------------------------------

    def entry_state(self, function: Function) -> GState:
        state = GState(at=function.entry_label or "")
        for name, ty in function.params:
            if isinstance(ty, IntType):
                state.regs[name] = Num(f"P!{name}", 0)
            elif isinstance(ty, PointerType):
                state.regs[name] = Ptr(f"P!{name}", MAYBE, None)
            elif isinstance(ty, BoolType):
                state.regs[name] = Bool()
            else:
                state.regs[name] = Unknown(f"P!{name}")
        return state

    def copy(self, state: GState) -> GState:
        return state.copy()

    def equal(self, a: GState, b: GState) -> bool:
        return a.same(b)

    def join(self, a: GState, b: GState) -> GState:
        label = a.at or b.at
        facts = a.facts.join(b.facts)
        out = GState({}, {}, facts, a.epoch, label)
        if a.epoch != b.epoch:
            out.epoch = f"E!{label}"
        for name in a.regs.keys() & b.regs.keys():
            va, vb = a.regs[name], b.regs[name]
            merged = self._join_reg(va, vb, a, b, label)
            if merged is not None:
                out.regs[name] = merged
        for slot in a.slots.keys() & b.slots.keys():
            va, vb = a.slots[slot], b.slots[slot]
            merged = self._join_slot(out, a, b, slot, va, vb, label)
            if merged is not None:
                out.slots[slot] = merged
        return out

    def widen(self, old: GState, new: GState) -> GState:
        j = self.join(old, new)
        kept = {
            key: c
            for key, c in j.facts.items()
            if old.facts.bound(*key) == c
        }
        j.facts = DiffBounds(kept)
        return j

    def _join_reg(self, va, vb, a: GState, b: GState, label: str):
        if va == vb:
            return va
        if isinstance(va, Ptr) and isinstance(vb, Ptr) and va.pid == vb.pid:
            return Ptr(va.pid, join_nullness(va.null, vb.null),
                       va.origin if va.origin == vb.origin else None)
        if isinstance(va, Bool) and isinstance(vb, Bool):
            return self._join_bool(va, vb, a, b, label)
        return None  # dominance makes a post-join read impossible; drop

    def _join_slot(self, out: GState, a: GState, b: GState, slot: str,
                   va, vb, label: str):
        if va == vb:
            return va
        ptrish_a = isinstance(va, (Ptr, Unknown))
        ptrish_b = isinstance(vb, (Ptr, Unknown))
        if isinstance(va, Ptr) and isinstance(vb, Ptr) and va.pid == vb.pid:
            return Ptr(va.pid, join_nullness(va.null, vb.null), slot)
        if (isinstance(va, Ptr) or isinstance(vb, Ptr)) and ptrish_a and ptrish_b:
            null_a = va.null if isinstance(va, Ptr) else MAYBE
            null_b = vb.null if isinstance(vb, Ptr) else MAYBE
            return Ptr(f"J!{label}!{slot}", join_nullness(null_a, null_b), slot)
        if isinstance(va, Bool) and isinstance(vb, Bool):
            return self._join_bool(va, vb, a, b, label)
        na = self._as_num(va)
        nb = self._as_num(vb)
        if na is not None and nb is not None:
            return self._hull(out, a, b, slot, na, nb, label)
        return None

    def _join_bool(self, va: Bool, vb: Bool, sa: GState, sb: GState,
                   label: str) -> Bool:
        if va == vb:
            return va
        if va.val is not None and vb.val is not None:
            return Bool()  # True vs False
        if va.val is not None:
            va, vb = vb, va  # va symbolic, vb constant (or both symbolic)
            sa, sb = sb, sa
        if vb.val is None:
            # Two different symbolic tests: same test, different weakness.
            if va.test is not None and va.test == vb.test:
                carry, carry_at = self._merge_carries(va, vb, sa, sb, label)
                if va.weak == "" or va.weak == vb.weak:
                    return Bool(None, va.test,
                                vb.weak if va.weak == "" else va.weak,
                                carry, carry_at)
                if vb.weak == "":
                    return Bool(None, va.test, va.weak, carry, carry_at)
            return Bool()
        if va.test is None:
            return Bool()
        # Constant ⊔ test: the test stays usable only on the edge the
        # constant cannot reach — and on that edge control *must* have
        # come through the symbolic side, so the difference facts the
        # join is about to drop still hold there. Carry them (plus any
        # still-valid carry the symbolic side already rode).
        need = "true" if vb.val is False else "false"
        if va.weak in ("", need):
            base = (
                _carry_closure(sa, va.carry)
                if va.carry and va.carry_at == label else sa.facts
            )
            return Bool(None, va.test, need,
                        _dropped_facts(base, sb.facts), label)
        return Bool()

    def _merge_carries(self, va: Bool, vb: Bool, sa: GState, sb: GState,
                       label: str):
        """Sound carry for a same-test join: a fact survives only if it is
        entailed on *both* sides' symbolic provenance — each side's own
        facts plus its own carry — and only while every contributing carry
        was minted at this very join block (its variables still describe
        current-iteration values there)."""
        if not va.carry and not vb.carry:
            return (), ""
        minted_at = {x.carry_at for x in (va, vb) if x.carry}
        if minted_at != {label}:
            return (), ""
        fa = _carry_closure(sa, va.carry)
        fb = _carry_closure(sb, vb.carry)
        candidates = set(va.carry) | set(vb.carry)
        carry = tuple(sorted(
            fact for fact in candidates
            if fa.entails(*fact) and fb.entails(*fact)
        ))
        return carry, (label if carry else "")

    def _hull(self, out: GState, a: GState, b: GState, slot: str,
              na: Num, nb: Num, label: str) -> Num:
        """Join two numeric slot values into a join variable whose bounds
        are the convex hull of both sides'.

        The join variable's name is stable across fixpoint iterations, so
        on a loop-carried slot one side is typically ``J + k`` for the
        *previous* round's ``J`` — derive the new bounds from the side
        states first, and only then retire the old variable.
        """
        jvar = f"J!{label}!{slot}"
        derived = []
        partners = (a.facts.vars() | b.facts.vars() | {ZERO}) - {jvar}
        for w in partners:
            up_a = a.facts.bound(na.var, w)
            up_b = b.facts.bound(nb.var, w)
            if up_a is not None and up_b is not None:
                derived.append((jvar, w, max(up_a + na.off, up_b + nb.off)))
            lo_a = a.facts.bound(w, na.var)
            lo_b = b.facts.bound(w, nb.var)
            if lo_a is not None and lo_b is not None:
                derived.append((w, jvar, max(lo_a - na.off, lo_b - nb.off)))
        if na.var == nb.var and na.var != jvar:
            # Same live base variable: keep the exact relation to it too.
            lo, hi = min(na.off, nb.off), max(na.off, nb.off)
            derived.append((jvar, na.var, hi))
            derived.append((na.var, jvar, -lo))
        out.facts.kill(jvar)
        for u, v, c in derived:
            out.facts.add(u, v, c)
        return Num(jvar, 0)

    # -- operand evaluation -------------------------------------------------

    def _eval(self, state: GState, operand):
        if isinstance(operand, Register):
            return state.regs.get(operand.name, Unknown(f"?{operand.name}"))
        if isinstance(operand, ConstInt):
            return Num(ZERO, operand.value)
        if isinstance(operand, ConstBool):
            return Bool(operand.value)
        if isinstance(operand, ConstNull):
            return _NULL_CONST
        return Unknown("?operand")

    def _as_num(self, value) -> Optional[Num]:
        if isinstance(value, Num):
            return value
        if isinstance(value, Unknown):
            return Num(value.uid, 0)
        return None

    def _as_ptr(self, value) -> Optional[Ptr]:
        if isinstance(value, Ptr):
            return value
        if isinstance(value, Unknown):
            return Ptr(value.uid, MAYBE, None)
        return None

    def _set_unknown(self, state: GState, dest: Register) -> None:
        state.facts.kill(dest.name)
        state.regs[dest.name] = Unknown(dest.name)

    # -- transfer -----------------------------------------------------------

    def transfer(self, state: GState, insn, label: str, index: int) -> GState:
        if isinstance(insn, Alloca):
            state.regs[insn.dest.name] = SlotAddr(insn.dest.name)
        elif isinstance(insn, Store):
            target = self._eval(state, insn.ptr)
            if isinstance(target, SlotAddr):
                value = self._eval(state, insn.value)
                if isinstance(value, Ptr):
                    value = replace(value, origin=target.slot)
                if value is _NULL_CONST:
                    value = Ptr(f"N!{target.slot}", NULL, target.slot)
                state.slots[target.slot] = value
            # Heap stores never touch slots, lengths, or tracked facts.
        elif isinstance(insn, Load):
            source = self._eval(state, insn.ptr)
            if isinstance(source, SlotAddr):
                value = state.slots.get(source.slot)
                if value is None:
                    self._set_unknown(state, insn.dest)
                else:
                    state.regs[insn.dest.name] = value
            else:
                self._set_unknown(state, insn.dest)
        elif isinstance(insn, BinOp):
            self._transfer_binop(state, insn)
        elif isinstance(insn, ICmp):
            state.regs[insn.dest.name] = self._transfer_icmp(state, insn)
        elif isinstance(insn, GEP):
            state.regs[insn.dest.name] = Ptr(insn.dest.name, NONNULL, None)
        elif isinstance(insn, Call):
            self._transfer_call(state, insn, label, index)
        return state

    def _transfer_binop(self, state: GState, insn: BinOp) -> None:
        lhs = self._eval(state, insn.lhs)
        rhs = self._eval(state, insn.rhs)
        if insn.op in ("add", "sub", "mul"):
            nl, nr = self._as_num(lhs), self._as_num(rhs)
            result = None
            if nl is not None and nr is not None:
                if insn.op == "add":
                    if nr.var == ZERO:
                        result = Num(nl.var, nl.off + nr.off)
                    elif nl.var == ZERO:
                        result = Num(nr.var, nr.off + nl.off)
                elif insn.op == "sub":
                    if nr.var == ZERO:
                        result = Num(nl.var, nl.off - nr.off)
                    elif nl.var == nr.var:
                        result = Num(ZERO, nl.off - nr.off)
                elif nl.var == ZERO and nr.var == ZERO:
                    result = Num(ZERO, nl.off * nr.off)
            if result is None:
                self._set_unknown(state, insn.dest)
            else:
                state.regs[insn.dest.name] = result
            return
        # Boolean connectives.
        bl = lhs if isinstance(lhs, Bool) else Bool()
        br = rhs if isinstance(rhs, Bool) else Bool()
        state.regs[insn.dest.name] = self._bool_binop(insn.op, bl, br)

    def _bool_binop(self, op: str, bl: Bool, br: Bool) -> Bool:
        if op == "xor":
            # The frontend uses xor-with-true for `not`.
            if br == Bool(True):
                return _negate_bool(bl)
            if bl == Bool(True):
                return _negate_bool(br)
            if br == Bool(False):
                return bl
            if bl == Bool(False):
                return br
            return Bool()
        if op == "and":
            if bl.val is False or br.val is False:
                return Bool(False)
            if bl.val is True:
                return br
            if br.val is True:
                return bl
            if bl.test is not None and br.test is not None \
                    and bl.weak in ("", "true") and br.weak in ("", "true"):
                return Bool(None, ("and", bl.test, br.test), "true")
            return Bool()
        if op == "or":
            if bl.val is True or br.val is True:
                return Bool(True)
            if bl.val is False:
                return br
            if br.val is False:
                return bl
            if bl.test is not None and br.test is not None \
                    and bl.weak in ("", "false") and br.weak in ("", "false"):
                return Bool(None, ("or", bl.test, br.test), "false")
            return Bool()
        return Bool()

    def _transfer_icmp(self, state: GState, insn: ICmp) -> Bool:
        lhs = self._eval(state, insn.lhs)
        rhs = self._eval(state, insn.rhs)
        pred = insn.pred
        # Pointer against nil.
        if lhs is _NULL_CONST or rhs is _NULL_CONST:
            other = rhs if lhs is _NULL_CONST else lhs
            if other is _NULL_CONST:
                return Bool(pred == "eq")
            tv = self._as_ptr(other)
            if tv is None:
                return Bool()
            if tv.null == NULL:
                return Bool(pred == "eq")
            if tv.null == NONNULL:
                return Bool(pred == "ne")
            return Bool(None, ("nil", tv, pred))
        # Boolean equality.
        if isinstance(lhs, Bool) and isinstance(rhs, Bool):
            if lhs.val is not None and rhs.val is not None:
                same = lhs.val == rhs.val
                return Bool(same if pred == "eq" else not same)
            return Bool()
        # Pointer identity: pids are per-allocation-site, not per-object,
        # so never fold — the executor folds these concretely anyway.
        if isinstance(lhs, Ptr) or isinstance(rhs, Ptr):
            return Bool()
        nl, nr = self._as_num(lhs), self._as_num(rhs)
        if nl is None or nr is None:
            return Bool()
        decided = self._cmp_entailed(state.facts, pred, nl, nr)
        if decided is not None:
            return Bool(decided)
        return Bool(None, ("icmp", pred, nl, nr))

    def _cmp_entailed(self, facts: DiffBounds, pred: str, l: Num,
                      r: Num) -> Optional[bool]:
        def holds(p: str) -> bool:
            if p == "slt":
                return facts.entails(l.var, r.var, r.off - l.off - 1)
            if p == "sle":
                return facts.entails(l.var, r.var, r.off - l.off)
            if p == "sgt":
                return facts.entails(r.var, l.var, l.off - r.off - 1)
            if p == "sge":
                return facts.entails(r.var, l.var, l.off - r.off)
            if p == "eq":
                return holds("sle") and holds("sge")
            if p == "ne":
                return holds("slt") or holds("sgt")
            return False

        if holds(pred):
            return True
        if holds(_NEG_PRED[pred]):
            return False
        return None

    def _transfer_call(self, state: GState, insn: Call, label: str,
                       index: int) -> None:
        callee = insn.callee
        if callee in ("list.new", "newobject"):
            state.regs[insn.dest.name] = Ptr(insn.dest.name, NONNULL, None)
            return
        if callee == "list.len":
            pv = self._as_ptr(self._eval(state, insn.args[0]))
            if pv is None:
                self._set_unknown(state, insn.dest)
                return
            lenvar = f"L!{pv.pid}!{state.epoch}"
            state.facts.add(ZERO, lenvar, 0)  # lengths are non-negative
            state.regs[insn.dest.name] = Num(lenvar, 0)
            return
        if callee == "list.append":
            # Old length variables keep describing values captured before
            # the append; future list.len calls mint new ones.
            state.epoch = f"{label}:{index}"
            return
        if callee == "assume":
            cond = self._eval(state, insn.args[0])
            if isinstance(cond, Bool) and cond.test is not None \
                    and cond.weak in ("", "true"):
                refined = self._apply_test(state, cond.test, positive=True)
                if refined is not None:
                    return  # state refined in place
            return
        summary = self.summaries.get(callee)
        if summary is not None:
            self._apply_summary(state, insn, summary, label, index)
            return
        # An opaque GoPy callee: it may append to any reachable list (so
        # the epoch turns) but cannot reassign caller slots.
        state.epoch = f"{label}:{index}"
        if insn.dest is not None:
            self._set_unknown(state, insn.dest)

    def _apply_summary(self, state: GState, insn: Call, summary,
                       label: str, index: int) -> None:
        """Apply a :class:`~repro.analysis.interproc.FunctionSummary` at a
        call site instead of havocking: purity decides whether the list
        epoch turns, and the summary's token facts are substituted with
        the caller-side views of the arguments."""
        # Bind tokens against the entry state of the call — ``len{i}``
        # means "argument length at entry", so its caller-side variable
        # must use the epoch *before* any turn below.
        subst: Dict[str, Tuple[str, int]] = {"": (ZERO, 0)}
        for i, arg in enumerate(insn.args):
            value = self._eval(state, arg)
            if isinstance(value, (Num, Unknown)):
                num = self._as_num(value)
                subst[f"arg{i}"] = (num.var, num.off)
                continue
            pv = self._as_ptr(value)
            if pv is not None:
                lenvar = f"L!{pv.pid}!{state.epoch}"
                state.facts.add(ZERO, lenvar, 0)  # lengths are non-negative
                subst[f"len{i}"] = (lenvar, 0)
        if not summary.pure:
            state.epoch = f"{label}:{index}"
        if insn.dest is None:
            return
        dest = insn.dest
        if summary.havocked:
            self._set_unknown(state, dest)
            return
        if summary.ret_kind == "int":
            state.facts.kill(dest.name)
            state.regs[dest.name] = Num(dest.name, 0)
            ret_subst = dict(subst)
            ret_subst["ret"] = (dest.name, 0)
            for u, v, c in _subst_facts(summary.ret_facts, ret_subst):
                # ``add`` returning False means this program point is
                # abstractly dead; the (true) facts stay recorded.
                state.facts.add(u, v, c)
            return
        if summary.ret_kind == "bool":
            if not summary.may_false:
                state.regs[dest.name] = Bool(True)
            elif not summary.may_true:
                state.regs[dest.name] = Bool(False)
            else:
                t = _subst_facts(summary.true_facts, subst)
                f = _subst_facts(summary.false_facts, subst)
                if t or f:
                    state.regs[dest.name] = Bool(None, ("summary", t, f))
                else:
                    state.regs[dest.name] = Bool()
            return
        self._set_unknown(state, dest)

    # -- edge refinement ------------------------------------------------------

    def edge(self, state: GState, block: BasicBlock, succ: str):
        state.at = succ
        state = self._refine_edge(state, block, succ)
        if state is not None:
            self._canonicalize(state, succ)
        return state

    def _refine_edge(self, state: GState, block: BasicBlock, succ: str):
        term = block.terminator
        if isinstance(term, ElidedGuardBr):
            # The executor assumes the surviving side's condition on this
            # edge (keeping path conditions bit-identical to the unpruned
            # run), so the analysis may assume it too — this regains
            # precision when summarizing modules that were already pruned.
            cond = self._eval(state, term.cond)
            positive = not term.panic_on_true
            if not isinstance(cond, Bool):
                return state
            if cond.val is not None:
                return state if cond.val == positive else None
            if cond.test is None:
                return state
            need = "true" if positive else "false"
            if cond.weak in ("", need):
                state = self._apply_carry(state, cond, block.label, need)
                if state is None:
                    return None
                return self._apply_test(state, cond.test, positive=positive)
            return state
        if not isinstance(term, CondBr):
            return state
        cond = self._eval(state, term.cond)
        if not isinstance(cond, Bool):
            return state
        # Both labels may coincide; then no refinement is sound.
        if term.then_label == term.else_label:
            return state
        on_true = succ == term.then_label
        if cond.val is not None:
            return state if cond.val == on_true else None
        if cond.test is None:
            return state
        need = "true" if on_true else "false"
        if cond.weak in ("", need):
            state = self._apply_carry(state, cond, block.label, need)
            if state is None:
                return None
            return self._apply_test(state, cond.test, positive=on_true)
        return state

    def _apply_carry(self, state: GState, cond: Bool, label: str,
                     need: str) -> Optional[GState]:
        """Re-apply the facts a short-circuit join dropped, on the edge
        the joined-in constant cannot reach (see :class:`Bool`). Only
        valid while the branch sits in the carry's own block and on the
        weak-designated edge; None means the edge is infeasible."""
        if not cond.carry or cond.weak != need or cond.carry_at != label:
            return state
        for u, v, c in cond.carry:
            if not state.facts.add(u, v, c):
                return None
        return state

    def _canonicalize(self, state: GState, succ: str) -> None:
        """Rename numeric slot values flowing into a join point to the
        point's canonical variables (recording equality), keeping the
        fixpoint's variable names stable across iterations."""
        if self.cfg is None or len(self.cfg.preds.get(succ, ())) < 2:
            return
        for slot, value in list(state.slots.items()):
            if not isinstance(value, Num):
                continue
            jvar = f"J!{succ}!{slot}"
            if value.var == jvar:
                if value.off == 0:
                    continue
                # Self-carried update (e.g. ``i += 1`` around a loop):
                # shift every fact on the variable by the offset.
                shifted = []
                for (u, v), c in state.facts.items():
                    if u == jvar and v != jvar:
                        shifted.append((u, v, c + value.off))
                    elif v == jvar and u != jvar:
                        shifted.append((u, v, c - value.off))
                state.facts.kill(jvar)
                for u, v, c in shifted:
                    state.facts.add(u, v, c)
            else:
                state.facts.kill(jvar)
                state.facts.add(jvar, value.var, value.off)
                state.facts.add(value.var, jvar, -value.off)
            state.slots[slot] = Num(jvar, 0)

    def _apply_test(self, state: GState, test: tuple,
                    positive: bool) -> Optional[GState]:
        """Refine ``state`` with ``test`` (or its negation); None means
        the combination is infeasible."""
        kind = test[0]
        if kind == "icmp":
            _, pred, l, r = test
            if not positive:
                pred = _NEG_PRED[pred]
            return self._add_cmp(state, pred, l, r)
        if kind == "nil":
            _, tv, pred = test
            is_null = (pred == "eq") == positive
            return self._refine_nullness(state, tv, NULL if is_null else NONNULL)
        if kind == "summary":
            # The facts a summarized boolean callee guarantees on the
            # branch taken (already substituted to caller variables).
            _, true_facts, false_facts = test
            for u, v, c in (true_facts if positive else false_facts):
                if not state.facts.add(u, v, c):
                    return None
            return state
        if kind == "and":
            if positive:
                for sub in (test[1], test[2]):
                    state = self._apply_test(state, sub, True)
                    if state is None:
                        return None
            return state
        if kind == "or":
            if not positive:
                for sub in (test[1], test[2]):
                    state = self._apply_test(state, _neg_test(sub), True)
                    if state is None:
                        return None
            return state
        return state

    def _add_cmp(self, state: GState, pred: str, l: Num,
                 r: Num) -> Optional[GState]:
        ok = True
        if pred == "slt":
            ok = state.facts.add(l.var, r.var, r.off - l.off - 1)
        elif pred == "sle":
            ok = state.facts.add(l.var, r.var, r.off - l.off)
        elif pred == "sgt":
            ok = state.facts.add(r.var, l.var, l.off - r.off - 1)
        elif pred == "sge":
            ok = state.facts.add(r.var, l.var, l.off - r.off)
        elif pred == "eq":
            ok = state.facts.add(l.var, r.var, r.off - l.off) and \
                state.facts.add(r.var, l.var, l.off - r.off)
        # "ne" is non-convex: nothing sound to add.
        return state if ok else None

    def _refine_nullness(self, state: GState, tv: Ptr,
                         null: str) -> Optional[GState]:
        if tv.null != MAYBE and tv.null != null:
            return None
        for name, value in list(state.regs.items()):
            if value == tv:
                state.regs[name] = replace(value, null=null)
        if tv.origin is not None:
            slot_value = state.slots.get(tv.origin)
            # Only write back while the slot still holds the tested value.
            if isinstance(slot_value, Ptr) and slot_value.pid == tv.pid \
                    and slot_value.null == tv.null:
                state.slots[tv.origin] = replace(slot_value, null=null)
        return state

"""Interprocedural analysis: call graphs and bottom-up function summaries.

The intraprocedural :class:`~repro.analysis.domains.GuardDomain` loses
every fact at a call site — an opaque callee havocs the destination and
turns the list epoch, so ``ce = shared_prefix_len(a, b)`` tells the
caller nothing about ``ce`` even though the callee provably returns a
value in ``[0, min(len(a), len(b))]``. This package closes that gap:

- :mod:`repro.analysis.interproc.callgraph` builds the whole-program
  call graph over a set of AbsLLVM modules and orders its strongly
  connected components bottom-up (callees before callers);
- :mod:`repro.analysis.interproc.summaries` runs the guard domain over
  each function in that order and extracts a :class:`FunctionSummary` —
  append-purity (does the callee ever turn the caller's list epoch?),
  difference constraints relating an integer return value to the
  entry lengths of list arguments, and the label-relation facts a
  boolean return value implies (``is_prefix(a, b)`` returning True
  means ``len(a) <= len(b)``). Recursive components are havocked.

Summaries are *consumed* by the same domain: ``GuardDomain(cfg,
summaries=...)`` applies them at call sites instead of havocking, which
is what lets the pruning pass discharge wire-format and name-walk
guards whose proofs span a call.

Everything here is deterministic — orders derive from module insertion
order and block labels, never from hashes of ids — and the whole
summary table folds into a stable digest
(:func:`~repro.analysis.interproc.summaries.summaries_digest`) that
rides the verification cache keys and telemetry.
"""

from repro.analysis.interproc.callgraph import CallGraph
from repro.analysis.interproc.summaries import (
    SUMMARY_SCHEMA_VERSION,
    FunctionSummary,
    compute_summaries,
    summaries_digest,
)

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "SUMMARY_SCHEMA_VERSION",
    "compute_summaries",
    "summaries_digest",
]

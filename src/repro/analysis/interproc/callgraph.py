"""Whole-program call graph over AbsLLVM modules, with bottom-up SCCs.

Function names are a single global namespace (the executor resolves a
callee by searching its module list in order), so the graph is keyed by
bare function name. Primitives the executor interprets directly
(``list.len`` and friends) are not nodes — they appear as the
``primitive_calls`` of their callers instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.ir import Call
from repro.ir.function import Function
from repro.ir.module import Module

#: Callees the symbolic executor interprets without GoPy code. None of
#: them appends to a caller-reachable list except ``list.append`` itself.
PRIMITIVES = frozenset({"list.new", "list.len", "list.append", "newobject",
                        "assume"})


class CallGraph:
    """Direct-call graph over ``modules``, in deterministic order.

    ``edges[f]`` are the GoPy callees of ``f`` (defined somewhere in the
    module set); ``primitive_calls[f]`` the interpreter primitives it
    invokes; ``unknown_calls[f]`` any callee defined nowhere — treated
    as worst-case by every client.
    """

    def __init__(self, modules: Sequence[Module]):
        self.functions: Dict[str, Function] = {}
        for module in modules:
            for name, function in module.functions.items():
                # First definition wins, matching the executor's search.
                self.functions.setdefault(name, function)
        self.edges: Dict[str, List[str]] = {}
        self.primitive_calls: Dict[str, Set[str]] = {}
        self.unknown_calls: Dict[str, Set[str]] = {}
        for name, function in self.functions.items():
            callees: List[str] = []
            prims: Set[str] = set()
            unknown: Set[str] = set()
            for block in function.blocks.values():
                for insn in block.instructions:
                    if not isinstance(insn, Call):
                        continue
                    callee = insn.callee
                    if callee in self.functions:
                        if callee not in callees:
                            callees.append(callee)
                    elif callee in PRIMITIVES:
                        prims.add(callee)
                    else:
                        unknown.add(callee)
            self.edges[name] = callees
            self.primitive_calls[name] = prims
            self.unknown_calls[name] = unknown

    def sccs_bottom_up(self) -> List[Tuple[str, ...]]:
        """Strongly connected components, callees before callers.

        Iterative Tarjan keyed by the deterministic function order, so
        the output — and everything derived from it, including the
        summary digest — is stable across runs.
        """
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[Tuple[str, ...]] = []
        counter = [0]

        for root in self.functions:
            if root in index:
                continue
            # Iterative DFS: (node, iterator position over its edges).
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                edges = self.edges[node]
                while pos < len(edges):
                    succ = edges[pos]
                    pos += 1
                    if succ not in index:
                        work.append((node, pos))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sccs

    def is_recursive(self, component: Iterable[str]) -> bool:
        members = set(component)
        if len(members) > 1:
            return True
        (only,) = members
        return only in self.edges.get(only, ())

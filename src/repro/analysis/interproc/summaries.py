"""Bottom-up function summaries over the guard domain.

A :class:`FunctionSummary` is everything the caller-side analysis may
soundly assume about a call without looking inside it:

``pure``
    The callee never appends to any list reachable from the caller
    (transitively — through other GoPy calls too). A pure call does not
    turn the caller's list epoch, so length facts survive it.

``ret_facts``
    For integer-returning functions: closed difference constraints
    ``u - v <= c`` over the tokens ``ret`` (the return value),
    ``len{i}`` (the entry length of the i-th argument, when it is a
    pointer), ``arg{i}`` (the i-th argument, when it is an integer) and
    ``""`` (the zero anchor). ``shared_prefix_len`` summarizes to
    ``ret >= 0``, ``ret <= len0``, ``ret <= len1`` — exactly the facts
    that discharge ``rr.rname[ce]`` guards in callers.

``true_facts`` / ``false_facts``
    For boolean-returning functions: the same constraint language,
    valid on the call sites' True/False branch respectively. These are
    the label-relation tokens of the interprocedural domain:
    ``is_prefix(a, b) == True`` implies ``len(a) <= len(b)``,
    ``name_equal(a, b) == True`` implies ``len(a) == len(b)``.

``may_true`` / ``may_false``
    Whether any abstractly-reachable return site can produce that
    constant; a boolean callee with ``may_false == False`` folds to
    True at every call site.

Summaries for recursive components are *havocked* — purity is still
computed (it is a simple syntactic fixpoint) but no return facts are
claimed. Extraction runs the same :class:`GuardDomain` the pruning pass
uses, with the already-computed callee summaries plugged in, so facts
accumulate bottom-up across the whole module set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import analyze
from repro.analysis.interproc.callgraph import CallGraph
from repro.ir import PointerType, Ret
from repro.ir.function import Function
from repro.ir.types import BoolType, IntType

#: Bump when the summary language or its call-site interpretation
#: changes; rides every cache key through ``summaries_digest``.
SUMMARY_SCHEMA_VERSION = 1

#: A difference constraint over summary tokens: ``u - v <= c``.
FactTuple = Tuple[str, str, int]


@dataclass(frozen=True)
class FunctionSummary:
    """What a call site may assume about ``function`` (see module doc)."""

    function: str
    pure: bool = False
    ret_kind: str = "none"  # "int" | "bool" | "none" | "other"
    ret_facts: Tuple[FactTuple, ...] = ()
    true_facts: Tuple[FactTuple, ...] = ()
    false_facts: Tuple[FactTuple, ...] = ()
    may_true: bool = True
    may_false: bool = True
    #: True when recursion or a fixpoint bail-out suppressed extraction.
    havocked: bool = False

    def describe(self) -> str:
        bits = [("pure" if self.pure else "impure"), self.ret_kind]
        if self.havocked:
            bits.append("havocked")
        if self.ret_facts:
            bits.append(f"{len(self.ret_facts)} ret facts")
        if self.true_facts or self.false_facts:
            bits.append(
                f"{len(self.true_facts)}T/{len(self.false_facts)}F facts"
            )
        return f"{self.function}: " + ", ".join(bits)


def compute_summaries(
    modules: Sequence[object],
    widen_after: int = 8,
    max_visits: int = 500,
) -> Dict[str, FunctionSummary]:
    """Summaries for every function defined in ``modules``, bottom-up."""
    graph = CallGraph(modules)
    pure = _purity_fixpoint(graph)
    summaries: Dict[str, FunctionSummary] = {}
    for component in graph.sccs_bottom_up():
        if graph.is_recursive(component):
            for name in component:
                summaries[name] = _havoc(graph.functions[name], pure[name])
            continue
        (name,) = component
        summaries[name] = _summarize_function(
            graph.functions[name], summaries, pure[name],
            widen_after, max_visits,
        )
    return summaries


def summaries_digest(summaries: Dict[str, FunctionSummary]) -> str:
    """A stable digest of the whole summary table (cache keys, telemetry).

    Covers the schema version, so changing how summaries are interpreted
    invalidates every cached artifact built on the old meaning.
    """
    h = hashlib.sha256()
    h.update(f"summary-schema:{SUMMARY_SCHEMA_VERSION}".encode())
    for name in sorted(summaries):
        h.update(repr(summaries[name]).encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Purity
# ---------------------------------------------------------------------------


def _purity_fixpoint(graph: CallGraph) -> Dict[str, bool]:
    """Append-purity: False iff the function may append to a list the
    caller can reach — a direct ``list.append``, an unknown callee
    (worst case), or any impure GoPy callee."""
    pure = {name: True for name in graph.functions}
    for name in graph.functions:
        if "list.append" in graph.primitive_calls[name] or \
                graph.unknown_calls[name]:
            pure[name] = False
    changed = True
    while changed:
        changed = False
        for name, callees in graph.edges.items():
            if pure[name] and any(not pure[c] for c in callees):
                pure[name] = False
                changed = True
    return pure


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _havoc(function: Function, pure: bool) -> FunctionSummary:
    return FunctionSummary(
        function.name, pure=pure, ret_kind=_ret_kind(function), havocked=True
    )


def _ret_kind(function: Function) -> str:
    rt = function.return_type
    if rt is None:
        return "none"
    if isinstance(rt, IntType):
        return "int"
    if isinstance(rt, BoolType):
        return "bool"
    return "other"


def _token_map(function: Function) -> Dict[str, Tuple[str, int]]:
    """Summary token -> (domain variable, offset) inside the callee."""
    from repro.analysis.domains import ZERO

    tokens: Dict[str, Tuple[str, int]] = {"": (ZERO, 0)}
    for i, (pname, ty) in enumerate(function.params):
        if isinstance(ty, IntType):
            tokens[f"arg{i}"] = (f"P!{pname}", 0)
        elif isinstance(ty, PointerType):
            # The entry-epoch length variable list.len mints for the
            # parameter; valid as "length at entry" regardless of later
            # epoch turns, because epoch turns rename rather than reuse.
            tokens[f"len{i}"] = (f"L!P!{pname}!init", 0)
    return tokens


def _project_facts(
    state,
    tokens: Dict[str, Tuple[str, int]],
) -> Dict[Tuple[str, str], int]:
    """The tightest ``u - v <= c`` over every ordered token pair."""
    out: Dict[Tuple[str, str], int] = {}
    for tu, (u_var, u_off) in tokens.items():
        for tv, (v_var, v_off) in tokens.items():
            if tu == tv:
                continue
            bound = state.facts.bound(u_var, v_var)
            if bound is not None:
                out[(tu, tv)] = bound + u_off - v_off
    return out


def _join_fact_maps(
    acc: Optional[Dict[Tuple[str, str], int]],
    new: Dict[Tuple[str, str], int],
) -> Dict[Tuple[str, str], int]:
    """Pointwise max over common keys (the sound join across ret sites)."""
    if acc is None:
        return dict(new)
    return {
        key: max(c, new[key])
        for key, c in acc.items()
        if key in new
    }


def _as_fact_tuple(facts: Optional[Dict[Tuple[str, str], int]],
                   ) -> Tuple[FactTuple, ...]:
    if not facts:
        return ()
    return tuple(sorted((u, v, c) for (u, v), c in facts.items()))


def _summarize_function(
    function: Function,
    summaries: Dict[str, FunctionSummary],
    pure: bool,
    widen_after: int,
    max_visits: int,
) -> FunctionSummary:
    from repro.analysis.domains import Bool, GuardDomain

    ret_kind = _ret_kind(function)
    cfg = CFG(function)
    domain = GuardDomain(cfg, summaries=summaries)
    try:
        result = analyze(function, domain, cfg=cfg,
                         widen_after=widen_after, max_visits=max_visits)
    except RuntimeError:
        return _havoc(function, pure)

    tokens = _token_map(function)
    ret_acc: Optional[Dict[Tuple[str, str], int]] = None
    true_acc: Optional[Dict[Tuple[str, str], int]] = None
    false_acc: Optional[Dict[Tuple[str, str], int]] = None
    may_true = False
    may_false = False

    for label, block in function.blocks.items():
        term = block.terminator
        if not isinstance(term, Ret):
            continue
        state = result.state_at_terminator(label)
        if state is None:
            continue  # abstractly unreachable: contributes nothing
        value = domain._eval(state, term.value) if term.value is not None \
            else None
        if ret_kind == "int":
            num = domain._as_num(value)
            site_tokens = dict(tokens)
            if num is not None:
                site_tokens["ret"] = (num.var, num.off)
            ret_acc = _join_fact_maps(
                ret_acc, _project_facts(state, site_tokens)
            )
        elif ret_kind == "bool":
            site_facts = _project_facts(state, tokens)
            if isinstance(value, Bool) and value.val is True:
                may_true = True
                true_acc = _join_fact_maps(true_acc, site_facts)
            elif isinstance(value, Bool) and value.val is False:
                may_false = True
                false_acc = _join_fact_maps(false_acc, site_facts)
            else:
                # Symbolic result: this site may produce either value.
                may_true = may_false = True
                true_acc = _join_fact_maps(true_acc, site_facts)
                false_acc = _join_fact_maps(false_acc, site_facts)

    if ret_kind != "bool":
        may_true = may_false = True
    elif not may_true and not may_false:
        # No reachable return site at all (infinite loop / all-panic):
        # claim nothing.
        may_true = may_false = True
    return FunctionSummary(
        function.name,
        pure=pure,
        ret_kind=ret_kind,
        ret_facts=_as_fact_tuple(ret_acc),
        true_facts=_as_fact_tuple(true_acc),
        false_facts=_as_fact_tuple(false_acc),
        may_true=may_true,
        may_false=may_false,
    )

"""The GoPy anti-modularity linter.

The paper's Figure 3 observation — production Go engine code communicates
through exposed struct fields and boolean control flags rather than
interfaces — is what made layer boundaries hard to draw and summaries hard
to name. This linter walks the frontend AST and the compiled IR of GoPy
modules and reports exactly those smells, plus the mechanical hygiene the
restricted subset demands, with stable rule ids and ``file:line:col``
diagnostics (:func:`repro.frontend.errors.format_diagnostic`).

Rule catalog (GP1xx subset, GP2xx dead code, GP3xx anti-modularity):

========  ==================================================================
GP101     construct outside the GoPy restricted subset (compiler rejection)
GP201     IR basic block unreachable from the function entry
GP202     slot possibly read before any store reaches it
GP203     statement can never execute (follows return/break/continue)
GP301     exposed struct field written across a layer boundary
GP302     boolean control-flag parameter steers branches in the callee
GP303     struct field read directly, bypassing the owner's accessors
========  ==================================================================

The GP4xx async-safety pack (:mod:`repro.analysis.lint_async`) extends the
catalog to the serving and campaign planes — blocking calls inside
``async def``, await-spanning read-modify-write without a lock, and
write-then-replace without an fsync. Its rule ids live in the same
:data:`RULES` table so baselines and ``--format`` outputs are uniform.

Layer boundaries come from :mod:`repro.core.layers` (the structs named as
``ResultStruct`` in the interface config cross layer interfaces); accessor
ownership is inferred from the GoPy library modules themselves — a module
that defines two or more functions taking a struct as first parameter owns
that struct (``nodestack`` owns ``NodeStack``). GP303 additionally requires
the owner to export at least one *read* accessor (a first-parameter
function returning a value): result structs with write-only accessor
modules (``respops``) are produced on one side of a layer interface and
read on the other, so consumer reads are the protocol, not a smell.
Baselines make the linter adoptable on a codebase that already exhibits
the smells: findings are keyed *without* line numbers, so CI fails only on
new findings, not on existing code drifting a few lines.
"""

from __future__ import annotations

import ast
import inspect
import json
import textwrap
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG
from repro.frontend.errors import GoPyError, format_diagnostic

#: Rule id -> one-line description (the catalog in docs/api.md mirrors this).
RULES: Dict[str, str] = {
    "GP101": "construct outside the GoPy restricted subset",
    "GP201": "unreachable basic block",
    "GP202": "possible use before assignment",
    "GP203": "statement can never execute",
    "GP301": "exposed struct field written across a layer boundary",
    "GP302": "boolean control-flag parameter",
    "GP303": "struct field read bypassing the owner module's accessors",
    "GP401": "blocking call inside an async function",
    "GP402": "await-spanning shared-state mutation without a lock",
    "GP403": "file written and swapped into place without fsync",
}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic.

    ``detail`` is the line-number-free discriminator used in baseline keys
    (a field name, a slot name, a block label) so findings stay stable as
    unrelated code moves.
    """

    rule: str
    path: str
    line: Optional[int]
    col: Optional[int]
    module: str
    function: str
    message: str
    detail: str = ""

    def format(self) -> str:
        return format_diagnostic(self.path, self.line, self.col,
                                 self.rule, self.message)

    def baseline_key(self) -> str:
        return f"{self.module}:{self.function}:{self.rule}:{self.detail}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "module": self.module,
            "function": self.function,
            "message": self.message,
            "detail": self.detail,
        }


def _sort_key(finding: Finding):
    return (finding.path, finding.line or 0, finding.col or 0,
            finding.rule, finding.detail)


# ---------------------------------------------------------------------------
# Boundary discovery
# ---------------------------------------------------------------------------


class _AnySession:
    """Attribute sink so layer param builders run without a live session."""

    def __getattr__(self, name):
        return None


def interface_structs() -> Set[str]:
    """Struct types that cross a summarized-layer interface.

    Read from the interface config (:mod:`repro.core.layers`) rather than
    hard-coded, so redrawing a layer boundary retargets the linter too.
    """
    from repro.core.layers import resolution_layers
    from repro.summary.params import ResultStruct

    structs: Set[str] = set()
    for layer in resolution_layers():
        if layer.params is None:
            continue
        for spec in layer.params(_AnySession()):
            if isinstance(spec, ResultStruct):
                structs.add(spec.struct_name)
    return structs


def accessor_owners(
    library_modules: Optional[Sequence[object]] = None,
) -> Dict[str, str]:
    """Struct name -> owning GoPy library module name.

    A library module *owns* a struct when it defines at least two functions
    taking that struct as their first annotated parameter — the accessor
    set (``stack_push``/``stack_top``/``stack_is_empty`` make ``nodestack``
    the owner of ``NodeStack``). Reads and writes of owned structs' fields
    outside the owner are the Figure 3 anti-pattern.
    """
    if library_modules is None:
        from repro.engine.gopy import nameops, nodestack, rawname, respops

        library_modules = (nameops, nodestack, rawname, respops)
    owners: Dict[str, str] = {}
    for module in library_modules:
        tree = _module_ast(module)
        counts: Dict[str, int] = {}
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef) or not node.args.args:
                continue
            first = node.args.args[0].annotation
            if isinstance(first, ast.Name):
                counts[first.id] = counts.get(first.id, 0) + 1
        for struct, count in counts.items():
            if count >= 2:
                owners[struct] = _module_name(module)
    return owners


def library_signatures(
    library_modules: Optional[Sequence[object]] = None,
) -> Dict[str, str]:
    """Library function name -> returned struct type name.

    Lets the linter type locals like ``stack = stack_new()`` so direct
    field reads on them (the actual Figure 3 pattern — production code
    builds the stack through the accessor, then indexes it by hand) are
    caught, not just reads on annotated parameters.
    """
    if library_modules is None:
        from repro.engine.gopy import nameops, nodestack, rawname, respops

        library_modules = (nameops, nodestack, rawname, respops)
    returns: Dict[str, str] = {}
    for module in library_modules:
        for node in _module_ast(module).body:
            if (isinstance(node, ast.FunctionDef)
                    and isinstance(node.returns, ast.Name)
                    and node.returns.id[:1].isupper()):
                returns[node.name] = node.returns.id
    return returns


def readable_structs(
    library_modules: Optional[Sequence[object]] = None,
) -> Set[str]:
    """Structs whose owner module exports at least one *read* accessor — a
    function taking the struct as first annotated parameter and returning
    a value. Only these participate in GP303: ``nodestack`` offers
    ``stack_top``/``stack_is_empty`` so raw ``stack.nodes`` indexing
    bypasses something; ``respops`` is write-only, so reading the result
    structs it guards is the layer protocol, not a bypass."""
    if library_modules is None:
        from repro.engine.gopy import nameops, nodestack, rawname, respops

        library_modules = (nameops, nodestack, rawname, respops)
    readable: Set[str] = set()
    for module in library_modules:
        for node in _module_ast(module).body:
            if not isinstance(node, ast.FunctionDef) or not node.args.args:
                continue
            first = node.args.args[0].annotation
            returns = node.returns
            if (isinstance(first, ast.Name)
                    and returns is not None
                    and not (isinstance(returns, ast.Constant)
                             and returns.value is None)):
                readable.add(first.id)
    return readable


# ---------------------------------------------------------------------------
# AST rules
# ---------------------------------------------------------------------------


def _module_name(py_module) -> str:
    return py_module.__name__.rsplit(".", 1)[-1]


def _module_path(py_module) -> str:
    return getattr(py_module, "__file__", None) or f"<{_module_name(py_module)}>"


def _module_ast(py_module) -> ast.Module:
    return ast.parse(textwrap.dedent(inspect.getsource(py_module)))


def _param_struct_types(fdef: ast.FunctionDef) -> Dict[str, str]:
    """Parameter name -> annotated struct type name (plain ``Name``
    annotations only; ``list[int]`` etc. are not structs)."""
    out: Dict[str, str] = {}
    for arg in fdef.args.args:
        if isinstance(arg.annotation, ast.Name):
            out[arg.arg] = arg.annotation.id
    return out


def _bool_params(fdef: ast.FunctionDef) -> Set[str]:
    return {
        arg.arg
        for arg in fdef.args.args
        if isinstance(arg.annotation, ast.Name) and arg.annotation.id == "bool"
    }


def _flag_names(test: ast.expr) -> Iterable[Tuple[str, ast.expr]]:
    """Bare parameter names (possibly negated) steering a branch test."""
    if isinstance(test, ast.Name):
        yield test.id, test
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        yield from _flag_names(test.operand)
    elif isinstance(test, ast.BoolOp):
        for value in test.values:
            yield from _flag_names(value)


def _lint_function_ast(
    fdef: ast.FunctionDef,
    module: str,
    path: str,
    layer_structs: Set[str],
    owners: Dict[str, str],
    lib_returns: Dict[str, str],
    readable: Optional[Set[str]] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    structs = _param_struct_types(fdef)
    bools = _bool_params(fdef)

    # Locals typed through a library constructor/accessor return value
    # (``stack = stack_new()``): reads on these bypass accessors just as
    # much as reads on parameters do.
    local_structs: Dict[str, str] = {}
    for node in ast.walk(fdef):
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in lib_returns):
            local_structs[node.targets[0].id] = lib_returns[node.value.func.id]

    # GP302 — a bool parameter used as a branch condition: the callee runs
    # in caller-selected modes, the smell that forced SymbolicBool summary
    # parameters (section 6.4). One finding per flag, at its first test.
    flagged: Set[str] = set()
    for node in ast.walk(fdef):
        if not isinstance(node, (ast.If, ast.While, ast.IfExp)):
            continue
        for name, site in _flag_names(node.test):
            if name in bools and name not in flagged:
                flagged.add(name)
                findings.append(Finding(
                    "GP302", path, site.lineno, site.col_offset,
                    module, fdef.name,
                    f"boolean parameter '{name}' is a control flag "
                    f"(steers branches in '{fdef.name}')",
                    detail=name,
                ))

    # GP301 / GP303 — exposed-field traffic on structs that either cross a
    # layer interface or have a dedicated accessor module.
    seen: Set[Tuple[str, str]] = set()
    for node in ast.walk(fdef):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)):
                    continue
                struct = structs.get(target.value.id)
                if struct is None or owners.get(struct) == module:
                    continue
                if struct not in layer_structs and struct not in owners:
                    continue
                key = ("GP301", f"{struct}.{target.attr}")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "GP301", path, target.lineno, target.col_offset,
                    module, fdef.name,
                    f"writes exposed field {struct}.{target.attr} across "
                    f"a layer boundary",
                    detail=f"{struct}.{target.attr}",
                ))
        elif (isinstance(node, ast.Attribute)
              and isinstance(node.ctx, ast.Load)
              and isinstance(node.value, ast.Name)):
            name = node.value.id
            struct = structs.get(name) or local_structs.get(name)
            owner = owners.get(struct) if struct else None
            if owner is None or owner == module:
                continue
            if readable is not None and struct not in readable:
                continue  # write-only accessor owner: reads are the protocol
            key = ("GP303", f"{struct}.{node.attr}")
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "GP303", path, node.lineno, node.col_offset,
                module, fdef.name,
                f"reads {struct}.{node.attr} directly; use the "
                f"'{owner}' accessors",
                detail=f"{struct}.{node.attr}",
            ))

    # GP203 — statements after an unconditional control transfer. The
    # frontend silently drops these from the IR, so this is the only pass
    # that can see them; one finding per dead region.
    for stmts in _statement_lists(fdef):
        for i, stmt in enumerate(stmts[:-1]):
            if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                dead = stmts[i + 1]
                findings.append(Finding(
                    "GP203", path, dead.lineno, dead.col_offset,
                    module, fdef.name,
                    "statement can never execute (follows "
                    f"'{_transfer_word(stmt)}')",
                    detail=f"after-{_transfer_word(stmt)}",
                ))
                break
    return findings


def _transfer_word(stmt: ast.stmt) -> str:
    return type(stmt).__name__.lower()


def _statement_lists(fdef: ast.FunctionDef) -> Iterable[List[ast.stmt]]:
    yield fdef.body
    for node in ast.walk(fdef):
        for attr in ("body", "orelse"):
            stmts = getattr(node, attr, None)
            if isinstance(stmts, list) and stmts and node is not fdef:
                yield stmts


# ---------------------------------------------------------------------------
# IR rules
# ---------------------------------------------------------------------------


def _lint_function_ir(function, module: str, path: str) -> List[Finding]:
    from repro.ir import Alloca, Load, Panic, Store
    from repro.ir.values import Register

    findings: List[Finding] = []
    cfg = CFG(function)

    # GP201 — blocks the CFG cannot reach. Panic blocks are exempt: the
    # pruning pass legitimately orphans those before sweeping.
    for label in sorted(cfg.unreachable()):
        block = function.blocks[label]
        if isinstance(block.terminator, Panic):
            continue
        findings.append(Finding(
            "GP201", path, block.source_line, None, module, function.name,
            f"basic block '{label}' is unreachable from entry",
            detail=f"block-{label}",
        ))

    # GP202 — definite assignment over stack slots: a load from a slot
    # that some path reaches without a prior store. Must-analysis with
    # intersection join; the frontend stores every parameter in the entry
    # block, so parameters are covered without special cases.
    slots = {
        insn.dest.name
        for block in function.blocks.values()
        for insn in block.instructions
        if isinstance(insn, Alloca)
    }
    if not slots:
        return findings
    assigned_in: Dict[str, Set[str]] = {}
    order = [label for label in cfg.rpo if label in cfg.reachable]
    flagged: Set[str] = set()
    for _ in range(len(order) + 2):
        changed = False
        for label in order:
            preds = [p for p in cfg.preds.get(label, ()) if p in assigned_in]
            if label == function.entry_label:
                current: Set[str] = set()
            elif preds:
                current = set.intersection(*(assigned_in[p] for p in preds))
            else:
                current = set()
            for insn in function.blocks[label].instructions:
                if (isinstance(insn, Store)
                        and isinstance(insn.ptr, Register)
                        and insn.ptr.name in slots):
                    current.add(insn.ptr.name)
            if assigned_in.get(label) != current:
                assigned_in[label] = current
                changed = True
        if not changed:
            break
    for label in order:
        preds = [p for p in cfg.preds.get(label, ()) if p in assigned_in]
        if label == function.entry_label or not preds:
            current = set()
        else:
            current = set.intersection(*(assigned_in[p] for p in preds))
        block = function.blocks[label]
        for insn in block.instructions:
            if (isinstance(insn, Load)
                    and isinstance(insn.ptr, Register)
                    and insn.ptr.name in slots
                    and insn.ptr.name not in current
                    and insn.ptr.name not in flagged):
                flagged.add(insn.ptr.name)
                findings.append(Finding(
                    "GP202", path, block.source_line, None,
                    module, function.name,
                    f"slot '{insn.ptr.name}' may be read before assignment",
                    detail=insn.ptr.name,
                ))
            if (isinstance(insn, Store)
                    and isinstance(insn.ptr, Register)
                    and insn.ptr.name in slots):
                current.add(insn.ptr.name)
    return findings


# ---------------------------------------------------------------------------
# Module / version entry points
# ---------------------------------------------------------------------------


def lint_module(
    py_module,
    extern_ir: Sequence[object] = (),
    layer_structs: Optional[Set[str]] = None,
    owners: Optional[Dict[str, str]] = None,
    lib_returns: Optional[Dict[str, str]] = None,
    readable: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one GoPy module: AST rules, then (if it compiles) IR rules.

    ``extern_ir`` are already-compiled :class:`repro.ir.Module` objects the
    module's calls resolve against, exactly as in the verification
    pipeline. A compilation failure is itself a finding (GP101), not an
    exception — the linter reports, it does not crash.
    """
    from repro.frontend import compile_module

    if layer_structs is None:
        layer_structs = interface_structs()
    if owners is None:
        # Owners computed from the default library set: gate GP303 on the
        # same set's read accessors. Explicit owners keep readable=None
        # (every owned struct participates) unless the caller says
        # otherwise.
        if readable is None:
            readable = readable_structs()
        owners = accessor_owners()
    if lib_returns is None:
        lib_returns = library_signatures()
    module = _module_name(py_module)
    path = _module_path(py_module)

    findings: List[Finding] = []
    tree = _module_ast(py_module)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            findings.extend(
                _lint_function_ast(node, module, path, layer_structs,
                                   owners, lib_returns, readable)
            )

    try:
        ir_module = compile_module(py_module, extern_modules=extern_ir)
    except GoPyError as exc:
        findings.append(Finding(
            exc.rule, path, exc.line, exc.col, module, "<module>",
            exc.raw_message, detail="compile",
        ))
    else:
        for function in ir_module.functions.values():
            findings.extend(_lint_function_ir(function, module, path))
    return sorted(findings, key=_sort_key)


def lint_version(version: str) -> List[Finding]:
    """Lint one engine version: the shared GoPy libraries, the version's
    resolution module, and the top-level specification — the same module
    set the verification pipeline compiles."""
    from repro.engine import control
    from repro.engine.gopy import nameops, nodestack, respops
    from repro.frontend import compile_module
    from repro.spec import toplevel

    layer_structs = interface_structs()
    owners = accessor_owners()
    lib_returns = library_signatures()
    readable = readable_structs()
    base_ir = [compile_module(nameops), compile_module(nodestack),
               compile_module(respops)]
    findings: List[Finding] = []
    for py_module, externs in (
        (nameops, ()),
        (nodestack, ()),
        (respops, ()),
        (control.ENGINE_VERSIONS[version], base_ir),
        (toplevel, base_ir),
    ):
        findings.extend(lint_module(
            py_module, externs, layer_structs, owners, lib_returns,
            readable))
    return sorted(findings, key=_sort_key)


def lint_versions(versions: Sequence[str]) -> List[Finding]:
    """Lint several versions, deduplicating the shared-module findings."""
    merged: Dict[Tuple[str, Optional[int], str], Finding] = {}
    for version in versions:
        for finding in lint_version(version):
            merged.setdefault(
                (finding.baseline_key(), finding.line, finding.path), finding
            )
    return sorted(merged.values(), key=_sort_key)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


def baseline_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    return counts


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {
        "format": 1,
        "rules": {rule: RULES[rule] for rule in sorted(
            {f.rule for f in findings} & set(RULES))},
        "findings": dict(sorted(baseline_counts(findings).items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, int]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    findings = payload.get("findings", {})
    return {str(k): int(v) for k, v in findings.items()}


def new_findings(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Findings beyond what the baseline grandfathers, per key.

    Keys carry no line numbers, so moving existing smells around does not
    trip CI; only *additional* occurrences of a key (or new keys) do.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    for finding in sorted(findings, key=_sort_key):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh

"""The GP4xx async-safety lint pack: the serving and campaign planes.

The GoPy linter (:mod:`repro.analysis.lint`) covers the verified data
plane; the code that *hosts* it — the asyncio authoritative server and the
campaign service — has its own failure modes that no symbolic executor
sees: a blocking call stalling the event loop, a read-modify-write of
shared state losing an update across an ``await``, a checkpoint swapped
into place before its bytes reach disk. This pack walks the runtime
modules' ASTs for exactly those three hazards:

========  ==================================================================
GP401     blocking call (``time.sleep``, ``subprocess.run`` …) inside an
          ``async def`` — stalls every connection on the loop; use
          ``asyncio.to_thread`` / ``asyncio.sleep``
GP402     ``self`` attribute read before an ``await`` and written after it
          without a lock spanning both — the classic asyncio lost update
          (plain ``self.x += 1`` with no intervening ``await`` is atomic
          under cooperative scheduling and is *not* flagged)
GP403     file written and swapped into place (``os.replace``/``os.rename``)
          without an ``os.fsync`` inside the write block — a crash can
          publish a zero-length or torn file (the journal-before-swap
          ordering rule)
========  ==================================================================

Findings reuse :class:`repro.analysis.lint.Finding` — same baseline keys,
same ``--format`` outputs — with the runtime module's dotted short name
(``serve.server``, ``campaign.service``) in the module column.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint import Finding, _sort_key

#: Dotted call names that block the event loop. Matched against the
#: textual form of the call target (``time.sleep``, ``subprocess.run``);
#: calls routed through ``asyncio.to_thread`` are by construction not
#: direct calls to these names and never match.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
})


def runtime_modules() -> List[object]:
    """The serving-plane and campaign-plane modules the pack covers."""
    from repro.campaign import events, scheduler, service, store
    from repro.serve import (
        degrade,
        gate,
        journal,
        metrics,
        ratelimit,
        reload as reload_mod,
        selfcheck,
        server,
        snapshot,
    )

    return [
        server, reload_mod, journal, gate, snapshot, degrade,
        selfcheck, ratelimit, metrics,
        service, store, scheduler, events,
    ]


def lint_runtime(modules: Optional[Sequence[object]] = None) -> List[Finding]:
    """Run the GP4xx pack over ``modules`` (default: the runtime planes)."""
    if modules is None:
        modules = runtime_modules()
    findings: List[Finding] = []
    for module in modules:
        findings.extend(lint_runtime_module(module))
    return sorted(findings, key=_sort_key)


def lint_runtime_module(py_module) -> List[Finding]:
    name = _short_name(py_module)
    path = getattr(py_module, "__file__", None) or f"<{name}>"
    tree = ast.parse(textwrap.dedent(inspect.getsource(py_module)))
    return lint_runtime_source(tree, name, path)


def lint_runtime_source(tree: ast.Module, module: str, path: str,
                        ) -> List[Finding]:
    """AST-level entry point (tests feed synthetic sources through here)."""
    findings: List[Finding] = []
    for qualname, fdef in _functions(tree):
        if isinstance(fdef, ast.AsyncFunctionDef):
            findings.extend(_gp401(fdef, qualname, module, path))
            findings.extend(_gp402(fdef, qualname, module, path))
        findings.extend(_gp403(fdef, qualname, module, path))
    return sorted(findings, key=_sort_key)


def _short_name(py_module) -> str:
    parts = py_module.__name__.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


def _functions(tree: ast.Module) -> Iterable[Tuple[str, ast.AST]]:
    """Every function in the module, methods qualified ``Class.method``."""
    def walk(nodes, prefix):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield prefix + node.name, node
                # Nested defs are rare in this codebase; scan them too.
                yield from walk(node.body, prefix + node.name + ".")
            elif isinstance(node, ast.ClassDef):
                yield from walk(node.body, prefix + node.name + ".")
    yield from walk(tree.body, "")


# ---------------------------------------------------------------------------
# GP401 — blocking call in an async function
# ---------------------------------------------------------------------------


def _dotted(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base else None
    return None


def _gp401(fdef: ast.AsyncFunctionDef, qualname: str, module: str,
           path: str) -> List[Finding]:
    findings: List[Finding] = []
    seen = set()
    for node in ast.walk(fdef):
        if not isinstance(node, ast.Call):
            continue
        target = _dotted(node.func)
        if target in BLOCKING_CALLS and target not in seen:
            seen.add(target)
            findings.append(Finding(
                "GP401", path, node.lineno, node.col_offset, module,
                qualname,
                f"blocking call {target}() stalls the event loop inside "
                f"async '{qualname}'",
                detail=target,
            ))
    return findings


# ---------------------------------------------------------------------------
# GP402 — await-spanning read-modify-write without a lock
# ---------------------------------------------------------------------------


def _is_lock_with(stmt: ast.AST) -> bool:
    """``[async] with <something lock-ish>:`` — any context manager whose
    textual name mentions lock/mutex/sem. Coarse on purpose: holding *any*
    lock across the read and the write is what the rule checks for."""
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        text = _dotted(expr) or ""
        if any(word in text.lower() for word in ("lock", "mutex", "sem")):
            return True
    return False


def _self_attr(expr: ast.expr) -> Optional[str]:
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


def _gp402(fdef: ast.AsyncFunctionDef, qualname: str, module: str,
           path: str) -> List[Finding]:
    """Flag the asyncio lost update: a value read from ``self.X`` flows
    through a local, an ``await`` yields the loop, and the stale value is
    written back to ``self.X`` — all without a lock spanning the three.

    The body is linearized into (assign / write / await) events — branch
    bodies in order, lock-guarded regions skipped. Plain ``self.x += 1``
    or ``self.x = None`` after an await is *not* flagged: the read-write
    pair is atomic under cooperative scheduling (or there is no stale
    read at all); only cross-await dataflow loses updates."""
    events: List[Tuple[str, object]] = []

    def expr_events(node):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Await):
                events.append(("await", None))

    def stmt_events(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if _is_lock_with(stmt):
                    # Everything under the lock is guarded; an await inside
                    # still yields the loop, so surface only the await.
                    if any(isinstance(s, ast.Await) for s in ast.walk(stmt)):
                        events.append(("await", None))
                    continue
                for item in stmt.items:
                    expr_events(item.context_expr)
                stmt_events(stmt.body)
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                expr_events(stmt.value)
                events.append(("assign", stmt))
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs are linted as their own functions
            # Generic statement: expression parts first (in evaluation
            # order), then nested bodies in source order.
            has_body = any(
                isinstance(getattr(stmt, field, None), list)
                for field in ("body", "orelse", "finalbody")
            )
            if has_body:
                for field in ("test", "iter"):
                    sub = getattr(stmt, field, None)
                    if isinstance(sub, ast.expr):
                        expr_events(sub)
                for field in ("body", "orelse", "finalbody"):
                    sub = getattr(stmt, field, None)
                    if isinstance(sub, list):
                        stmt_events(sub)
                if isinstance(stmt, ast.Try):
                    for handler in stmt.handlers:
                        stmt_events(handler.body)
            else:
                expr_events(stmt)

    stmt_events(fdef.body)

    findings: List[Finding] = []
    flagged: set = set()
    taint: dict = {}  # local name -> (self attr it was read from, await #)
    awaits = 0

    def rhs_taints(value) -> List[Tuple[str, int]]:
        return [
            taint[sub.id]
            for sub in ast.walk(value)
            if isinstance(sub, ast.Name) and sub.id in taint
        ]

    for kind, payload in events:
        if kind == "await":
            awaits += 1
            continue
        if kind != "assign":
            continue
        stmt = payload
        value = stmt.value
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        # Writes to self.X: stale if the RHS carries a value read from
        # self.X on the other side of an await.
        for target in targets:
            attr = _self_attr(target)
            if attr is None or attr in flagged:
                continue
            stale = [
                t for t in rhs_taints(value)
                if t[0] == attr and t[1] < awaits
            ]
            if stale:
                flagged.add(attr)
                findings.append(Finding(
                    "GP402", path, stmt.lineno, stmt.col_offset, module,
                    qualname,
                    f"self.{attr} written from a value read before an "
                    f"await — lost update in '{qualname}'; hold a lock "
                    f"across the read-modify-write",
                    detail=attr,
                ))
        # Taint propagation into locals: direct self.X reads in the RHS
        # taint the target now; existing taints flow through.
        carried = rhs_taints(value)
        direct = [
            (read_attr, awaits)
            for sub in ast.walk(value)
            if isinstance(sub, ast.Attribute)
            and isinstance(sub.ctx, ast.Load)
            for read_attr in [_self_attr(sub)]
            if read_attr is not None
        ]
        incoming = carried + direct
        for target in targets:
            if isinstance(target, ast.Name):
                if incoming:
                    taint[target.id] = min(incoming, key=lambda t: t[1])
                else:
                    taint.pop(target.id, None)
    return findings


# ---------------------------------------------------------------------------
# GP403 — write + swap without fsync
# ---------------------------------------------------------------------------


def _opens_for_write(stmt) -> bool:
    for item in stmt.items:
        call = item.context_expr
        if not (isinstance(call, ast.Call) and _dotted(call.func) == "open"):
            continue
        for arg in call.args[1:2]:
            if isinstance(arg, ast.Constant) and "w" in str(arg.value):
                return True
        for kw in call.keywords:
            if (kw.arg == "mode" and isinstance(kw.value, ast.Constant)
                    and "w" in str(kw.value.value)):
                return True
    return False


def _calls_fsync(node) -> bool:
    return any(
        isinstance(sub, ast.Call) and _dotted(sub.func) == "os.fsync"
        for sub in ast.walk(node)
    )


def _gp403(fdef, qualname: str, module: str, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(fdef):
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if not isinstance(stmts, list):
                continue
            for i, stmt in enumerate(stmts):
                if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                    continue
                if not _opens_for_write(stmt) or _calls_fsync(stmt):
                    continue
                # A swap in the next couple of statements publishes the
                # un-synced bytes.
                for follower in stmts[i + 1:i + 3]:
                    swap = next(
                        (sub for sub in ast.walk(follower)
                         if isinstance(sub, ast.Call)
                         and _dotted(sub.func) in ("os.replace", "os.rename")),
                        None,
                    )
                    if swap is not None:
                        findings.append(Finding(
                            "GP403", path, swap.lineno, swap.col_offset,
                            module, qualname,
                            "file swapped into place without os.fsync — a "
                            "crash can publish a torn or empty file",
                            detail="replace-without-fsync",
                        ))
                        break
    return findings

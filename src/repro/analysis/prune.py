"""The panic-pruning pass: elide guards the abstract domains discharge.

The frontend protects every indexing and dereference with a conditional
branch whose panic side the symbolic executor must prove unreachable —
one or two solver feasibility checks per guard, per path (section 4.1).
Many of those guards are decided by the surrounding control flow alone:
``is_prefix`` checks ``len(prefix) > len(name)`` up front, so the
``name[i]`` bounds check inside its loop can never fire. This pass runs
:class:`repro.analysis.domains.GuardDomain` to fixpoint and rewrites
each ``CondBr`` whose panic side is *proved* infeasible into an
:class:`repro.ir.ElidedGuardBr`; the executor then skips the solver
queries while assuming the identical surviving-path condition, keeping
path conditions — and therefore verdicts, models and summaries —
bit-identical to the unpruned run.

Soundness discipline:

- a guard is elided only on a definite abstract proof (the refined edge
  state is bottom); "probably fine" never prunes;
- only the *panic* side may be pruned — an abstractly-infeasible ok side
  means either dead code or a genuine bug, and both are left for the
  executor to witness;
- the rewritten function is re-validated, and debug mode
  (``analysis_check``) re-asks the solver at pruned sites during
  execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import analyze
from repro.analysis.domains import GuardDomain
from repro.ir import CondBr, ElidedGuardBr, Panic, validate_function
from repro.ir.function import Function
from repro.ir.module import Module


@dataclass
class FunctionPruneReport:
    """What pruning did to one function."""

    function: str
    guards_total: int = 0
    guards_pruned: int = 0
    panic_blocks_removed: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    bailed: bool = False  # fixpoint did not converge; function left alone

    def to_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "guards_total": self.guards_total,
            "guards_pruned": self.guards_pruned,
            "panic_blocks_removed": self.panic_blocks_removed,
            "by_kind": dict(sorted(self.by_kind.items())),
            "bailed": self.bailed,
        }


@dataclass
class PruneReport:
    """Aggregate over a module (or several)."""

    guards_total: int = 0
    guards_pruned: int = 0
    panic_blocks_removed: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    functions: List[FunctionPruneReport] = field(default_factory=list)

    def absorb(self, fn_report: FunctionPruneReport) -> None:
        self.functions.append(fn_report)
        self.guards_total += fn_report.guards_total
        self.guards_pruned += fn_report.guards_pruned
        self.panic_blocks_removed += fn_report.panic_blocks_removed
        for kind, count in fn_report.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count

    def merge(self, other: "PruneReport") -> None:
        for fn_report in other.functions:
            self.absorb(fn_report)

    def to_dict(self) -> Dict[str, object]:
        return {
            "guards_total": self.guards_total,
            "guards_pruned": self.guards_pruned,
            "panic_blocks_removed": self.panic_blocks_removed,
            "by_kind": dict(sorted(self.by_kind.items())),
            "functions": [
                f.to_dict() for f in self.functions
                if f.guards_pruned or f.bailed
            ],
        }


def prune_function(function: Function, widen_after: int = 8,
                   max_visits: int = 500,
                   summaries=None) -> FunctionPruneReport:
    """Elide provably-dead panic guards in ``function`` (in place).

    ``summaries`` is an optional interprocedural summary table (see
    :mod:`repro.analysis.interproc`); with it, facts survive call sites
    instead of dying at havoc, so guards whose proofs span a call become
    statically decidable."""
    report = FunctionPruneReport(function.name)
    cfg = CFG(function)
    candidates = []
    for label in cfg.rpo:
        term = function.blocks[label].terminator
        if not isinstance(term, CondBr) or term.then_label == term.else_label:
            continue
        then_panic = _is_panic(function, term.then_label)
        else_panic = _is_panic(function, term.else_label)
        if then_panic == else_panic:
            continue  # not a guard (or a both-sides-panic oddity)
        report.guards_total += 1
        candidates.append((label, term, then_panic))
    if not candidates:
        return report

    domain = GuardDomain(cfg, summaries=summaries)
    try:
        result = analyze(function, domain, cfg=cfg,
                         widen_after=widen_after, max_visits=max_visits)
    except RuntimeError:
        report.bailed = True
        return report

    for label, term, panic_on_true in candidates:
        state = result.state_at_terminator(label)
        if state is None:
            continue  # unreachable guard: leave it; never executed anyway
        panic_label = term.then_label if panic_on_true else term.else_label
        ok_label = term.else_label if panic_on_true else term.then_label
        block = function.blocks[label]
        if domain.edge(domain.copy(state), block, panic_label) is not None:
            continue  # panic side not refuted — keep the guard
        if domain.edge(domain.copy(state), block, ok_label) is None:
            # The surviving side is abstractly dead too: dead code or a
            # definite bug. Either way the executor must see it.
            continue
        panic_term = function.blocks[panic_label].terminator
        kind = panic_term.kind
        block.terminator = ElidedGuardBr(
            ok_label, term.cond, panic_on_true, kind,
            message=panic_term.message,
            site=f"{function.name}:{label}",
        )
        report.guards_pruned += 1
        report.by_kind[kind] = report.by_kind.get(kind, 0) + 1

    if report.guards_pruned:
        report.panic_blocks_removed = _sweep_orphan_panics(function)
        validate_function(function)
    return report


def _is_panic(function: Function, label: str) -> bool:
    block = function.blocks.get(label)
    return block is not None and isinstance(block.terminator, Panic)


def _sweep_orphan_panics(function: Function) -> int:
    """Delete panic blocks whose last predecessor a rewrite removed.

    Iterates because (in hand-written IR) a panic block could be reached
    through a dead chain; frontend panic blocks are always leaves so a
    single round suffices there.
    """
    removed = 0
    while True:
        preds = {label: 0 for label in function.blocks}
        for block in function.blocks.values():
            if block.terminator is None:
                continue
            for succ in block.terminator.successors():
                if succ in preds:
                    preds[succ] += 1
        doomed = [
            label
            for label, block in function.blocks.items()
            if isinstance(block.terminator, Panic)
            and block.terminator.kind != "missing-return"
            and label != function.entry_label
            and preds[label] == 0
        ]
        if not doomed:
            return removed
        for label in doomed:
            del function.blocks[label]
            removed += 1


def prune_module(module: Module, widen_after: int = 8,
                 max_visits: int = 500, summaries=None) -> PruneReport:
    """Prune every function in ``module`` (in place); returns the report.

    Function order is the module's insertion order, and every fresh name
    the analysis mints is derived from stable program points, so repeated
    runs produce identical IR — a requirement for the content-addressed
    summary cache. Pass ``summaries`` (an interprocedural summary table)
    to let proofs cross call sites.
    """
    report = PruneReport()
    for function in module.functions.values():
        report.absorb(
            prune_function(function, widen_after, max_visits,
                           summaries=summaries)
        )
    return report

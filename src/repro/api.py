"""The one-stop programmatic entry point: ``repro.Session``.

Three PRs of growth left the library's users juggling module-level entry
points with divergent vocabularies (``verify_engine``, ``run_campaign``,
``WatchDaemon``) plus hand-built caches and budgets. A :class:`Session`
bundles the run-scoped state — one cache, one
:class:`~repro.core.options.VerifyOptions` — and exposes the four
operating modes behind it::

    from repro import Session

    session = Session(cache_dir="/tmp/repro-cache", budget=30.0, workers=4)
    result = session.verify("zones/prod.zone")          # one zone
    report = session.campaign(100, "v2.0")              # N generated zones
    daemon = session.watch("zones/prod.zone")           # re-verify on change
    daemon.run(max_updates=3)
    server = session.serve("zones/prod.zone")           # gated serving plane

Every method accepts keyword overrides for any :class:`VerifyOptions`
field, applied on top of the session's defaults for that call only.
``Session.verify(zone, version)`` returns exactly what
:func:`~repro.core.pipeline.verify_engine` returns for the same options
— the facade adds no semantics, only shared configuration.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Optional, Union

from repro.core.options import VerifyOptions
from repro.dns.zone import Zone

#: Built-in corpus names :func:`load_zone` resolves.
BUILTIN_ZONES = ("evaluation", "minimal", "paper", "chain")


def load_zone(source: Union[Zone, str], origin: Optional[str] = None) -> Zone:
    """A :class:`Zone` from whatever identifies one.

    Accepts a ``Zone`` (returned as-is), a builtin corpus name
    (``evaluation``/``minimal``/``paper``/``chain``), ``"-"`` for a zone
    file on stdin, or a zone file path. ``origin`` applies to relative
    zone files.
    """
    from repro.dns.zonefile import parse_zone_text
    from repro.zonegen import corpus

    if isinstance(source, Zone):
        return source
    if source == "-":
        return parse_zone_text(sys.stdin.read(), origin=origin)
    builtin = {
        "evaluation": corpus.evaluation_zone,
        "minimal": corpus.minimal_zone,
        "paper": corpus.paper_example_zone,
        "chain": corpus.chain_zone,
    }
    if source in builtin:
        return builtin[source]()
    with open(source) as handle:
        return parse_zone_text(handle.read(), origin=origin)


class Session:
    """Run-scoped verification state: one cache, one options bundle.

    ``cache_dir=None`` keeps the cache in memory — repeated verifies of
    the same zone within the session still replay their summaries, but
    nothing touches disk. ``budget`` is the per-unit wall-clock deadline
    in seconds (the keyword mirrors the CLI's ``--budget-seconds``);
    ``workers=None`` runs sequentially, any integer fans out through
    :mod:`repro.parallel`. Arbitrary additional ``VerifyOptions`` fields
    can be set via ``options`` or as extra keyword arguments.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        budget: Optional[float] = None,
        fuel: Optional[int] = None,
        workers: Optional[int] = None,
        options: Optional[VerifyOptions] = None,
        cache=None,
        **option_fields,
    ) -> None:
        base = options if options is not None else VerifyOptions()
        changes = dict(option_fields)
        if cache_dir is not None:
            changes["cache_dir"] = cache_dir
        if budget is not None:
            changes["budget_seconds"] = budget
        if fuel is not None:
            changes["fuel"] = fuel
        if workers is not None:
            changes["workers"] = workers
        self.options = base.with_(**changes) if changes else base
        if cache is not None:
            self.cache = cache
        else:
            from repro.incremental import SummaryCache

            if self.options.cache_dir is not None:
                self.cache = SummaryCache(cache_dir=self.options.cache_dir)
            else:
                self.cache = SummaryCache(memory_only=True)

    def _options(self, overrides: Dict) -> VerifyOptions:
        return self.options.with_(**overrides) if overrides else self.options

    # -- the four operating modes -------------------------------------------

    def verify(self, zone: Union[Zone, str], version: str = "verified",
               **overrides):
        """Verify ``version`` on one zone (a ``Zone``, path, or builtin
        name); returns a :class:`~repro.core.pipeline.VerificationResult`
        — the same object ``verify_engine`` returns for these options."""
        from repro.core.pipeline import verify_engine

        return verify_engine(
            load_zone(zone),
            version,
            options=self._options(overrides),
            cache=self.cache,
        )

    def campaign(
        self,
        num_zones: int = 10,
        versions: Union[str, Iterable[str]] = "verified",
        seed: int = 2023,
        checkpoint=None,
        resume: bool = False,
        **overrides,
    ):
        """Verify one or more engine versions across ``num_zones``
        generated zones. A single version name returns its
        :class:`~repro.core.campaign.CampaignReport`; an iterable returns
        ``{version: report}`` (checkpoints get a ``.<version>`` suffix so
        the runs stay resumable independently).

        Extra keyword arguments split by name: :class:`VerifyOptions`
        fields override this call's options, everything else goes to the
        zone :class:`~repro.zonegen.GeneratorConfig` (``num_hosts=2``,
        ...).
        """
        import dataclasses

        from repro.core.campaign import run_campaign

        option_names = {f.name for f in dataclasses.fields(VerifyOptions)}
        option_overrides = {k: v for k, v in overrides.items()
                            if k in option_names}
        config_kwargs = {k: v for k, v in overrides.items()
                         if k not in option_names}
        options = self._options(option_overrides)
        single = isinstance(versions, str)
        names = [versions] if single else list(versions)
        reports = {}
        for version in names:
            target = checkpoint
            if target is not None and not single:
                target = f"{target}.{version}"
            reports[version] = run_campaign(
                version,
                num_zones=num_zones,
                seed=seed,
                cache=self.cache,
                budget_seconds=options.budget_seconds,
                budget_fuel=options.fuel,
                checkpoint=target,
                resume=resume,
                workers=options.workers,
                faults=options.faults,
                **config_kwargs,
            )
        return reports[versions] if single else reports

    def campaign_service(
        self,
        corpus_dir,
        versions: Iterable[str] = ("verified", "v2.0"),
        seed: int = 2023,
        units: Optional[int] = None,
        duration: Optional[float] = None,
        resume: bool = False,
        status_port: Optional[int] = 0,
        **overrides,
    ):
        """A :class:`~repro.campaign.CampaignService` rooted at
        ``corpus_dir``, using this session's worker/budget/fault options.

        The service is returned un-started: ``run()`` blocks until the
        campaign drains (``units``/``duration`` bound it;
        ``request_stop()`` from another thread or a signal handler drains
        gracefully). Extra keyword arguments override
        :class:`VerifyOptions` fields for this service, or — when they
        name a :class:`~repro.campaign.CampaignServiceConfig` field such
        as ``batch_tasks``, ``weights``, ``minimize`` or
        ``max_failures`` — configure the service itself.
        """
        import dataclasses

        from repro.campaign import CampaignService, CampaignServiceConfig

        config_names = {f.name for f in
                        dataclasses.fields(CampaignServiceConfig)}
        config_kwargs = {k: v for k, v in overrides.items()
                         if k in config_names}
        option_overrides = {k: v for k, v in overrides.items()
                            if k not in config_names}
        config = CampaignServiceConfig(
            corpus_dir=str(corpus_dir),
            seed=seed,
            versions=tuple(versions),
            units=units,
            duration=duration,
            resume=resume,
            status_port=status_port,
            **config_kwargs,
        )
        return CampaignService(config,
                               options=self._options(option_overrides))

    def watch(self, path, version: str = "verified", interval: float = 1.0,
              max_failures: int = 5, log=None, **overrides):
        """A :class:`~repro.incremental.watch.WatchDaemon` tailing
        ``path`` with this session's cache and worker/budget options.
        Returned un-started; call ``run()`` (blocking poll loop) or
        ``poll_once()`` (one step, tests)."""
        from repro.incremental.watch import WatchDaemon

        options = self._options(overrides)
        return WatchDaemon(
            path,
            version=version,
            cache=self.cache,
            interval=interval,
            log=log,
            max_failures=max_failures,
            workers=options.workers,
            options=options,
        )

    def serve(
        self,
        zone: Union[Zone, str] = "evaluation",
        version: str = "verified",
        host: str = "127.0.0.1",
        port: int = 0,
        status_port: Optional[int] = 0,
        rate_limit: Optional[float] = None,
        selfcheck_every: int = 0,
        **overrides,
    ):
        """A :class:`~repro.serve.ZoneServer` serving ``zone`` with
        ``version``, its publish gate wired to this session's cache and
        worker/budget options (so gated re-verifications replay from the
        same summary cache the session's verifies warm). Returned
        un-started: ``await server.start()`` inside a running loop, or
        ``asyncio.run(server.run_forever())``. Zone updates go through
        ``await server.publish(new_zone)`` and only take effect when the
        delta re-verifies."""
        from repro.serve import ZoneServer

        options = self._options(overrides)
        return ZoneServer(
            load_zone(zone),
            version,
            host=host,
            port=port,
            status_port=status_port,
            rate_limit=rate_limit,
            selfcheck_every=selfcheck_every,
            cache=self.cache,
            options=options,
            workers=options.workers,
        )

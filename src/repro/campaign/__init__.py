"""repro.campaign — the continuous differential-fuzzing campaign service.

A standing daemon (``repro campaign --serve``) that mixes adversarial
zone generation, delta mutation of prior zones, and regression-corpus
replay into a continuous stream of verification units, fans them across
engine versions through :mod:`repro.parallel`, captures every finding
into a persistent minimized regression store, and exposes a JSONL event
stream plus a one-shot JSON status socket. Crash-safe (PR-2 checkpoints,
``--resume`` is bit-identical) and supervised (seeded backoff + circuit
breaker).
"""

from repro.campaign.events import (
    EV_BATCH,
    EV_BREAKER,
    EV_CHECKPOINT,
    EV_COMPLETED,
    EV_DRAIN,
    EV_REGRESSION,
    EV_REQUEUED,
    EV_SCHEDULED,
    EV_START,
    EV_STOP,
    EventLog,
    conservation,
    last_event,
    read_events,
)
from repro.campaign.scheduler import (
    KIND_GENERATED,
    KIND_MUTATION,
    KIND_REGRESSION,
    KINDS,
    PROFILES,
    CorpusScheduler,
    SchedulerState,
    WorkUnit,
)
from repro.campaign.service import (
    LEDGER_FORMAT,
    SERVICE_FILE,
    CampaignService,
    CampaignServiceConfig,
    CampaignServiceReport,
    StatusChannel,
    query_status,
    read_ledger,
)
from repro.campaign.store import (
    STORE_FORMAT,
    RegressionEntry,
    RegressionStore,
    minimize_zone,
)

__all__ = [
    "EV_BATCH",
    "EV_BREAKER",
    "EV_CHECKPOINT",
    "EV_COMPLETED",
    "EV_DRAIN",
    "EV_REGRESSION",
    "EV_REQUEUED",
    "EV_SCHEDULED",
    "EV_START",
    "EV_STOP",
    "EventLog",
    "conservation",
    "last_event",
    "read_events",
    "KIND_GENERATED",
    "KIND_MUTATION",
    "KIND_REGRESSION",
    "KINDS",
    "PROFILES",
    "CorpusScheduler",
    "SchedulerState",
    "WorkUnit",
    "LEDGER_FORMAT",
    "SERVICE_FILE",
    "CampaignService",
    "CampaignServiceConfig",
    "CampaignServiceReport",
    "StatusChannel",
    "query_status",
    "read_ledger",
    "STORE_FORMAT",
    "RegressionEntry",
    "RegressionStore",
    "minimize_zone",
]

"""The campaign's observability stream: append-only JSONL events.

One line per event, flushed on write, so an external consumer (``tail
-f``, the CI smoke job, the soak tests) can watch a live campaign. The
stream is *telemetry*, not state: the daemon never reads it back, and a
torn final line (SIGKILL mid-write) is skipped by :func:`read_events`
exactly like the checkpoint loader skips torn records.

Conservation invariant (asserted by the soak tests): at any prefix of
the stream, ``scheduled == completed + requeued + in_flight`` where
``in_flight`` is derived. Every scheduling *attempt* emits ``scheduled``;
every attempt ends in exactly one of ``completed`` (a verdict, including
replays from the checkpoint) or ``requeued`` (the attempt was abandoned —
pool stall — and a new ``scheduled`` attempt follows). A drained campaign
ends with ``in_flight == 0``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: Event kinds the service emits.
EV_START = "service-start"
EV_BATCH = "batch-start"
EV_SCHEDULED = "scheduled"
EV_COMPLETED = "completed"
EV_REQUEUED = "requeued"
EV_REGRESSION = "regression-captured"
EV_CHECKPOINT = "checkpoint"
EV_BREAKER = "breaker"
EV_DRAIN = "drain"
EV_STOP = "service-stop"


class EventLog:
    """Append-only JSONL event writer (one flush per event)."""

    def __init__(self, path, clock=time.time) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._handle = open(self.path, "a", encoding="utf-8")
        self.emitted = 0

    def emit(self, kind: str, **fields) -> None:
        record = {"t": round(self._clock(), 6), "kind": kind}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def read_events(path) -> List[Dict]:
    """Parse an event stream; torn/corrupt lines are skipped."""
    events: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "kind" in record:
                    events.append(record)
    except FileNotFoundError:
        return []
    return events


def conservation(events: Iterable[Dict]) -> Dict[str, int]:
    """Unit-attempt accounting over an event stream.

    Returns ``scheduled``/``completed``/``requeued`` counts plus the
    derived ``in_flight = scheduled - completed - requeued``. The stream
    satisfies the conservation invariant iff ``in_flight >= 0`` at every
    prefix and ``== 0`` once the service has drained.
    """
    scheduled = completed = requeued = 0
    min_in_flight = 0
    for event in events:
        kind = event.get("kind")
        if kind == EV_SCHEDULED:
            scheduled += 1
        elif kind == EV_COMPLETED:
            completed += 1
        elif kind == EV_REQUEUED:
            requeued += 1
        min_in_flight = min(min_in_flight, scheduled - completed - requeued)
    return {
        "scheduled": scheduled,
        "completed": completed,
        "requeued": requeued,
        "in_flight": scheduled - completed - requeued,
        "min_in_flight": min_in_flight,
    }


def last_event(events: List[Dict], kind: str) -> Optional[Dict]:
    for event in reversed(events):
        if event.get("kind") == kind:
            return event
    return None

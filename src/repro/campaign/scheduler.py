"""The campaign's corpus scheduler: what to verify next.

Every campaign *task* is one zone; a task fans out into one *unit* per
engine version under test. Tasks come from three sources, mixed by
weight:

- ``generated`` — fresh adversarial zones from :mod:`repro.zonegen`,
  drawn through seeded *profiles* biased toward the paper's §9
  intertwinings (wildcard-heavy, CNAME-chain, delegation-mesh, and a
  combined profile);
- ``mutation`` — seeded delta-mutations of zones the campaign already
  ran (:mod:`repro.zonegen.mutate`), preferring zones that produced
  bugs. Mutation units carry their base zone, so the execution loop can
  drive them through the *incremental* verifier
  (:meth:`IncrementalVerifier.diff_to`) instead of from scratch;
- ``regression`` — replay of the persistent corpus
  (:class:`~repro.campaign.store.RegressionStore`), each entry once per
  campaign, in entry-id order.

Determinism contract (resume depends on it): the schedule is a pure
function of ``(seed, initial regression listing, the verdict stream in
unit order)``. Task ``t`` draws only from ``Random(f"{seed}:sched:{t}")``
and from feedback state built by :meth:`note_result` calls for units
``uid < first uid of t`` — state a resumed run reconstructs exactly by
replaying checkpointed verdicts in order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.zone import Zone
from repro.resilience import verdicts as verdicts_mod
from repro.zonegen import GeneratorConfig, ZoneGenerator
from repro.zonegen.mutate import MutationConfig, ZoneMutator

KIND_GENERATED = "generated"
KIND_MUTATION = "mutation"
KIND_REGRESSION = "regression"
KINDS = (KIND_GENERATED, KIND_MUTATION, KIND_REGRESSION)

#: Adversarial generation profiles (§9 weighting): each biases one
#: intertwining family. All stay small — campaign throughput comes from
#: many diverse zones, not big ones.
PROFILES: Dict[str, Dict] = {
    "wildcard-heavy": dict(num_hosts=2, num_wildcards=3, num_cnames=1,
                           num_delegations=1, num_mx=1),
    "cname-chain": dict(num_hosts=3, num_wildcards=1, num_cnames=4,
                        num_delegations=0, num_mx=1,
                        external_cname_probability=0.4),
    "delegation-mesh": dict(num_hosts=2, num_wildcards=1, num_cnames=0,
                            num_delegations=3, num_mx=0,
                            two_ns_probability=0.8),
    "intertwined": dict(num_hosts=3, num_wildcards=2, num_cnames=2,
                        num_delegations=2, num_mx=1),
}

#: Profile draw weights (intertwined counted twice: it is the closest to
#: the paper's production corpus shape).
_PROFILE_NAMES = sorted(PROFILES)
_PROFILE_WEIGHTS = [2 if name == "intertwined" else 1
                    for name in _PROFILE_NAMES]

#: How many prior zones the mutation pool remembers.
_POOL_CAP = 32


@dataclass(frozen=True)
class WorkUnit:
    """One (zone, engine version) verification unit."""

    uid: int                #: global unit id — checkpoint/fault-plan/ledger key
    task: int               #: zone-task id (units of one task share a zone)
    kind: str               #: generated | mutation | regression
    version: str
    provenance: str         #: where the zone came from, human-readable
    zone: Zone
    base_zone: Optional[Zone] = None  #: mutation units: the predecessor


@dataclass
class SchedulerState:
    """Telemetry the status channel reports."""

    tasks: int = 0
    units: int = 0
    kinds: Dict[str, int] = field(default_factory=lambda: {k: 0 for k in KINDS})
    profiles: Dict[str, int] = field(default_factory=dict)
    pool_size: int = 0
    bug_pool_size: int = 0
    regressions_total: int = 0
    regressions_replayed: int = 0

    def as_dict(self) -> Dict:
        return {
            "tasks": self.tasks,
            "units": self.units,
            "kinds": dict(self.kinds),
            "profiles": dict(self.profiles),
            "pool_size": self.pool_size,
            "bug_pool_size": self.bug_pool_size,
            "regressions_total": self.regressions_total,
            "regressions_replayed": self.regressions_replayed,
        }


class CorpusScheduler:
    """Deterministic prioritized mixing of the three corpus sources."""

    def __init__(
        self,
        seed: int,
        versions: Sequence[str],
        regression_entries: Sequence = (),
        weights: Tuple[float, float, float] = (0.5, 0.3, 0.2),
        mutation_config: Optional[MutationConfig] = None,
    ) -> None:
        if not versions:
            raise ValueError("at least one engine version is required")
        if len(weights) != 3 or any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be three non-negative floats")
        self.seed = seed
        self.versions = tuple(versions)
        self.weights = tuple(float(w) for w in weights)
        #: The regression listing is pinned at construction (and recorded
        #: in the checkpoint header): entries captured *during* this run
        #: feed future campaigns, not this one — otherwise a resumed run
        #: would see a different corpus than the uninterrupted run it
        #: must replay bit-identically.
        self._regressions = sorted(regression_entries,
                                   key=lambda e: e.entry_id)
        self._regression_cursor = 0
        self._mutator = ZoneMutator(
            mutation_config or MutationConfig(seed=seed))
        self._task = 0
        self._uid = 0
        #: Mutation bases: every completed zone (bounded FIFO), plus the
        #: subset that produced bugs/divergences (preferred).
        self._pool: List[Tuple[str, Zone]] = []
        self._pool_digests: set = set()
        self._bug_pool: List[Tuple[str, Zone]] = []
        self._bug_digests: set = set()
        self.state = SchedulerState(
            regressions_total=len(self._regressions))

    # -- scheduling ----------------------------------------------------------

    def next_task(self) -> List[WorkUnit]:
        """The next zone-task, fanned into one unit per engine version."""
        task = self._task
        self._task += 1
        rng = random.Random(f"{self.seed}:sched:{task}")
        kind = self._pick_kind(rng)
        if kind == KIND_REGRESSION:
            entry = self._regressions[self._regression_cursor]
            self._regression_cursor += 1
            self.state.regressions_replayed += 1
            zone = entry.zone()
            base = None
            provenance = f"reg:{entry.entry_id}"
        elif kind == KIND_MUTATION:
            provenance_base, base = self._pick_base(rng)
            zone = self._mutator.mutate(base, index=task)
            provenance = f"mut:{task}:{provenance_base}"
        else:
            profile = rng.choices(_PROFILE_NAMES, weights=_PROFILE_WEIGHTS,
                                  k=1)[0]
            config = GeneratorConfig(seed=self.seed, **PROFILES[profile])
            zone = ZoneGenerator(config).generate(index=task)
            base = None
            provenance = f"gen:{profile}:{task}"
            self.state.profiles[profile] = (
                self.state.profiles.get(profile, 0) + 1)
        units = []
        for version in self.versions:
            units.append(WorkUnit(
                uid=self._uid, task=task, kind=kind, version=version,
                provenance=provenance, zone=zone, base_zone=base,
            ))
            self._uid += 1
        self.state.tasks += 1
        self.state.units += len(units)
        self.state.kinds[kind] += len(units)
        return units

    def next_batch(self, tasks: int) -> List[WorkUnit]:
        units: List[WorkUnit] = []
        for _ in range(max(1, tasks)):
            units.extend(self.next_task())
        return units

    def _pick_kind(self, rng: random.Random) -> str:
        names = [KIND_GENERATED]
        weights = [self.weights[0]]
        if self._pool or self._bug_pool:
            names.append(KIND_MUTATION)
            weights.append(self.weights[1])
        if self._regression_cursor < len(self._regressions):
            names.append(KIND_REGRESSION)
            weights.append(self.weights[2])
        if sum(weights) <= 0:
            return KIND_GENERATED
        return rng.choices(names, weights=weights, k=1)[0]

    def _pick_base(self, rng: random.Random) -> Tuple[str, Zone]:
        if self._bug_pool and (not self._pool or rng.random() < 0.4):
            return rng.choice(self._bug_pool)
        return rng.choice(self._pool or self._bug_pool)

    # -- feedback ------------------------------------------------------------

    def note_result(self, unit: WorkUnit, verdict: Dict) -> None:
        """Feed one completed unit's verdict back into the mix.

        MUST be called in ``uid`` order for every completed unit —
        replayed-from-checkpoint ones included — so a resumed schedule
        reconstructs the exact feedback state of the original run.
        """
        digest = unit.provenance  # one pool entry per task, not per version
        buggy = (verdict.get("verdict") == verdicts_mod.BUG
                 or verdict.get("differential_divergences", 0) > 0)
        if buggy and digest not in self._bug_digests:
            self._bug_digests.add(digest)
            self._bug_pool.append((digest, unit.zone))
            if len(self._bug_pool) > _POOL_CAP:
                evicted, _ = self._bug_pool.pop(0)
                self._bug_digests.discard(evicted)
        if digest not in self._pool_digests:
            self._pool_digests.add(digest)
            self._pool.append((digest, unit.zone))
            if len(self._pool) > _POOL_CAP:
                evicted, _ = self._pool.pop(0)
                self._pool_digests.discard(evicted)
        self.state.pool_size = len(self._pool)
        self.state.bug_pool_size = len(self._bug_pool)

    # -- identity ------------------------------------------------------------

    def header_material(self) -> Dict:
        """What pins this schedule (goes into the checkpoint header)."""
        return {
            "seed": self.seed,
            "versions": list(self.versions),
            "weights": list(self.weights),
            "regressions": [e.entry_id for e in self._regressions],
            "profiles": sorted(PROFILES),
        }

"""The continuous differential-fuzzing campaign service.

``repro campaign --serve`` (or :meth:`repro.Session.campaign_service`)
turns the repo's one-shot verifiers into a standing soak daemon. Four
cooperating parts:

- a **corpus scheduler** (:mod:`repro.campaign.scheduler`) mixes fresh
  adversarial generation, delta mutations of prior zones, and replay of
  the persistent regression corpus into zone-tasks, each fanned into one
  unit per engine version;
- an **execution loop** runs batches of units through the
  :mod:`repro.parallel` pool (or in-process when ``workers`` is unset):
  generated/regression units through the same
  :func:`~repro.core.campaign.run_unit` path one-shot campaigns use,
  mutation units through :meth:`IncrementalVerifier.diff_to` — each
  under its own cooperative budget and per-unit fault plan;
- a **regression store** (:mod:`repro.campaign.store`) captures every
  BUG/divergence-producing zone as a minimized corpus entry and ingests
  serve-plane self-check divergences;
- an **observability surface**: an append-only JSONL event stream
  (:mod:`repro.campaign.events`), a one-shot JSON status socket (the
  ``repro.serve`` status-channel pattern), and a canonical *verdict
  ledger*.

Crash safety: every completed unit is appended to a PR-2 crash-safe
checkpoint before the loop moves on; ``--resume`` replays completed
units bit-identically and re-derives the schedule deterministically, so
a SIGKILLed campaign's final ledger equals an uninterrupted run's.
SIGTERM/SIGINT request a graceful drain (finish the in-flight batch,
checkpoint, exit 0). Scheduler/executor failures go through the
watch-daemon supervision pattern: exponential backoff with jitter, then
a circuit breaker that stops the service (exit 2) rather than hot-loop
on a permanent fault.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.events import (
    EV_BATCH,
    EV_BREAKER,
    EV_CHECKPOINT,
    EV_COMPLETED,
    EV_DRAIN,
    EV_REGRESSION,
    EV_REQUEUED,
    EV_SCHEDULED,
    EV_START,
    EV_STOP,
    EventLog,
)
from repro.campaign.scheduler import KINDS, CorpusScheduler, WorkUnit
from repro.campaign.store import RegressionStore
from repro.incremental.digest import engine_digest, zone_digest
from repro.parallel.counters import PerfCounters
from repro.parallel.pool import DIED, OK, TIMEOUT, run_units
from repro.parallel.worker import campaign_service_worker
from repro.resilience import verdicts as verdicts_mod
from repro.resilience.checkpoint import CheckpointWriter, unit_address
from repro.resilience.supervise import CircuitBreaker, RetryPolicy

#: Ledger format version (first line of the ledger file).
LEDGER_FORMAT = 1

#: The registry file a running service drops in its corpus dir so
#: ``repro campaign --status`` can find the status socket.
SERVICE_FILE = "service.json"


@dataclass
class CampaignServiceConfig:
    """Run-shaping knobs of one campaign service."""

    corpus_dir: str
    seed: int = 2023
    versions: Tuple[str, ...] = ("verified", "v2.0")
    #: Stop once at least this many units have been scheduled (None =
    #: unbounded). The schedule is deterministic in (seed, units), which
    #: is what the SIGKILL/resume bit-identity tests pin.
    units: Optional[int] = None
    #: Stop after this many wall-clock seconds (checked between batches).
    duration: Optional[float] = None
    #: Zone-tasks per scheduling batch (default: the worker count).
    batch_tasks: Optional[int] = None
    checkpoint: Optional[str] = None   # default <corpus_dir>/checkpoint.jsonl
    events: Optional[str] = None       # default <corpus_dir>/events.jsonl
    ledger: Optional[str] = None       # default <corpus_dir>/ledger.jsonl
    resume: bool = False
    #: JSON status socket port (0 = ephemeral, None = disabled).
    status_port: Optional[int] = 0
    host: str = "127.0.0.1"
    #: (generated, mutation, regression) scheduling weights.
    weights: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    #: Minimize captured regression zones against the differential oracle.
    minimize: bool = True
    #: Consecutive batch failures before the circuit breaker stops the run.
    max_failures: int = 5

    def path(self, name: str, override: Optional[str]) -> Path:
        return Path(override) if override else Path(self.corpus_dir) / name


@dataclass
class CampaignServiceReport:
    """What one service run amounted to."""

    reason: str = "drained"
    elapsed_seconds: float = 0.0
    units_scheduled: int = 0
    units_completed: int = 0
    units_replayed: int = 0
    units_requeued: int = 0
    verdict_mix: Dict[str, int] = field(default_factory=dict)
    kinds: Dict[str, int] = field(default_factory=dict)
    bug_categories: Dict[str, int] = field(default_factory=dict)
    regressions: Dict[str, object] = field(default_factory=dict)
    breaker: str = "closed"
    checkpoint: str = ""
    events: str = ""
    ledger: str = ""

    @property
    def exit_code(self) -> int:
        """0 on a clean drain (found bugs are the *product* of a fuzzing
        campaign, not a failure); 2 when supervision gave up."""
        return 2 if self.breaker == "open" else 0

    def to_json(self) -> Dict:
        return {
            "reason": self.reason,
            "elapsed_seconds": self.elapsed_seconds,
            "units_scheduled": self.units_scheduled,
            "units_completed": self.units_completed,
            "units_replayed": self.units_replayed,
            "units_requeued": self.units_requeued,
            "verdict_mix": dict(self.verdict_mix),
            "kinds": dict(self.kinds),
            "bug_categories": dict(self.bug_categories),
            "regressions": dict(self.regressions),
            "breaker": self.breaker,
            "checkpoint": self.checkpoint,
            "events": self.events,
            "ledger": self.ledger,
        }

    def describe(self) -> str:
        mix = ", ".join(f"{k}={v}" for k, v in sorted(self.verdict_mix.items()))
        lines = [
            f"campaign service: {self.units_completed} unit(s) in "
            f"{self.elapsed_seconds:.1f}s ({self.reason}); {mix or 'no units'}"
        ]
        if self.regressions.get("captured") or self.regressions.get("entries"):
            lines.append(
                f"  regression corpus: {self.regressions.get('entries', 0)} "
                f"entr(ies), {self.regressions.get('captured', 0)} captured "
                f"this run"
            )
        for category in sorted(self.bug_categories):
            lines.append(f"  {category}: {self.bug_categories[category]}")
        if self.breaker == "open":
            lines.append("  circuit breaker OPEN: the service gave up")
        return "\n".join(lines)


class StatusChannel:
    """One-shot JSON status socket (the ``repro.serve`` pattern): connect,
    receive one status document, connection closes."""

    def __init__(self, host: str, port: int, snapshot) -> None:
        self._snapshot = snapshot
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(0.25)
        self.host = host
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="campaign-status", daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                payload = json.dumps(
                    self._snapshot(), sort_keys=True).encode("utf-8")
                conn.sendall(payload + b"\n")
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=2.0)


def query_status(host: str, port: int, timeout: float = 5.0) -> Dict:
    """Fetch one status snapshot from a running service's status socket."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return json.loads(b"".join(chunks).decode("utf-8"))


class CampaignService:
    """The long-running campaign daemon. Construct, then :meth:`run`."""

    def __init__(self, config: CampaignServiceConfig, options=None) -> None:
        from repro.core.options import VerifyOptions

        self.config = config
        self.options = options if options is not None else VerifyOptions()
        self.corpus_dir = Path(config.corpus_dir)
        self.corpus_dir.mkdir(parents=True, exist_ok=True)
        self.store = RegressionStore(self.corpus_dir)
        self.checkpoint_path = config.path("checkpoint.jsonl", config.checkpoint)
        self.events_path = config.path("events.jsonl", config.events)
        self.ledger_path = config.path("ledger.jsonl", config.ledger)
        self.scheduler = CorpusScheduler(
            config.seed,
            config.versions,
            regression_entries=self._pin_regressions(),
            weights=config.weights,
        )
        self.breaker = CircuitBreaker(max_failures=config.max_failures)
        self.retry_policy = RetryPolicy(
            max_attempts=config.max_failures + 1,
            base_delay=0.2,
            max_delay=10.0,
            jitter_seed=config.seed,
        )
        self.perf = PerfCounters(
            workers=self.options.workers if self.options.workers else 1)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._state = "created"
        self._started_at: Optional[float] = None
        self._batch = 0
        self._units_scheduled = 0       # distinct units handed to execution
        self._attempts_inflight: set = set()
        self._requeued = 0
        self._replayed = 0
        self._verdict_mix: Dict[str, int] = {}
        self._kind_mix: Dict[str, int] = {k: 0 for k in KINDS}
        self._bug_categories: Dict[str, int] = {}
        self._solver_checks = 0
        self._divergences = 0
        self._incremental_reused = 0
        self._incremental_recomputed = 0
        self._checkpoint_units = 0
        self._checkpoint_at: Optional[float] = None
        self._engine_digests: Dict[str, str] = {}
        self._status_channel: Optional[StatusChannel] = None
        self._events: Optional[EventLog] = None
        self._sleep = time.sleep  # test seam

    # -- external control ----------------------------------------------------

    def request_stop(self) -> None:
        """Graceful drain: finish the in-flight batch, checkpoint, exit.
        Safe to call from a signal handler or another thread."""
        self._stop.set()

    @property
    def status_port(self) -> Optional[int]:
        channel = self._status_channel
        return channel.port if channel is not None else None

    # -- identity ------------------------------------------------------------

    def _pin_regressions(self):
        """The regression listing the scheduler replays.

        Fresh runs pin the store's current listing. A ``--resume`` run
        must pin the listing of the run it continues — the crashed run
        captured entries *into* the store before dying, so the store's
        current listing is already wider than what the original schedule
        saw. The original listing lives in the checkpoint header; entries
        are re-read from the store by id (the store never deletes).
        """
        if self.config.resume:
            from repro.resilience import checkpoint as checkpoint_mod

            header, _units, _corrupt = checkpoint_mod.load(
                self.checkpoint_path)
            if header is not None and header.get("kind") == "campaign-service":
                pinned = header.get("scheduler", {}).get("regressions", [])
                return [self.store.get(entry_id) for entry_id in pinned
                        if (self.store.entries_dir
                            / f"{entry_id}.json").exists()]
        return self.store.entries()

    def _header(self) -> Dict:
        return {
            "kind": "campaign-service",
            "scheduler": self.scheduler.header_material(),
            "smoke_first": self.options.smoke_first,
            "faults": self.options.faults,
        }

    def _engine_digest(self, version: str) -> str:
        digest = self._engine_digests.get(version)
        if digest is None:
            digest = engine_digest(version)
            self._engine_digests[version] = digest
        return digest

    def _unit_key(self, unit: WorkUnit) -> Dict:
        return {
            "uid": unit.uid,
            "kind": unit.kind,
            "engine": self._engine_digest(unit.version),
            "zone": zone_digest(unit.zone),
            "base": (zone_digest(unit.base_zone)
                     if unit.base_zone is not None else None),
        }

    def _ledger_row(self, unit: WorkUnit, verdict: Dict) -> Dict:
        """The canonical (timing-free, cache-independent) ledger line."""
        return {
            "uid": unit.uid,
            "task": unit.task,
            "kind": unit.kind,
            "version": unit.version,
            "provenance": unit.provenance,
            "zone": zone_digest(unit.zone),
            "base": (zone_digest(unit.base_zone)
                     if unit.base_zone is not None else None),
            "records": verdict.get("records"),
            "verdict": verdict.get("verdict"),
            "verified": verdict.get("verified"),
            "bug_categories": list(verdict.get("bug_categories", ())),
            "solver_checks": verdict.get("solver_checks"),
            "differential_divergences": verdict.get(
                "differential_divergences"),
            "unknown_reason": verdict.get("unknown_reason"),
            "error_class": verdict.get("error_class"),
        }

    # -- the loop ------------------------------------------------------------

    def run(self) -> CampaignServiceReport:
        """Run the campaign until drained/bounded/broken; blocking."""
        config = self.config
        self._started_at = time.monotonic()
        self._state = "running"
        self._events = EventLog(self.events_path)
        if config.status_port is not None:
            self._status_channel = StatusChannel(
                config.host, config.status_port, self.status)
        self._write_service_file()
        writer, completed = CheckpointWriter.open(
            self.checkpoint_path, self._header(), resume=config.resume)
        self._checkpoint_units = len(completed)
        self._checkpoint_at = time.monotonic()
        ledger = open(self.ledger_path, "w", encoding="utf-8")
        ledger.write(json.dumps(
            {"header": {"format": LEDGER_FORMAT, "seed": config.seed,
                        "versions": list(config.versions)}},
            sort_keys=True, separators=(",", ":")) + "\n")
        ledger.flush()
        self._events.emit(
            EV_START,
            seed=config.seed,
            versions=list(config.versions),
            workers=self.options.workers,
            resume=config.resume,
            replaying=len(completed),
            regressions=len(self.store),
            pid=os.getpid(),
        )
        reason = "drained"
        pending_batch: Optional[List[WorkUnit]] = None
        try:
            while True:
                if self._stop.is_set():
                    reason = "drained"
                    break
                if (config.duration is not None
                        and time.monotonic() - self._started_at
                        >= config.duration):
                    reason = "duration"
                    break
                if (config.units is not None and pending_batch is None
                        and self.scheduler.state.units >= config.units):
                    reason = "units"
                    break
                try:
                    if pending_batch is None:
                        pending_batch = self._next_batch()
                    results = self._run_batch(pending_batch, writer, completed)
                    self._absorb(pending_batch, results, ledger)
                    pending_batch = None
                    self.breaker.record_success()
                except Exception as exc:  # supervision boundary
                    self._abandon_attempts()
                    self.breaker.record_failure()
                    self._events.emit(
                        EV_BREAKER,
                        state=self.breaker.state,
                        consecutive_failures=self.breaker.consecutive_failures,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    if self.breaker.is_open:
                        reason = "breaker"
                        break
                    self._sleep(self._backoff_delay())
        finally:
            self._state = "stopped"
            elapsed = time.monotonic() - self._started_at
            report = self._report(reason, elapsed)
            self._events.emit(EV_DRAIN, reason=reason)
            self._events.emit(EV_STOP, **{
                "units_completed": report.units_completed,
                "verdict_mix": report.verdict_mix,
                "breaker": report.breaker,
            })
            self._events.close()
            ledger.close()
            self._write_service_file(final=report)
            if self._status_channel is not None:
                self._status_channel.close()
                self._status_channel = None
        return report

    def _next_batch(self) -> List[WorkUnit]:
        config = self.config
        tasks = config.batch_tasks
        if tasks is None:
            tasks = max(1, self.options.workers or 1)
        if config.units is not None:
            remaining = config.units - self.scheduler.state.units
            tasks = min(tasks, max(
                1, math.ceil(remaining / len(config.versions))))
        self._batch += 1
        units = self.scheduler.next_batch(tasks)
        self._events.emit(EV_BATCH, batch=self._batch, tasks=tasks,
                          units=len(units))
        return units

    def _backoff_delay(self) -> float:
        delays = list(self.retry_policy.delays())
        position = min(self.breaker.consecutive_failures - 1,
                       len(delays) - 1)
        return delays[position] if delays else 0.0

    def _abandon_attempts(self) -> None:
        """A batch attempt died mid-flight: close its open ``scheduled``
        events as ``requeued`` so the stream stays conserved (the next
        attempt re-schedules the same units)."""
        with self._lock:
            inflight = sorted(self._attempts_inflight)
            self._attempts_inflight.clear()
            self._requeued += len(inflight)
        for uid in inflight:
            self._events.emit(EV_REQUEUED, uid=uid, cause="batch-failure")

    # -- batch execution -----------------------------------------------------

    def _payload(self, unit: WorkUnit) -> Dict:
        payload = {
            "index": unit.uid,
            "zone_pickle": pickle.dumps(unit.zone),
            "version": unit.version,
            "options": self.options.to_json(),
            "base_zone_pickle": (pickle.dumps(unit.base_zone)
                                 if unit.base_zone is not None else None),
        }
        return payload

    def _grace_seconds(self) -> Optional[float]:
        if self.options.budget_seconds is None:
            return None
        return 3.0 * self.options.budget_seconds + 30.0

    def _schedule_attempt(self, unit: WorkUnit) -> None:
        with self._lock:
            if unit.uid not in self._attempts_inflight:
                self._units_scheduled += 1
            self._attempts_inflight.add(unit.uid)
        self._events.emit(EV_SCHEDULED, uid=unit.uid, task=unit.task,
                          unit_kind=unit.kind, version=unit.version,
                          provenance=unit.provenance)

    def _complete(self, unit: WorkUnit, verdict: Dict, writer, completed,
                  replayed: bool, value: Optional[Dict] = None) -> None:
        key = self._unit_key(unit)
        if not replayed:
            writer.append(key, verdict)
            completed[unit_address(key)] = verdict
            with self._lock:
                self._checkpoint_units += 1
                self._checkpoint_at = time.monotonic()
        with self._lock:
            self._attempts_inflight.discard(unit.uid)
            if replayed:
                self._replayed += 1
                self.perf.units_replayed += 1
            else:
                self.perf.absorb(value.get("perf") if value else None)
                incremental = (value or {}).get("incremental")
                if incremental:
                    self._incremental_reused += incremental.get(
                        "partitions_reused", 0)
                    self._incremental_recomputed += incremental.get(
                        "partitions_recomputed", 0)
        self._events.emit(EV_COMPLETED, uid=unit.uid, unit_kind=unit.kind,
                          version=unit.version,
                          verdict=verdict.get("verdict"),
                          replayed=replayed)

    def _run_batch(self, units: List[WorkUnit], writer,
                   completed: Dict[str, Dict]) -> Dict[int, Dict]:
        """Execute (or replay) one batch; returns ``{uid: verdict}``."""
        results: Dict[int, Dict] = {}
        pending: List[WorkUnit] = []
        for unit in units:
            self._schedule_attempt(unit)
            cached = completed.get(unit_address(self._unit_key(unit)))
            if cached is not None:
                results[unit.uid] = cached
                self._complete(unit, cached, writer, completed, replayed=True)
            else:
                pending.append(unit)
        if not pending:
            return results
        payloads = [self._payload(unit) for unit in pending]
        workers = self.options.workers or 1
        for pos, status, value in run_units(
            campaign_service_worker, payloads, workers,
            self._grace_seconds(),
        ):
            unit = pending[pos]
            if status == DIED:
                # Deterministic unit: recompute in-parent, same answer.
                value = campaign_service_worker(payloads[pos])
                self.perf.units_fallback += 1
                status = OK
            elif status == TIMEOUT:
                # The attempt stalled past the grace window: abandon it
                # (requeued) and re-run in-parent, where the cooperative
                # budget bounds it.
                self._events.emit(EV_REQUEUED, uid=unit.uid,
                                  cause="pool-stall")
                with self._lock:
                    self._requeued += 1
                self._events.emit(
                    EV_SCHEDULED, uid=unit.uid, task=unit.task,
                    unit_kind=unit.kind, version=unit.version,
                    provenance=unit.provenance, retry=True)
                value = campaign_service_worker(payloads[pos])
                self.perf.units_timed_out += 1
                status = OK
            verdict = value["verdict"]
            results[unit.uid] = verdict
            self._complete(unit, verdict, writer, completed,
                           replayed=False, value=value)
        return results

    # -- result absorption ---------------------------------------------------

    def _absorb(self, units: List[WorkUnit], results: Dict[int, Dict],
                ledger) -> None:
        """Fold one completed batch into ledger, corpus and feedback —
        in uid order, which is what keeps resumed schedules identical."""
        for unit in sorted(units, key=lambda u: u.uid):
            verdict = results[unit.uid]
            ledger.write(json.dumps(self._ledger_row(unit, verdict),
                                    sort_keys=True,
                                    separators=(",", ":")) + "\n")
            with self._lock:
                kind_count = self._verdict_mix.get(verdict["verdict"], 0)
                self._verdict_mix[verdict["verdict"]] = kind_count + 1
                self._kind_mix[unit.kind] = self._kind_mix.get(unit.kind, 0) + 1
                self._solver_checks += int(verdict.get("solver_checks") or 0)
                self._divergences += int(
                    verdict.get("differential_divergences") or 0)
                for category in verdict.get("bug_categories", ()):
                    self._bug_categories[category] = (
                        self._bug_categories.get(category, 0) + 1)
            self.scheduler.note_result(unit, verdict)
            self._capture(unit, verdict)
        ledger.flush()
        self._events.emit(EV_CHECKPOINT, units=self._checkpoint_units,
                          path=str(self.checkpoint_path))

    def _capture(self, unit: WorkUnit, verdict: Dict) -> None:
        buggy = (verdict.get("verdict") == verdicts_mod.BUG
                 or (verdict.get("differential_divergences") or 0) > 0)
        if not buggy:
            return
        before = self.store.captured
        entry_id = self.store.record(
            unit.zone,
            version=unit.version,
            source=f"campaign:{unit.kind}",
            categories=tuple(verdict.get("bug_categories", ())),
            detail=unit.provenance,
            minimize=self.config.minimize,
        )
        if self.store.captured > before:
            self._events.emit(EV_REGRESSION, uid=unit.uid, entry=entry_id,
                              version=unit.version, unit_kind=unit.kind)

    # -- status --------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The one-shot status document (also what the socket serves)."""
        now = time.monotonic()
        with self._lock:
            inflight = len(self._attempts_inflight)
            completed_units = sum(self._verdict_mix.values())
            uptime = (now - self._started_at
                      if self._started_at is not None else 0.0)
            checkpoint_age = (now - self._checkpoint_at
                              if self._checkpoint_at is not None else None)
            status = {
                "service": {
                    "state": self._state,
                    "pid": os.getpid(),
                    "seed": self.config.seed,
                    "versions": list(self.config.versions),
                    "workers": self.options.workers,
                    "uptime_seconds": round(uptime, 3),
                    "batch": self._batch,
                    "host": self.config.host,
                    "status_port": self.status_port,
                },
                "units": {
                    "scheduled": self._units_scheduled,
                    "completed": completed_units,
                    "replayed": self._replayed,
                    "requeued": self._requeued,
                    "in_flight": inflight,
                },
                "verdict_mix": dict(self._verdict_mix),
                "kinds": dict(self._kind_mix),
                "bug_categories": dict(self._bug_categories),
                "coverage": self.scheduler.state.as_dict(),
                "throughput": {
                    "units_per_second": round(
                        completed_units / uptime, 4) if uptime > 0 else 0.0,
                    "solver_checks": self._solver_checks,
                    "differential_divergences": self._divergences,
                    "incremental_partitions_reused":
                        self._incremental_reused,
                    "incremental_partitions_recomputed":
                        self._incremental_recomputed,
                },
                "perf": self.perf.finish().to_json(),
                "checkpoint": {
                    "path": str(self.checkpoint_path),
                    "units": self._checkpoint_units,
                    "age_seconds": (round(checkpoint_age, 3)
                                    if checkpoint_age is not None else None),
                },
                "events": str(self.events_path),
                "ledger": str(self.ledger_path),
                "regressions": self.store.as_dict(),
                "breaker": {
                    "state": self.breaker.state,
                    "consecutive_failures":
                        self.breaker.consecutive_failures,
                    "opened_count": self.breaker.opened_count,
                },
            }
        return status

    def _report(self, reason: str, elapsed: float) -> CampaignServiceReport:
        with self._lock:
            return CampaignServiceReport(
                reason=reason,
                elapsed_seconds=round(elapsed, 3),
                units_scheduled=self._units_scheduled,
                units_completed=sum(self._verdict_mix.values()),
                units_replayed=self._replayed,
                units_requeued=self._requeued,
                verdict_mix=dict(self._verdict_mix),
                kinds=dict(self._kind_mix),
                bug_categories=dict(self._bug_categories),
                regressions=self.store.as_dict(),
                breaker=self.breaker.state,
                checkpoint=str(self.checkpoint_path),
                events=str(self.events_path),
                ledger=str(self.ledger_path),
            )

    def _write_service_file(self,
                            final: Optional[CampaignServiceReport] = None
                            ) -> None:
        payload = {
            "pid": os.getpid(),
            "host": self.config.host,
            "status_port": self.status_port,
            "state": self._state,
            "seed": self.config.seed,
            "versions": list(self.config.versions),
        }
        if final is not None:
            payload["report"] = final.to_json()
            payload["status"] = self.status()
        path = self.corpus_dir / SERVICE_FILE
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)


def read_ledger(path) -> List[Dict]:
    """Parse a verdict ledger into its unit rows (header line dropped)."""
    rows: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "header" not in record:
                rows.append(record)
    return rows

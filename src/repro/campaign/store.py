"""The campaign's regression corpus: every bug becomes a permanent test.

A :class:`RegressionStore` is a directory of self-contained corpus
entries, one JSON file per distinct zone, content-addressed by the zone's
digest (so re-recording the same finding — e.g. after a ``--resume``
replay — is idempotent). Entries come from two feeds:

- **capture**: the campaign loop records every zone whose unit came back
  BUG or with differential divergences. When the differential tester
  refutes the zone, the zone is first *minimized*: records are greedily
  dropped while the divergence persists, so the stored corpus entry is
  close to a minimal reproducer rather than the whole random zone;
- **ingest**: the serving plane's self-checker exports its live
  divergence records (zone snapshot + offending query,
  :meth:`repro.serve.selfcheck.SelfChecker.export_divergences`) and
  :meth:`RegressionStore.ingest` files them — a divergence seen once in
  production becomes a regression unit every future campaign replays.

The scheduler replays entries in deterministic (entry-id) order; the
store never deletes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.dns.zone import Zone, ZoneValidationError
from repro.dns.zonefile import parse_zone_text, zone_to_text
from repro.incremental.digest import zone_digest

#: Bump when the entry layout changes.
STORE_FORMAT = 1

#: Entry-id length (hex prefix of the zone digest): collision-safe at any
#: plausible corpus size while keeping filenames readable.
_ID_HEX = 16


@dataclass
class RegressionEntry:
    """One stored reproducer: a zone plus what went wrong on it."""

    entry_id: str
    origin: str
    zone_text: str
    source: str               # "campaign:<kind>" | "selfcheck" | caller-defined
    version: str              # engine version the finding was made against
    categories: List[str]
    queries: List[Dict]       # [{"qname": ..., "qtype": int}, ...]
    detail: str = ""
    minimized_from: Optional[int] = None  # record count before minimization

    def to_json(self) -> Dict:
        return {
            "format": STORE_FORMAT,
            "entry_id": self.entry_id,
            "origin": self.origin,
            "zone_text": self.zone_text,
            "source": self.source,
            "version": self.version,
            "categories": list(self.categories),
            "queries": list(self.queries),
            "detail": self.detail,
            "minimized_from": self.minimized_from,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "RegressionEntry":
        return cls(
            entry_id=data["entry_id"],
            origin=data["origin"],
            zone_text=data["zone_text"],
            source=data["source"],
            version=data["version"],
            categories=list(data.get("categories", ())),
            queries=list(data.get("queries", ())),
            detail=data.get("detail", ""),
            minimized_from=data.get("minimized_from"),
        )

    def zone(self) -> Zone:
        return parse_zone_text(self.zone_text)


class RegressionStore:
    """A directory of regression corpus entries.

    Writes are atomic (temp file + ``os.replace``) and idempotent: an
    entry whose zone is already stored is skipped, so concurrent or
    replayed recorders cannot corrupt or duplicate the corpus.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.captured = 0   # new entries written via record()
        self.ingested = 0   # new entries written via ingest()

    # -- reads ---------------------------------------------------------------

    def entry_ids(self) -> List[str]:
        """All stored entry ids, sorted (the scheduler's replay order)."""
        return sorted(
            path.stem for path in self.entries_dir.glob("*.json")
        )

    def __len__(self) -> int:
        return len(self.entry_ids())

    def get(self, entry_id: str) -> RegressionEntry:
        path = self.entries_dir / f"{entry_id}.json"
        with open(path, "r", encoding="utf-8") as handle:
            return RegressionEntry.from_json(json.load(handle))

    def entries(self) -> List[RegressionEntry]:
        return [self.get(entry_id) for entry_id in self.entry_ids()]

    # -- capture (campaign findings) ----------------------------------------

    def record(
        self,
        zone: Zone,
        version: str,
        source: str = "campaign",
        categories: Sequence[str] = (),
        queries: Sequence[Dict] = (),
        detail: str = "",
        minimize: bool = True,
    ) -> str:
        """Store ``zone`` as a regression entry; returns its entry id.

        With ``minimize`` (and a differential oracle that still refutes),
        the zone is shrunk record-by-record first. Idempotent: an already
        stored zone is not rewritten and does not bump the counters.
        """
        minimized_from: Optional[int] = None
        if minimize:
            shrunk = minimize_zone(zone, version)
            if len(shrunk) < len(zone):
                minimized_from = len(zone)
                zone = shrunk
        entry_id = zone_digest(zone)[:_ID_HEX]
        entry = RegressionEntry(
            entry_id=entry_id,
            origin=zone.origin.to_text(),
            zone_text=zone_to_text(zone),
            source=source,
            version=version,
            categories=list(dict.fromkeys(categories)),
            queries=list(queries),
            detail=detail,
            minimized_from=minimized_from,
        )
        if self._write(entry):
            self.captured += 1
        return entry_id

    # -- ingest (serve-plane self-check divergences) ------------------------

    def ingest(self, divergence_records: Iterable[Dict],
               source: str = "selfcheck") -> List[str]:
        """File exported self-check divergence records as corpus entries.

        Records are the dicts
        :meth:`repro.serve.selfcheck.SelfChecker.export_divergences`
        produces (``zone_text``, ``query``, ``version``, ``kind``,
        ``detail``). Records sharing a zone snapshot are merged into one
        entry carrying every offending query. Returns the entry ids that
        were newly written.
        """
        by_zone: Dict[str, List[Dict]] = {}
        for rec in divergence_records:
            by_zone.setdefault(rec["zone_text"], []).append(rec)
        written: List[str] = []
        for zone_text, recs in sorted(by_zone.items()):
            try:
                zone = parse_zone_text(zone_text)
            except (ZoneValidationError, ValueError):
                continue  # a snapshot that no longer parses is not replayable
            entry_id = zone_digest(zone)[:_ID_HEX]
            entry = RegressionEntry(
                entry_id=entry_id,
                origin=zone.origin.to_text(),
                zone_text=zone_to_text(zone),
                source=source,
                version=recs[0].get("version", "unknown"),
                categories=sorted({r["kind"] for r in recs}),
                queries=[r["query"] for r in recs],
                detail="; ".join(r.get("detail", "") for r in recs[:3]),
            )
            if self._write(entry):
                self.ingested += 1
                written.append(entry_id)
        return written

    # -- plumbing ------------------------------------------------------------

    def _write(self, entry: RegressionEntry) -> bool:
        """Atomically publish ``entry``; False when it already exists."""
        path = self.entries_dir / f"{entry.entry_id}.json"
        if path.exists():
            return False
        fd, tmp = tempfile.mkstemp(dir=self.entries_dir, suffix=".entry.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "dir": str(self.root),
            "entries": len(self),
            "captured": self.captured,
            "ingested": self.ingested,
        }


def minimize_zone(zone: Zone, version: str) -> Zone:
    """Greedy record-level minimization against the differential oracle.

    Drops records one at a time (back to front, so glue and targets go
    before the names that reference them) while the differential tester
    still reports at least one divergence for ``version``. Zones the
    differential does not refute (symbolic-only findings, fault-injected
    ERRORs) are returned unchanged — there is no cheap oracle to minimize
    against.
    """
    from repro.testing.differential import differential_test

    def diverges(candidate: Zone) -> bool:
        result = differential_test(candidate, version, check_reference=False)
        return bool(result.divergences)

    try:
        if not diverges(zone):
            return zone
    except Exception:
        return zone  # oracle itself unusable on this zone: keep as-is
    current = zone
    for record in list(reversed(current.records)):
        if record not in current.records:
            continue
        remaining = list(current.records)
        remaining.remove(record)
        try:
            candidate = Zone(current.origin, tuple(remaining))
        except ZoneValidationError:
            continue
        try:
            if diverges(candidate):
                current = candidate
        except Exception:
            continue
    return current

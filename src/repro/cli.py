"""Command-line interface: ``python -m repro <command>``.

Wraps the library the way an operator would use it:

- ``verify``        — run the DNS-V pipeline on a zone file.
- ``campaign``      — verify a version across N generated zones.
- ``differential``  — SCALE-style concrete cross-checking.
- ``summarize``     — print a layer's machine-generated summary spec.
- ``tables``        — regenerate the paper's tables/figures.
- ``zonegen``       — emit random zone files.
- ``serve``         — answer real DNS packets with an engine version.
- ``watch``         — daemon: re-verify a zone file whenever it changes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.engine import control


def _load_zone(args):
    from repro.dns.zonefile import parse_zone_text
    from repro.zonegen import corpus

    if args.zone == "-":
        return parse_zone_text(sys.stdin.read(), origin=args.origin)
    builtin = {
        "evaluation": corpus.evaluation_zone,
        "minimal": corpus.minimal_zone,
        "paper": corpus.paper_example_zone,
        "chain": corpus.chain_zone,
    }
    if args.zone in builtin:
        return builtin[args.zone]()
    with open(args.zone) as handle:
        return parse_zone_text(handle.read(), origin=args.origin)


def _add_zone_arguments(parser):
    parser.add_argument(
        "--zone",
        default="evaluation",
        help="zone file path, '-' for stdin, or a builtin name "
        "(evaluation/minimal/paper/chain)",
    )
    parser.add_argument("--origin", default=None, help="origin for relative zone files")


def _make_cache(args):
    if getattr(args, "cache", None) is None:
        return None
    from repro.incremental import SummaryCache

    return SummaryCache(cache_dir=args.cache)


def cmd_verify(args) -> int:
    import json

    from repro.core import verify_engine

    zone = _load_zone(args)
    cache = _make_cache(args)
    result = verify_engine(zone, args.version, cache=cache)
    if args.json:
        from repro.incremental.serialize import result_to_json

        print(json.dumps(result_to_json(result, cache_stats=result.cache_stats),
                         indent=2, sort_keys=True))
    else:
        print(result.describe())
        if cache is not None:
            print(f"cache: {cache!r}")
    return 0 if result.verified else 1


def cmd_campaign(args) -> int:
    from repro.core import run_campaign

    cache = _make_cache(args)
    report = run_campaign(
        args.version, num_zones=args.zones, seed=args.seed, cache=cache
    )
    print(report.describe())
    if cache is not None:
        print(f"cache: {cache!r}")
    return 0 if report.zones_refuted == 0 else 1


def cmd_watch(args) -> int:
    from repro.incremental import SummaryCache, WatchDaemon

    cache = _make_cache(args)
    daemon = WatchDaemon(
        args.zone,
        version=args.version,
        cache=cache if cache is not None else SummaryCache(memory_only=True),
        interval=args.interval,
    )
    daemon.run(max_updates=args.max_updates)
    return 0


def cmd_differential(args) -> int:
    from repro.testing import differential_test

    zone = _load_zone(args)
    result = differential_test(zone, args.version)
    print(result.describe())
    return 0 if result.clean else 1


def cmd_summarize(args) -> int:
    from repro.core.layers import resolution_layers
    from repro.core.pipeline import VerificationSession

    zone = _load_zone(args)
    session = VerificationSession(zone, args.version)
    for layer in resolution_layers():
        summary = session.summarize_layer(layer)
        if layer.function == args.layer or args.layer == "all":
            print(summary.describe())
            print()
        if layer.function == args.layer:
            break
    return 0


def cmd_tables(args) -> int:
    from repro import reporting

    renderers = {
        "table1": reporting.render_table1,
        "table2": reporting.render_table2,
        "table3": reporting.render_table3,
        "fig10": reporting.render_fig10,
        "fig12": reporting.render_fig12,
    }
    targets = renderers if args.which == "all" else {args.which: renderers[args.which]}
    for name, renderer in targets.items():
        print(renderer())
        print()
    return 0


def cmd_zonegen(args) -> int:
    from repro.dns.zonefile import zone_to_text
    from repro.zonegen import GeneratorConfig, ZoneGenerator

    generator = ZoneGenerator(GeneratorConfig(seed=args.seed))
    for index, zone in enumerate(generator.stream(args.count)):
        if args.count > 1:
            print(f"; --- zone {index} ---")
        print(zone_to_text(zone))
    return 0


def cmd_serve(args) -> int:
    sys.argv = [
        "serve_zone",
        "--version",
        args.version,
        "--listen",
        str(args.port),
    ]
    import importlib.util
    import pathlib

    script = pathlib.Path(__file__).resolve().parents[2] / "examples" / "serve_zone.py"
    spec = importlib.util.spec_from_file_location("serve_zone", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNS-V: automated verification of a DNS authoritative engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    versions = sorted(control.ENGINE_VERSIONS)

    p = sub.add_parser("verify", help="verify an engine version on a zone")
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--json", action="store_true",
                   help="machine-readable result (bugs, layer timings, cache stats)")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="persistent summary/refinement cache directory")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("campaign", help="verify across N random zones")
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--zones", type=int, default=5)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="cache directory shared across the campaign's zones")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("differential", help="concrete cross-checking on a zone")
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.set_defaults(func=cmd_differential)

    p = sub.add_parser("summarize", help="print a layer's summary specification")
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--layer", default="tree_search",
                   help="tree_search, find, or all")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("tables", help="regenerate the paper's tables/figures")
    p.add_argument("which", nargs="?", default="all",
                   choices=["all", "table1", "table2", "table3", "fig10", "fig12"])
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("zonegen", help="emit random zone files")
    p.add_argument("--count", type=int, default=1)
    p.add_argument("--seed", type=int, default=2023)
    p.set_defaults(func=cmd_zonegen)

    p = sub.add_parser("serve", help="serve a zone over UDP")
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--port", type=int, default=5353)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "watch", help="re-verify a zone file whenever it changes (mtime polling)"
    )
    p.add_argument("--zone", required=True, help="zone file path to tail")
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="persistent cache directory (default: in-memory)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds")
    p.add_argument("--max-updates", type=int, default=None,
                   help="exit after N processed updates (default: run forever)")
    p.set_defaults(func=cmd_watch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro <command>``.

Wraps the library the way an operator would use it:

- ``verify``        — run the DNS-V pipeline on a zone file.
- ``campaign``      — verify a version across N generated zones.
- ``differential``  — SCALE-style concrete cross-checking.
- ``summarize``     — print a layer's machine-generated summary spec.
- ``tables``        — regenerate the paper's tables/figures.
- ``zonegen``       — emit random zone files.
- ``serve``         — answer real DNS packets with an engine version.
- ``watch``         — daemon: re-verify a zone file whenever it changes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine import control


def _load_zone(args):
    from repro.api import load_zone

    return load_zone(args.zone, origin=getattr(args, "origin", None))


def _add_zone_arguments(parser):
    parser.add_argument(
        "--zone",
        default="evaluation",
        help="zone file path, '-' for stdin, or a builtin name "
        "(evaluation/minimal/paper/chain)",
    )
    parser.add_argument("--origin", default=None, help="origin for relative zone files")


def _runtime_parent() -> argparse.ArgumentParser:
    """The shared runtime flags every long-running subcommand takes
    (``verify``/``campaign``/``watch``), declared once so names, types
    and help text cannot drift between subcommands."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("runtime")
    group.add_argument("--workers", type=int, default=None, metavar="N",
                       help="fan out across N worker processes; the canonical "
                       "report is bit-identical for any N (default: in-process "
                       "sequential)")
    group.add_argument("--budget-seconds", type=float, default=None,
                       help="cooperative wall-clock deadline per unit; "
                       "exhaustion yields an UNKNOWN verdict, not a kill")
    group.add_argument("--fuel", type=int, default=None,
                       help="symbolic step budget; exhaustion yields UNKNOWN")
    group.add_argument("--cache", default=None, metavar="DIR",
                       help="persistent summary/refinement cache directory "
                       "(safe to share between concurrent workers)")
    group.add_argument("--json", action="store_true",
                       help="machine-readable output (verdicts, layer/phase "
                       "timings, cache and perf counters)")
    group.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault plan: 'seed:<N>[:<rate>]' or "
                       "'site=count,...' (see repro.resilience.faults)")
    group.add_argument("--planner", default=None,
                       choices=["by-label", "equivalence-class"],
                       help="query planner: 'by-label' (one unit per "
                       "below-apex subtree; the default) or "
                       "'equivalence-class' (one unit per behavioural "
                       "class; O(classes) solver work on large zones)")
    group.add_argument("--no-analysis", action="store_true",
                       help="skip the static panic-pruning pass (ablation: "
                       "every panic guard goes to the solver)")
    group.add_argument("--analysis-check", action="store_true",
                       help="debug: re-ask the solver at each pruned guard "
                       "site that the panic side really is infeasible")
    return parent


def _make_cache(args):
    if getattr(args, "cache", None) is None:
        return None
    from repro.incremental import SummaryCache

    return SummaryCache(cache_dir=args.cache)


def _make_budget(args):
    seconds = getattr(args, "budget_seconds", None)
    fuel = getattr(args, "fuel", None)
    if seconds is None and fuel is None:
        return None
    from repro.resilience import Budget

    return Budget(wall_seconds=seconds, fuel=fuel)


def _parse_faults(spec: Optional[str]):
    if spec is None:
        return None
    from repro.resilience.faults import parse_spec

    return parse_spec(spec)


def _exit_code(verdict: str) -> int:
    """0 VERIFIED, 1 BUG, 2 UNKNOWN/ERROR — scripts can tell 'proved' from
    'refuted' from 'gave up'."""
    from repro.resilience import verdicts

    if verdict == verdicts.VERIFIED:
        return 0
    if verdict == verdicts.BUG:
        return 1
    return 2


def cmd_verify(args) -> int:
    import json

    from repro.core import VerifyOptions, verify_engine
    from repro.resilience import faults, verdicts

    zone = _load_zone(args)
    options = VerifyOptions.from_args(args)
    cache = _make_cache(args)
    # Sequential runs install the fault plan globally; pooled runs
    # (--workers) instead derive one deterministic plan per unit inside
    # each worker, so the parent installs nothing.
    plan = None if options.workers is not None else _parse_faults(args.faults)
    try:
        if plan is not None:
            faults.install(plan)
        try:
            result = verify_engine(zone, args.version, options=options, cache=cache)
        finally:
            if plan is not None:
                faults.clear()
    except (faults.InjectedFault, OSError) as exc:
        error_class, detail = verdicts.classify_error(exc)
        print(f"ERROR ({error_class}): {detail}", file=sys.stderr)
        return 2
    if args.json:
        from repro.incremental.serialize import result_to_json

        print(json.dumps(result_to_json(result, cache_stats=result.cache_stats),
                         indent=2, sort_keys=True))
    else:
        print(result.describe())
        analysis = getattr(result, "analysis", None) or {}
        if args.analysis_check and analysis.get("enabled"):
            pruned = analysis.get("pruned_hits_by_function") or {}
            residual = analysis.get("guard_checks_by_function") or {}
            print("analysis discharge by function:")
            for fn in sorted(set(pruned) | set(residual)):
                print(f"  {fn}: {pruned.get(fn, 0)} guard(s) discharged, "
                      f"{residual.get(fn, 0)} left to the solver")
        if cache is not None:
            print(f"cache: {cache!r}")
    return _exit_code(result.verdict)


def cmd_campaign(args) -> int:
    import json

    from repro.core import run_campaign
    from repro.resilience import faults, verdicts

    if args.status:
        return _campaign_status(args)
    if args.serve:
        return _campaign_serve(args)
    cache = _make_cache(args)
    workers = args.workers
    plan = None if workers is not None else _parse_faults(args.faults)
    if plan is not None:
        faults.install(plan)
    try:
        report = run_campaign(
            args.version,
            num_zones=args.zones,
            seed=args.seed,
            cache=cache,
            budget_seconds=args.budget_seconds,
            budget_fuel=args.fuel,
            checkpoint=args.checkpoint,
            resume=args.resume,
            workers=workers,
            faults=args.faults if workers is not None else None,
        )
    finally:
        if plan is not None:
            faults.clear()
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.describe())
        if cache is not None:
            print(f"cache: {cache!r}")
    if any(v.verdict == verdicts.BUG for v in report.verdicts):
        return 1
    if report.zones_unknown or report.zones_errored:
        return 2
    return 0 if report.zones_refuted == 0 else 1


def _campaign_versions(args) -> tuple:
    raw = args.versions or "verified,v2.0"
    versions = tuple(v.strip() for v in raw.split(",") if v.strip())
    unknown = [v for v in versions if v not in control.ENGINE_VERSIONS]
    if unknown:
        raise SystemExit(
            f"unknown engine version(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(control.ENGINE_VERSIONS))})"
        )
    return versions


def _campaign_serve(args) -> int:
    """``repro campaign --serve``: the continuous campaign service.

    Runs until drained (SIGTERM/SIGINT), ``--duration`` elapses, or
    ``--units`` have been scheduled. Exit 0 on a clean drain (BUG
    findings are the service's product, not a failure), 2 when the
    supervision circuit breaker opened.
    """
    import json
    import signal

    from repro.campaign import CampaignService, CampaignServiceConfig
    from repro.core import VerifyOptions

    config = CampaignServiceConfig(
        corpus_dir=args.corpus_dir,
        seed=args.seed,
        versions=_campaign_versions(args),
        units=args.units,
        duration=args.duration,
        batch_tasks=args.batch_tasks,
        checkpoint=args.checkpoint,
        events=args.events,
        ledger=args.ledger,
        resume=args.resume,
        status_port=args.status_port,
        host=args.host,
        minimize=not args.no_minimize,
        max_failures=args.max_failures,
    )
    options = VerifyOptions.from_args(args)
    service = CampaignService(config, options=options)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: service.request_stop())
        except ValueError:
            pass  # not the main thread
    report = service.run()
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return report.exit_code


def _campaign_status(args) -> int:
    """``repro campaign --status``: one status snapshot, as JSON.

    A running service is discovered through ``<corpus-dir>/service.json``
    and queried over its one-shot status socket; once the service has
    stopped the registry file carries its final snapshot instead.
    """
    import json

    from repro.campaign import SERVICE_FILE, query_status

    registry = Path(args.corpus_dir) / SERVICE_FILE
    if not registry.exists():
        print(f"no campaign service registry at {registry}", file=sys.stderr)
        return 2
    with open(registry, "r", encoding="utf-8") as handle:
        info = json.load(handle)
    status = None
    if info.get("state") == "running" and info.get("status_port"):
        try:
            status = query_status(info.get("host", "127.0.0.1"),
                                  info["status_port"])
        except OSError:
            status = None  # stale registry (SIGKILL): fall through
    if status is None:
        status = info.get("status", info)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_watch(args) -> int:
    from repro.core import VerifyOptions
    from repro.incremental import SummaryCache, WatchDaemon

    cache = _make_cache(args)
    options = VerifyOptions.from_args(args)
    daemon = WatchDaemon(
        args.zone,
        version=args.version,
        cache=cache if cache is not None else SummaryCache(memory_only=True),
        interval=args.interval,
        max_failures=args.max_failures,
        workers=options.workers,
        options=options,
    )
    daemon.run(max_updates=args.max_updates)
    return 2 if daemon.breaker.is_open else 0


def cmd_faultdrill(args) -> int:
    from repro.testing import fault_drill

    report = fault_drill(args.version)
    print(report.describe())
    return 0 if report.clean else 1


def cmd_chaosdrill(args) -> int:
    """``repro chaosdrill --serve``: soak the live serving plane under a
    seeded fault storm and assert its invariants (see
    :mod:`repro.testing.chaosdrill`). Exit 1 on any violated invariant.
    """
    import json as json_mod

    from repro.testing.chaosdrill import ChaosDrillConfig, chaos_drill

    if not args.serve:
        print("chaosdrill currently has one mode: pass --serve "
              "(site-by-site drills live under `repro faultdrill`)",
              file=sys.stderr)
        return 2
    config = ChaosDrillConfig(
        seed=args.seed,
        queries=args.queries,
        fault_rate=args.rate,
        deltas=args.deltas,
        version=args.version,
        qps_capacity=args.qps_capacity,
        duration=args.duration,
    )
    report = chaos_drill(config, workdir=args.workdir)
    if args.json:
        print(json_mod.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json_mod.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.clean else 1


def _sarif_report(findings, rules):
    """Findings as a SARIF 2.1.0 subset: one run, one result per finding.

    Only the stable core of the schema — tool.driver.rules and
    results[].ruleId/message/locations — so code-scanning UIs ingest it
    without the repo committing to the full spec.
    """
    from repro import __version__ as tool_version

    results = []
    for finding in findings:
        region = {}
        if finding.line is not None:
            region["startLine"] = finding.line
        if finding.col is not None:
            region["startColumn"] = finding.col + 1
        results.append({
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": region,
                },
                "logicalLocations": [{
                    "fullyQualifiedName":
                        f"{finding.module}:{finding.function}",
                }],
            }],
            "partialFingerprints": {"baselineKey": finding.baseline_key()},
        })
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": tool_version,
                    "rules": [
                        {"id": rule,
                         "shortDescription": {"text": text}}
                        for rule, text in sorted(rules.items())
                    ],
                },
            },
            "results": results,
        }],
    }


def cmd_lint(args) -> int:
    """``repro lint``: the GoPy anti-modularity linter.

    Without a baseline this is a report (exit 0). With ``--baseline`` it
    becomes a gate: exit 1 only on findings the baseline does not
    grandfather, so adopting the linter never requires a flag-day cleanup.
    """
    import json as json_mod
    import os

    from repro.analysis import lint as lint_mod
    from repro.analysis import lint_async

    fmt = args.format or ("json" if args.json else "text")
    versions = (
        sorted(control.ENGINE_VERSIONS)
        if args.version == "all"
        else [args.version]
    )
    findings = lint_mod.lint_versions(versions)
    if not args.no_runtime:
        findings = sorted(findings + lint_async.lint_runtime(),
                          key=lint_mod._sort_key)

    if args.update_baseline:
        lint_mod.save_baseline(args.update_baseline, findings)
        print(f"wrote {len(findings)} findings to {args.update_baseline}")
        return 0

    fresh = None
    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"baseline {args.baseline} not found "
                  f"(create it with --update-baseline)", file=sys.stderr)
            return 2
        fresh = lint_mod.new_findings(findings, lint_mod.load_baseline(args.baseline))

    if fmt == "json":
        payload = {
            "versions": versions,
            "rules": lint_mod.RULES,
            "findings": [f.to_dict() for f in findings],
        }
        if fresh is not None:
            payload["new_findings"] = [f.to_dict() for f in fresh]
        print(json_mod.dumps(payload, indent=2))
    elif fmt == "sarif":
        print(json_mod.dumps(_sarif_report(findings, lint_mod.RULES),
                             indent=2, sort_keys=True))
    else:
        shown = findings if fresh is None else fresh
        for finding in shown:
            print(finding.format())
        if fresh is None:
            print(f"{len(findings)} finding(s)")
        else:
            print(f"{len(findings)} finding(s), "
                  f"{len(fresh)} new vs {args.baseline}")
    return 1 if fresh else 0


def cmd_differential(args) -> int:
    from repro.testing import differential_test

    zone = _load_zone(args)
    result = differential_test(zone, args.version)
    print(result.describe())
    return 0 if result.clean else 1


def cmd_summarize(args) -> int:
    from repro.core.layers import resolution_layers
    from repro.core.pipeline import VerificationSession

    zone = _load_zone(args)
    session = VerificationSession(zone, args.version)
    for layer in resolution_layers():
        summary = session.summarize_layer(layer)
        if layer.function == args.layer or args.layer == "all":
            print(summary.describe())
            print()
        if layer.function == args.layer:
            break
    return 0


def cmd_tables(args) -> int:
    from repro import reporting

    renderers = {
        "table1": reporting.render_table1,
        "table2": reporting.render_table2,
        "table3": reporting.render_table3,
        "fig10": reporting.render_fig10,
        "fig12": reporting.render_fig12,
    }
    targets = renderers if args.which == "all" else {args.which: renderers[args.which]}
    for name, renderer in targets.items():
        print(renderer())
        print()
    return 0


def cmd_zonegen(args) -> int:
    from repro.dns.zonefile import zone_to_text
    from repro.zonegen import GeneratorConfig, ZoneGenerator, tld_zone

    if args.scale is not None:
        zone = tld_zone(args.scale, seed=args.seed)
        text = zone_to_text(zone)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
                if not text.endswith("\n"):
                    handle.write("\n")
            print(f"wrote {len(zone)} records to {args.out}")
        else:
            print(text)
        return 0
    generator = ZoneGenerator(GeneratorConfig(seed=args.seed))
    for index, zone in enumerate(generator.stream(args.count)):
        if args.count > 1:
            print(f"; --- zone {index} ---")
        print(zone_to_text(zone))
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: the verified serving plane (see repro.serve).

    Binds UDP+TCP on ``--port`` and a JSON status channel on
    ``--status-port``; with ``--watch FILE`` zone-file changes funnel
    through the verify-then-publish gate (a delta that fails to re-verify
    is held, the old snapshot keeps answering). ``--journal FILE`` makes
    publishes crash-safe (fsync'd intent records, replayed on boot);
    ``--max-qps`` arms the graceful-degradation ladder. SIGTERM/SIGINT
    drain gracefully: stop accepting, finish in-flight queries, exit 0.
    Exit code 2 when the gate alarm or the reloader's circuit breaker is
    raised at shutdown.
    """
    import asyncio
    import json
    import signal

    from repro.core import VerifyOptions
    from repro.serve import ZoneReloader, ZoneServer

    zone = _load_zone(args)
    options = VerifyOptions.from_args(args)
    server = ZoneServer(
        zone,
        args.version,
        host=args.host,
        port=args.port,
        status_port=args.status_port,
        rate_limit=args.rate_limit,
        selfcheck_every=args.selfcheck_every,
        cache=_make_cache(args),
        options=options,
        workers=options.workers,
        journal=args.journal,
        max_qps=args.max_qps,
    )

    async def serve_main() -> int:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers
        if not args.json:
            print(
                f"serving {zone.origin.to_text()} with engine {args.version} "
                f"on {server.host}:{server.port} (udp+tcp), status on "
                f"port {server.status_port}"
            )
            if server.recovered_sequence is not None:
                print(f"journal recovery: resumed at publish "
                      f"#{server.recovered_sequence}")
        if args.verify_boot:
            boot = await server.verify_boot()
            if not args.json:
                print(f"boot verification: {boot.describe()}")
        reloader_task = None
        reloader = None
        if args.watch:
            reloader = ZoneReloader(args.watch, server.gate)
            reloader.prime()
            reloader_task = asyncio.ensure_future(
                reloader.run(interval=args.interval)
            )
            if not args.json:
                print(f"watching {args.watch} (publish gated on re-verification)")
        try:
            await server.run_forever(duration=args.duration,
                                     grace=args.grace)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            if reloader_task is not None:
                reloader_task.cancel()
                try:
                    await reloader_task
                except asyncio.CancelledError:
                    pass
            await server.stop()
        status = server.status()
        if reloader is not None:
            status["reloader"] = reloader.as_dict()
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        alarmed = status["gate"]["alarm"] is not None
        if reloader is not None and reloader.breaker.is_open:
            alarmed = True
        return 2 if alarmed else 0

    try:
        return asyncio.run(serve_main())
    except KeyboardInterrupt:
        return 0
    except Exception as exc:
        from repro.serve import RecoveryError

        if isinstance(exc, RecoveryError):
            print(f"refusing to start: {exc}", file=sys.stderr)
            return 2
        raise


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNS-V: automated verification of a DNS authoritative engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    versions = sorted(control.ENGINE_VERSIONS)
    runtime = _runtime_parent()

    p = sub.add_parser("verify", help="verify an engine version on a zone",
                       parents=[runtime])
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "campaign",
        help="verify across N random zones, or run the continuous "
        "differential-fuzzing campaign service (--serve)",
        parents=[runtime],
    )
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--zones", type=int, default=5)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="JSONL checkpoint: one atomic record per finished zone "
                   "(service default: <corpus-dir>/checkpoint.jsonl)")
    p.add_argument("--resume", action="store_true",
                   help="replay finished units from the checkpoint instead of "
                   "re-running; a resumed service's ledger is bit-identical "
                   "to an uninterrupted run's")
    service_group = p.add_argument_group(
        "campaign service (continuous differential fuzzing)")
    service_group.add_argument(
        "--serve", action="store_true",
        help="run the continuous campaign service: generated + mutated + "
        "regression zones across --versions, with a regression store, "
        "JSONL events and a status socket")
    service_group.add_argument(
        "--status", action="store_true",
        help="print one JSON status snapshot of the service registered "
        "in --corpus-dir and exit")
    service_group.add_argument(
        "--versions", default=None, metavar="V1,V2",
        help="comma-separated engine versions each zone fans across "
        "(default: verified,v2.0)")
    service_group.add_argument(
        "--units", type=int, default=None, metavar="N",
        help="stop once at least N units were scheduled (deterministic "
        "schedule; default: unbounded)")
    service_group.add_argument(
        "--duration", type=float, default=None, metavar="S",
        help="stop after S wall-clock seconds (checked between batches)")
    service_group.add_argument(
        "--corpus-dir", default="campaign-corpus", metavar="DIR",
        help="regression store + default checkpoint/events/ledger/registry "
        "location (default: campaign-corpus)")
    service_group.add_argument(
        "--events", default=None, metavar="FILE",
        help="append-only JSONL event stream "
        "(default: <corpus-dir>/events.jsonl)")
    service_group.add_argument(
        "--ledger", default=None, metavar="FILE",
        help="canonical verdict ledger, rewritten per run "
        "(default: <corpus-dir>/ledger.jsonl)")
    service_group.add_argument(
        "--status-port", type=int, default=0, metavar="PORT",
        help="one-shot JSON status socket port (0 picks a free one)")
    service_group.add_argument("--host", default="127.0.0.1")
    service_group.add_argument(
        "--batch-tasks", type=int, default=None, metavar="N",
        help="zone-tasks per scheduling batch (default: worker count)")
    service_group.add_argument(
        "--no-minimize", action="store_true",
        help="store captured regression zones as-is instead of minimizing "
        "them against the differential oracle")
    service_group.add_argument(
        "--max-failures", type=int, default=5,
        help="consecutive batch failures before the supervision circuit "
        "breaker stops the service (exit 2)")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("differential", help="concrete cross-checking on a zone")
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.set_defaults(func=cmd_differential)

    p = sub.add_parser("summarize", help="print a layer's summary specification")
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--layer", default="tree_search",
                   help="tree_search, find, or all")
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("tables", help="regenerate the paper's tables/figures")
    p.add_argument("which", nargs="?", default="all",
                   choices=["all", "table1", "table2", "table3", "fig10", "fig12"])
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("zonegen", help="emit random zone files")
    p.add_argument("--count", type=int, default=1)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument("--scale", type=int, default=None, metavar="N",
                   help="emit one TLD-shaped zone with exactly N records "
                   "(deterministic per seed; up to millions) instead of "
                   "--count random zones")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the zone file to FILE instead of stdout "
                   "(--scale mode)")
    p.set_defaults(func=cmd_zonegen)

    p = sub.add_parser(
        "serve",
        help="authoritative server (UDP+TCP) with a verify-then-publish "
        "gate on zone updates",
        parents=[runtime],
    )
    _add_zone_arguments(p)
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=5353,
                   help="UDP+TCP port (0 picks a free one)")
    p.add_argument("--status-port", type=int, default=8053,
                   help="JSON status channel port (0 picks a free one)")
    p.add_argument("--rate-limit", type=float, default=None, metavar="QPS",
                   help="per-client token-bucket rate limit")
    p.add_argument("--selfcheck-every", type=int, default=0, metavar="N",
                   help="replay every Nth live query differentially against "
                   "the verified engine (0 disables)")
    p.add_argument("--watch", default=None, metavar="FILE",
                   help="tail FILE; changed zones publish only after their "
                   "delta re-verifies")
    p.add_argument("--interval", type=float, default=1.0,
                   help="zone-file poll interval in seconds")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for N seconds then exit (default: forever)")
    p.add_argument("--verify-boot", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="verify the boot zone before announcing readiness "
                   "(a failure alarms but still serves)")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="crash-safe publish journal: fsync'd intent records "
                   "appended before every snapshot swap, replayed on boot")
    p.add_argument("--max-qps", type=float, default=None, metavar="QPS",
                   help="arm the graceful-degradation ladder with this "
                   "capacity (shed self-check -> TC=1 -> SERVFAIL -> drop)")
    p.add_argument("--grace", type=float, default=5.0,
                   help="seconds to let in-flight queries finish on "
                   "SIGTERM/SIGINT before closing (default 5)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "watch", help="re-verify a zone file whenever it changes (mtime polling)",
        parents=[runtime],
    )
    p.add_argument("--zone", required=True, help="zone file path to tail")
    p.add_argument("--version", default="verified", choices=versions)
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds")
    p.add_argument("--max-updates", type=int, default=None,
                   help="exit after N processed updates (default: run forever)")
    p.add_argument("--max-failures", type=int, default=5,
                   help="consecutive failing polls before the circuit breaker "
                   "opens and the daemon exits")
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "faultdrill",
        help="inject a fault at every known site; prove each degrades "
        "to a typed verdict",
    )
    p.add_argument("--version", default="verified", choices=versions)
    p.set_defaults(func=cmd_faultdrill)

    p = sub.add_parser(
        "chaosdrill",
        help="soak the live serving plane under a seeded fault storm; "
        "assert the chaos invariants",
    )
    p.add_argument("--serve", action="store_true",
                   help="soak the serving plane (the only mode today)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the query mix and the fault plan")
    p.add_argument("--queries", type=int, default=400,
                   help="queries to drive through the live sockets")
    p.add_argument("--duration", type=float, default=None, metavar="S",
                   help="wall-clock cap on the drive loop: stop sending "
                   "after S seconds even if --queries remain")
    p.add_argument("--rate", type=float, default=0.02,
                   help="per-consult fault probability across serve.* sites")
    p.add_argument("--deltas", type=int, default=3,
                   help="gated zone deltas landed mid-soak (one is "
                   "bug-triggering and must be held)")
    p.add_argument("--version", default="v2.0", choices=versions,
                   help="engine version to serve (default v2.0: a buggy "
                   "engine the gate must protect)")
    p.add_argument("--qps-capacity", type=float, default=800.0,
                   help="degradation-ladder capacity during the soak")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the zone file + journal in DIR "
                   "(default: a temp dir)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the JSON report to FILE")
    p.set_defaults(func=cmd_chaosdrill)

    p = sub.add_parser(
        "lint",
        help="GoPy linter: subset violations, dead code, use-before-def, "
        "anti-modularity smells (stable GPxxx rule ids)",
    )
    p.add_argument("--version", default="all", choices=versions + ["all"],
                   help="engine version to lint (default: all)")
    p.add_argument("--format", default=None, dest="format",
                   choices=["text", "json", "sarif"],
                   help="output format (default: text; 'sarif' is a stable "
                   "SARIF 2.1.0 subset for code-scanning UIs)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings (alias for --format json)")
    p.add_argument("--no-runtime", action="store_true",
                   help="skip the GP4xx async-safety pack over the serving "
                   "and campaign planes; lint only the GoPy engine versions")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="grandfather the findings recorded in FILE; exit 1 "
                   "only on new ones")
    p.add_argument("--update-baseline", default=None, metavar="FILE",
                   help="write the current findings to FILE and exit 0")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

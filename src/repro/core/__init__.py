"""DNS-V: the verification framework tying every layer together.

Public API:

- :func:`repro.core.pipeline.verify_engine` / ``VerificationSession`` —
  verify one engine version against the top-level specification on one
  zone, with layered summarization (paper Figure 6).
- :class:`repro.core.encoding.QueryEncoding` — the symbolic query input.
- :mod:`repro.core.layers` — the interface configuration.
- :mod:`repro.core.porting` — the Table-3 porting-cost analysis.
"""

from repro.core.campaign import (
    Campaign,
    CampaignReport,
    UNIT_ERRORS,
    ZoneVerdict,
    run_campaign,
    run_unit,
)
from repro.core.encoding import QueryEncoding
from repro.core.options import VerifyOptions
from repro.core.layers import LayerConfig, library_layers, resolution_layers, toplevel_layer
from repro.core.pipeline import (
    BugReport,
    LayerResult,
    VerificationResult,
    VerificationSession,
    classify_divergence,
    clear_ir_cache,
    compile_engine_modules,
    verify_engine,
    RUNTIME_ERROR,
    WRONG_ADDITIONAL,
    WRONG_ANSWER,
    WRONG_AUTHORITY,
    WRONG_FLAG,
    WRONG_RCODE,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "UNIT_ERRORS",
    "ZoneVerdict",
    "run_campaign",
    "run_unit",
    "QueryEncoding",
    "VerifyOptions",
    "LayerConfig",
    "library_layers",
    "resolution_layers",
    "toplevel_layer",
    "BugReport",
    "LayerResult",
    "VerificationResult",
    "VerificationSession",
    "classify_divergence",
    "clear_ir_cache",
    "compile_engine_modules",
    "verify_engine",
    "RUNTIME_ERROR",
    "WRONG_ADDITIONAL",
    "WRONG_ANSWER",
    "WRONG_AUTHORITY",
    "WRONG_FLAG",
    "WRONG_RCODE",
]

"""Verification campaigns: the paper's continuous operating mode.

Section 6.5/9: each run of the overall verification proves the engine
correct and safe *for one concrete zone snapshot*; the production workflow
runs it over tens of thousands of randomly generated zone configurations
(plus the live ones) on every engine iteration. A :class:`Campaign` is that
loop: a stream of zones, one pipeline run per (zone, version), aggregated
into a coverage/verdict report.

For speed, each zone is first smoke-tested differentially (milliseconds);
zones the differential already refutes can optionally skip the heavier
proof — matching how the production pipeline triages, while keeping the
proof available per zone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pipeline import VerificationResult, VerificationSession
from repro.dns.zone import Zone
from repro.testing import differential_test
from repro.zonegen import GeneratorConfig, ZoneGenerator


@dataclass
class ZoneVerdict:
    """Outcome for one (zone, version) pair."""

    zone_index: int
    zone_origin: str
    records: int
    verified: bool
    bug_categories: Tuple[str, ...]
    elapsed_seconds: float
    solver_checks: int
    differential_divergences: int


@dataclass
class CampaignReport:
    """Aggregate over all zones for one engine version."""

    version: str
    verdicts: List[ZoneVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def zones_run(self) -> int:
        return len(self.verdicts)

    @property
    def zones_verified(self) -> int:
        return sum(1 for v in self.verdicts if v.verified)

    @property
    def zones_refuted(self) -> int:
        return self.zones_run - self.zones_verified

    def category_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for verdict in self.verdicts:
            for category in verdict.bug_categories:
                histogram[category] = histogram.get(category, 0) + 1
        return histogram

    def describe(self) -> str:
        lines = [
            f"campaign {self.version}: {self.zones_verified}/{self.zones_run} zones "
            f"verified ({self.elapsed_seconds:.1f}s total)"
        ]
        histogram = self.category_histogram()
        for category in sorted(histogram):
            lines.append(f"  {category}: on {histogram[category]} zone(s)")
        slowest = max(self.verdicts, key=lambda v: v.elapsed_seconds, default=None)
        if slowest is not None:
            lines.append(
                f"  slowest zone: #{slowest.zone_index} ({slowest.records} rrs, "
                f"{slowest.elapsed_seconds:.1f}s, {slowest.solver_checks} checks)"
            )
        return "\n".join(lines)


class Campaign:
    """Run the pipeline over a stream of zones."""

    def __init__(
        self,
        zones: Optional[Iterable[Zone]] = None,
        generator_config: Optional[GeneratorConfig] = None,
        num_zones: int = 10,
    ):
        if zones is not None:
            self._zones = list(zones)
        else:
            config = generator_config or GeneratorConfig(
                num_hosts=4, num_wildcards=1, num_delegations=1,
                num_cnames=1, num_mx=1,
            )
            self._zones = list(ZoneGenerator(config).stream(num_zones))

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones)

    def run(
        self,
        version: str,
        smoke_first: bool = True,
        max_zone_seconds: Optional[float] = None,
        cache=None,
    ) -> CampaignReport:
        """Verify ``version`` on every zone; returns the aggregate report.

        With ``smoke_first`` the differential tester runs before each
        proof (its divergence count is recorded either way — a sanity
        cross-check: the prover must refute every zone the tester does).
        ``cache`` (a :class:`repro.incremental.cache.SummaryCache`) is
        shared across every zone of the campaign, so repeated or related
        snapshots replay their summaries and refinement verdicts.
        """
        report = CampaignReport(version)
        started = time.perf_counter()
        for index, zone in enumerate(self._zones):
            divergences = 0
            if smoke_first:
                smoke = differential_test(zone, version, check_reference=False)
                divergences = len(smoke.divergences)
            result = VerificationSession(zone, version, cache=cache).verify()
            if divergences and result.verified:
                raise RuntimeError(
                    f"unsound: differential refuted zone {index} but the "
                    f"proof passed ({version})"
                )
            report.verdicts.append(
                ZoneVerdict(
                    zone_index=index,
                    zone_origin=zone.origin.to_text(),
                    records=len(zone),
                    verified=result.verified,
                    bug_categories=tuple(result.bug_categories()),
                    elapsed_seconds=result.elapsed_seconds,
                    solver_checks=result.solver_checks,
                    differential_divergences=divergences,
                )
            )
            if (
                max_zone_seconds is not None
                and time.perf_counter() - started > max_zone_seconds * len(self._zones)
            ):
                break
        report.elapsed_seconds = time.perf_counter() - started
        return report


def run_campaign(
    version: str,
    num_zones: int = 10,
    seed: int = 2023,
    cache=None,
    **config_overrides,
) -> CampaignReport:
    """Convenience API: generate ``num_zones`` zones and verify ``version``
    on each; ``cache`` is shared by every zone."""
    config = GeneratorConfig(seed=seed, **config_overrides)
    campaign = Campaign(generator_config=config, num_zones=num_zones)
    return campaign.run(version, cache=cache)

"""Verification campaigns: the paper's continuous operating mode.

Section 6.5/9: each run of the overall verification proves the engine
correct and safe *for one concrete zone snapshot*; the production workflow
runs it over tens of thousands of randomly generated zone configurations
(plus the live ones) on every engine iteration. A :class:`Campaign` is that
loop: a stream of zones, one pipeline run per (zone, version), aggregated
into a coverage/verdict report.

For speed, each zone is first smoke-tested differentially (milliseconds);
zones the differential already refutes can optionally skip the heavier
proof — matching how the production pipeline triages, while keeping the
proof available per zone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pipeline import VerificationResult, VerificationSession
from repro.dns.zone import Zone
from repro.frontend.errors import GoPyError
from repro.resilience import verdicts as verdicts_mod
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import CheckpointWriter, unit_address
from repro.resilience.faults import InjectedFault
from repro.symex.errors import SymexError
from repro.testing import differential_test
from repro.zonegen import GeneratorConfig, ZoneGenerator


@dataclass
class ZoneVerdict:
    """Typed outcome for one (zone, version) unit.

    ``verdict`` is one of the :mod:`repro.resilience.verdicts` kinds; an
    ERROR unit (compile failure, injected fault, IO) records its taxonomy
    in ``error_class`` and the campaign *continues* — one broken unit
    never aborts the run.
    """

    zone_index: int
    zone_origin: str
    records: int
    verified: bool
    bug_categories: Tuple[str, ...]
    elapsed_seconds: float
    solver_checks: int
    differential_divergences: int
    verdict: str = verdicts_mod.VERIFIED
    unknown_reason: Optional[str] = None
    error_class: Optional[str] = None
    error_detail: str = ""

    def to_json(self) -> Dict:
        return {
            "zone_index": self.zone_index,
            "zone_origin": self.zone_origin,
            "records": self.records,
            "verified": self.verified,
            "bug_categories": list(self.bug_categories),
            "elapsed_seconds": self.elapsed_seconds,
            "solver_checks": self.solver_checks,
            "differential_divergences": self.differential_divergences,
            "verdict": self.verdict,
            "unknown_reason": self.unknown_reason,
            "error_class": self.error_class,
            "error_detail": self.error_detail,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "ZoneVerdict":
        return cls(
            zone_index=data["zone_index"],
            zone_origin=data["zone_origin"],
            records=data["records"],
            verified=data["verified"],
            bug_categories=tuple(data["bug_categories"]),
            elapsed_seconds=data["elapsed_seconds"],
            solver_checks=data["solver_checks"],
            differential_divergences=data["differential_divergences"],
            verdict=data.get("verdict", verdicts_mod.VERIFIED),
            unknown_reason=data.get("unknown_reason"),
            error_class=data.get("error_class"),
            error_detail=data.get("error_detail", ""),
        )


@dataclass
class CampaignReport:
    """Aggregate over all zones for one engine version."""

    version: str
    verdicts: List[ZoneVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Per-phase perf counters (parallel executor): timings, cache hit
    #: rate, units/sec. Timing-only — excluded from ``canonical_json``.
    perf: Optional[Dict] = None

    @property
    def zones_run(self) -> int:
        return len(self.verdicts)

    @property
    def zones_verified(self) -> int:
        return sum(1 for v in self.verdicts if v.verified)

    @property
    def zones_refuted(self) -> int:
        return self.zones_run - self.zones_verified

    @property
    def zones_unknown(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == verdicts_mod.UNKNOWN)

    @property
    def zones_errored(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == verdicts_mod.ERROR)

    def canonical_json(self) -> str:
        """The deterministic identity of this report: everything except
        wall-clock timings. An interrupted-and-resumed campaign must be
        bit-identical to an uninterrupted one under this projection."""
        units = []
        for verdict in self.verdicts:
            unit = verdict.to_json()
            del unit["elapsed_seconds"]
            units.append(unit)
        return json.dumps(
            {"version": self.version, "verdicts": units},
            sort_keys=True,
            separators=(",", ":"),
        )

    def to_json(self) -> Dict:
        """Machine-readable report (the campaign ``--json`` contract):
        the canonical identity fields plus timings and perf counters."""
        return {
            "version": self.version,
            "zones_run": self.zones_run,
            "zones_verified": self.zones_verified,
            "zones_refuted": self.zones_refuted,
            "zones_unknown": self.zones_unknown,
            "zones_errored": self.zones_errored,
            "elapsed_seconds": self.elapsed_seconds,
            "verdicts": [verdict.to_json() for verdict in self.verdicts],
            "category_histogram": self.category_histogram(),
            "perf": None if self.perf is None else dict(self.perf),
        }

    def category_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for verdict in self.verdicts:
            for category in verdict.bug_categories:
                histogram[category] = histogram.get(category, 0) + 1
        return histogram

    def describe(self) -> str:
        lines = [
            f"campaign {self.version}: {self.zones_verified}/{self.zones_run} zones "
            f"verified ({self.elapsed_seconds:.1f}s total)"
        ]
        if self.zones_unknown:
            lines.append(f"  {self.zones_unknown} zone(s) UNKNOWN (budget/solver)")
        for verdict in self.verdicts:
            if verdict.verdict == verdicts_mod.ERROR:
                lines.append(
                    f"  zone #{verdict.zone_index} ERROR "
                    f"({verdict.error_class}): {verdict.error_detail}"
                )
        histogram = self.category_histogram()
        for category in sorted(histogram):
            lines.append(f"  {category}: on {histogram[category]} zone(s)")
        slowest = max(self.verdicts, key=lambda v: v.elapsed_seconds, default=None)
        if slowest is not None:
            lines.append(
                f"  slowest zone: #{slowest.zone_index} ({slowest.records} rrs, "
                f"{slowest.elapsed_seconds:.1f}s, {slowest.solver_checks} checks)"
            )
        return "\n".join(lines)


#: Exceptions a unit may die of without aborting the campaign; the plain
#: RuntimeError of the unsoundness cross-check deliberately is NOT among
#: them.
UNIT_ERRORS = (GoPyError, SymexError, InjectedFault, OSError)


def run_unit(
    index: int,
    zone: Zone,
    version: str,
    smoke_first: bool = True,
    cache=None,
    budget_seconds: Optional[float] = None,
    budget_fuel: Optional[int] = None,
) -> Tuple[ZoneVerdict, Optional[VerificationResult]]:
    """Verify one (zone, version) campaign unit.

    This is THE unit of work — the sequential :class:`Campaign` loop and
    the :mod:`repro.parallel` pool workers both call it, which is what
    makes a parallel campaign's verdicts bit-identical to a sequential
    one's. Returns the typed verdict plus the underlying
    :class:`VerificationResult` (None when the unit died of a typed
    error) so callers can harvest perf/phase statistics.
    """
    budget = None
    if budget_seconds is not None or budget_fuel is not None:
        budget = Budget(wall_seconds=budget_seconds, fuel=budget_fuel)
    started = time.perf_counter()
    divergences = 0
    try:
        if smoke_first:
            smoke = differential_test(zone, version, check_reference=False)
            divergences = len(smoke.divergences)
        result = VerificationSession(
            zone, version, cache=cache, budget=budget
        ).verify()
    except UNIT_ERRORS as exc:
        error_class, detail = verdicts_mod.classify_error(exc)
        return (
            ZoneVerdict(
                zone_index=index,
                zone_origin=zone.origin.to_text(),
                records=len(zone),
                verified=False,
                bug_categories=(),
                elapsed_seconds=time.perf_counter() - started,
                solver_checks=0,
                differential_divergences=divergences,
                verdict=verdicts_mod.ERROR,
                error_class=error_class,
                error_detail=detail,
            ),
            None,
        )
    if (
        divergences
        and result.verified
        and result.verdict == verdicts_mod.VERIFIED
    ):
        raise RuntimeError(
            f"unsound: differential refuted zone {index} but the "
            f"proof passed ({version})"
        )
    return (
        ZoneVerdict(
            zone_index=index,
            zone_origin=zone.origin.to_text(),
            records=len(zone),
            verified=result.verified,
            bug_categories=tuple(result.bug_categories()),
            elapsed_seconds=result.elapsed_seconds,
            solver_checks=result.solver_checks,
            differential_divergences=divergences,
            verdict=result.verdict,
            unknown_reason=result.unknown_reason,
            error_class=result.error_class,
            error_detail=result.error_detail,
        ),
        result,
    )


class Campaign:
    """Run the pipeline over a stream of zones."""

    def __init__(
        self,
        zones: Optional[Iterable[Zone]] = None,
        generator_config: Optional[GeneratorConfig] = None,
        num_zones: int = 10,
    ):
        if zones is not None:
            self._zones = list(zones)
        else:
            config = generator_config or GeneratorConfig(
                num_hosts=4, num_wildcards=1, num_delegations=1,
                num_cnames=1, num_mx=1,
            )
            self._zones = list(ZoneGenerator(config).stream(num_zones))

    @property
    def zones(self) -> List[Zone]:
        return list(self._zones)

    #: Kept as an alias for backward compatibility (see module-level
    #: :data:`UNIT_ERRORS`).
    _UNIT_ERRORS = UNIT_ERRORS

    def run(
        self,
        version: str,
        smoke_first: bool = True,
        max_zone_seconds: Optional[float] = None,
        cache=None,
        budget_seconds: Optional[float] = None,
        budget_fuel: Optional[int] = None,
        checkpoint=None,
        resume: bool = False,
    ) -> CampaignReport:
        """Verify ``version`` on every zone; returns the aggregate report.

        With ``smoke_first`` the differential tester runs before each
        proof (its divergence count is recorded either way — a sanity
        cross-check: the prover must refute every zone the tester does).
        ``cache`` (a :class:`repro.incremental.cache.SummaryCache`) is
        shared across every zone of the campaign, so repeated or related
        snapshots replay their summaries and refinement verdicts.

        ``budget_seconds``/``budget_fuel`` bound each *unit* (one zone)
        with a fresh cooperative :class:`~repro.resilience.Budget`;
        exhaustion records an ``UNKNOWN`` verdict and the campaign moves
        on. A unit that dies of a compile/verify error records a typed
        ``ERROR`` verdict instead of aborting the run.

        ``checkpoint`` names a JSONL file that receives one atomic record
        per completed unit; with ``resume=True`` the units already in it
        are replayed bit-identically (verdicts, solver-check counts —
        everything but wall-clock time) instead of re-run, so a SIGKILLed
        campaign restarts where it died.
        """
        report = CampaignReport(version)
        started = time.perf_counter()
        writer, completed = self._open_checkpoint(
            checkpoint, version, smoke_first, resume
        )
        for index, zone in enumerate(self._zones):
            unit_key = self._unit_key(index, zone, version)
            if writer is not None:
                cached = completed.get(unit_address(unit_key))
                if cached is not None:
                    report.verdicts.append(ZoneVerdict.from_json(cached))
                    continue
            verdict = self._run_unit(
                index, zone, version, smoke_first, cache,
                budget_seconds, budget_fuel,
            )
            report.verdicts.append(verdict)
            if writer is not None:
                writer.append(unit_key, verdict.to_json())
            if (
                max_zone_seconds is not None
                and time.perf_counter() - started > max_zone_seconds * len(self._zones)
            ):
                break
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _run_unit(
        self,
        index: int,
        zone: Zone,
        version: str,
        smoke_first: bool,
        cache,
        budget_seconds: Optional[float],
        budget_fuel: Optional[int],
    ) -> ZoneVerdict:
        verdict, _result = run_unit(
            index, zone, version, smoke_first, cache,
            budget_seconds, budget_fuel,
        )
        return verdict

    # -- checkpoint plumbing ------------------------------------------------

    def _campaign_header(self, version: str, smoke_first: bool) -> Dict:
        from repro.incremental.digest import engine_digest, zone_digest

        return {
            "kind": "campaign",
            "version": version,
            "engine": engine_digest(version),
            "smoke_first": smoke_first,
            "zones": [zone_digest(zone) for zone in self._zones],
        }

    def _unit_key(self, index: int, zone: Zone, version: str) -> Dict:
        from repro.incremental.digest import engine_digest, zone_digest

        return {
            "index": index,
            "zone": zone_digest(zone),
            "engine": engine_digest(version),
        }

    def _open_checkpoint(self, checkpoint, version: str, smoke_first: bool,
                         resume: bool):
        if checkpoint is None:
            return None, {}
        header = self._campaign_header(version, smoke_first)
        return CheckpointWriter.open(checkpoint, header, resume=resume)


def run_campaign(
    version: str,
    num_zones: int = 10,
    seed: int = 2023,
    cache=None,
    budget_seconds: Optional[float] = None,
    budget_fuel: Optional[int] = None,
    checkpoint=None,
    resume: bool = False,
    workers: Optional[int] = None,
    faults: Optional[str] = None,
    **config_overrides,
) -> CampaignReport:
    """Convenience API: generate ``num_zones`` zones and verify ``version``
    on each; ``cache`` is shared by every zone. Budget and checkpoint
    arguments are forwarded to :meth:`Campaign.run`.

    ``workers`` (any integer, including 1) routes the campaign through
    the :mod:`repro.parallel` pooled executor; its canonical report is
    bit-identical across worker counts. ``faults`` (a spec string) is
    only honoured on that path, where it derives one deterministic plan
    per unit id; sequential callers install a plan globally instead.
    """
    if workers is not None:
        from repro.core.options import VerifyOptions
        from repro.parallel import run_campaign_parallel

        cache_dir = None
        if cache is not None and not getattr(cache, "memory_only", False):
            cache_dir = str(cache.cache_dir)
        options = VerifyOptions(
            budget_seconds=budget_seconds,
            fuel=budget_fuel,
            workers=workers,
            faults=faults,
            cache_dir=cache_dir,
        )
        return run_campaign_parallel(
            version,
            num_zones=num_zones,
            seed=seed,
            options=options,
            checkpoint=checkpoint,
            resume=resume,
            **config_overrides,
        )
    config = GeneratorConfig(seed=seed, **config_overrides)
    campaign = Campaign(generator_config=config, num_zones=num_zones)
    return campaign.run(
        version,
        cache=cache,
        budget_seconds=budget_seconds,
        budget_fuel=budget_fuel,
        checkpoint=checkpoint,
        resume=resume,
    )

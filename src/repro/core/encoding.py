"""Symbolic query encoding (paper section 5.4).

The query name is a variable-length list encoded as one symbolic integer
per potential label (``n0 .. n<D-1>``) plus a symbolic length ``nameLen``;
the query type is the symbolic integer ``qtype``. The global precondition
boxes every variable: labels range over the interner's valid code space
(so gap values decode to fresh concrete labels) and the length is bounded
by the verification depth — which is what makes every loop in the engine
and the specification finite (section 6.5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.message import Query
from repro.dns.name import DnsName, MAX_NAME_DEPTH
from repro.dns.rtypes import RRType
from repro.engine.encoding import ZoneEncoder
from repro.solver import Solver, SolveResult, ge, ivar, le, ne
from repro.solver.solver import Model
from repro.solver.terms import BoolExpr, IntExpr
from repro.symex.state import PathState
from repro.symex.values import ListVal, Pointer


class QueryEncoding:
    """The symbolic (qname, qtype) input and its global constraints."""

    def __init__(self, encoder: ZoneEncoder, depth: Optional[int] = None):
        self.encoder = encoder
        zone_depth = encoder.zone.max_name_depth()
        self.depth = min(depth if depth is not None else zone_depth + 2, MAX_NAME_DEPTH)
        self.labels: List[IntExpr] = [ivar(f"n{i}") for i in range(self.depth)]
        self.name_len = ivar("nameLen")
        self.qtype = ivar("qtype")

    def install(self, state: PathState) -> Pointer:
        """Allocate the symbolic qname list in ``state`` and return its
        pointer (the block both the engine and the spec receive)."""
        return state.memory.alloc(ListVal(tuple(self.labels), self.name_len))

    def preconditions(self) -> List[BoolExpr]:
        interner = self.encoder.interner
        pre: List[BoolExpr] = [ge(self.name_len, 1), le(self.name_len, self.depth)]
        for label in self.labels:
            pre.append(ge(label, interner.min_code))
            pre.append(le(label, interner.max_code))
        pre.append(ge(self.qtype, 1))
        pre.append(le(self.qtype, 65535))  # full 16-bit type space (ALIAS is 65280)
        return pre

    # -- decoding models back into concrete queries -----------------------------

    def query_codes(self, model: Model) -> List[int]:
        """The concrete reversed-label-code qname under ``model`` (always
        available; used for native re-execution)."""
        length = model.get_int("nameLen", 1)
        length = max(1, min(length, self.depth))
        return [model.get_int(f"n{i}", self.encoder.interner.min_code)
                for i in range(length)]

    def qtype_code(self, model: Model) -> int:
        return model.get_int("qtype", int(RRType.A))

    def decode_query(self, model: Model) -> Optional[Query]:
        """Decode a model into a runnable :class:`Query`; None when a gap
        label admits no legal spelling (callers may re-solve)."""
        name = self.encoder.interner.decode_name(self.query_codes(model))
        if name is None:
            return None
        qtype_value = self.qtype_code(model)
        try:
            qtype = RRType(qtype_value)
        except ValueError:
            # A synthetic type code: semantically "some type with no data";
            # report it as TXT-like unknown via the nearest queryable type.
            qtype = RRType.TXT
        return Query(name, qtype)

    def refine_model(self, solver: Solver, conditions, model: Model) -> Optional[Model]:
        """Re-solve with undecodable label values excluded, a few times."""
        extra = list(conditions)
        for _ in range(8):
            if self.decode_query(model) is not None:
                return model
            codes = self.query_codes(model)
            for i, code in enumerate(codes):
                if self.encoder.interner.decode(code) is None:
                    extra.append(ne(ivar(f"n{i}"), code))
            if solver.check(*extra) is not SolveResult.SAT:
                return None
            model = solver.model()
        return None

"""Layer definitions — the interface configuration (paper sections 4.3/6.2).

This table is the artifact the paper calls the *interface config*: for each
layer it records the verification route (manual refinement vs automated
summarization) and how the layer's parameters bind to the verification
context — the concrete heap pointers and the global symbolic query the
naming convention of section 5.3 associates with summary variables.

The table is shared by every engine version because the layer interfaces
happened to stay stable across our iterations; the porting-cost analysis
(Table 3) measures this file as the interface-configuration artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.summary.params import (
    FixedValue,
    ParamSpec,
    ResultStruct,
    SymbolicInt,
)


@dataclass(frozen=True)
class LayerConfig:
    """One verification layer.

    ``route`` is ``"summarize"`` for evolving resolution logic (blue boxes
    of Figure 5), ``"library"`` for stable manually-specified layers
    (yellow boxes), ``"toplevel"`` for the final Resolve-vs-spec check.
    ``params`` builds the parameter setup from a verification session.
    """

    name: str
    function: str
    route: str
    params: Callable = None
    description: str = ""


def resolution_layers() -> List[LayerConfig]:
    """Summarized layers, bottom-up (a layer may consume the summaries of
    the layers before it — find invokes tree_search's summary)."""
    return [
        LayerConfig(
            name="TreeSearch",
            function="tree_search",
            route="summarize",
            params=lambda session: [
                FixedValue(session.tree_ptr),
                FixedValue(session.q_ptr),
                ResultStruct("NodeStack"),
                ResultStruct("SearchResult"),
            ],
            description="walks the domain tree matching the symbolic qname",
        ),
        LayerConfig(
            name="Find",
            function="find",
            route="summarize",
            params=lambda session: [
                FixedValue(session.tree_ptr),
                FixedValue(session.q_ptr),
                SymbolicInt("qtype"),
                ResultStruct("Response"),
            ],
            description="resolution logic: answers, wildcards, referrals, glue, CNAME chase",
        ),
    ]


def library_layers() -> List[Tuple[str, str]]:
    """Stable library layers and how each is discharged.

    Name and NodeStack carry dedicated refinement experiments
    (`repro.spec.namespec`, `tests/refine/test_library_layers.py`); the
    remaining library helpers are small enough that the pipeline inlines
    them, folding their correctness into the top-level Resolve proof."""
    return [
        ("Name", "compare_raw ⊑ name_match under the byte/code relation (spec.namespec)"),
        ("NodeStack", "push/top refinement with a symbolic level field (partial abstraction)"),
        ("RRSet", "inlined; folded into the top-level proof"),
        ("Response", "inlined; appends checked by the top-level response comparison"),
    ]


def toplevel_layer() -> LayerConfig:
    return LayerConfig(
        name="Resolve",
        function="resolve",
        route="toplevel",
        description="whole-engine functional correctness against rrlookup",
    )

"""The one options carrier shared by every verification entry point.

Three PRs of growth left three inconsistent ways to configure a run:
``verify_engine(**kwargs)`` forwarded an opaque kwargs-bag into
:class:`~repro.core.pipeline.VerificationSession`, ``run_campaign`` took a
parallel set of ``budget_seconds``/``budget_fuel`` keywords, and the watch
daemon had its own constructor vocabulary. :class:`VerifyOptions` replaces
all of that: a frozen, JSON-serializable dataclass holding every *plain
data* knob a verification run needs. Live objects (an open
:class:`~repro.incremental.cache.SummaryCache`, a running
:class:`~repro.resilience.Budget`, a custom solver) stay explicit keyword
arguments — they cannot cross a process boundary, which the parallel
executor requires of everything in here.

Because the dataclass is frozen and JSON-round-trippable it can be handed
verbatim to a worker process; :meth:`VerifyOptions.to_json` /
:meth:`VerifyOptions.from_json` are the wire format the
:mod:`repro.parallel` executor ships.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class VerifyOptions:
    """Every plain-data knob of one verification run.

    ``workers=None`` means "sequential, monolithic" — the historical code
    path. Any integer (including 1) opts into the partitioned/pooled
    executor, whose reports are bit-identical across worker counts; the
    distinction exists because the partitioned merge labels layers
    differently from a monolithic session, so ``workers=1`` must take the
    same path as ``workers=8`` for determinism to hold.
    """

    #: Symbolic query depth; None derives it from the zone.
    depth: Optional[int] = None
    #: Executor hard limits (forwarded to the symbolic executor).
    max_paths: int = 200000
    max_steps: int = 20_000_000
    #: ``False`` is the ablation that inlines every layer.
    use_summaries: bool = True
    #: Cooperative budget: wall-clock deadline and/or step fuel. In
    #: parallel mode each worker unit gets a *fresh* budget built from
    #: these, so the bound is per unit rather than per run.
    budget_seconds: Optional[float] = None
    fuel: Optional[int] = None
    #: Persistent cache directory (each worker opens its own handle on it;
    #: entry publication is atomic, so concurrent writers are safe).
    cache_dir: Optional[str] = None
    #: None = sequential; N >= 1 = pooled executor with N processes.
    workers: Optional[int] = None
    #: Fault-plan spec string (see :func:`repro.resilience.faults.parse_spec`).
    #: In parallel mode the spec is re-derived *per unit id* so injection
    #: stays deterministic regardless of worker count or scheduling.
    faults: Optional[str] = None
    #: Campaigns: run the differential smoke test before each proof.
    smoke_first: bool = True
    #: Static analysis: run the panic-pruning pass between compilation and
    #: symbolic execution. ``False`` is the ablation (and escape hatch).
    analysis: bool = True
    #: Debug cross-check: at the first symbolic crossing of each elided
    #: guard, re-ask the solver that the panic side really is infeasible.
    analysis_check: bool = False
    #: Query planner: ``"by-label"`` (one unit per below-apex subtree, the
    #: historical default and reference oracle) or ``"equivalence-class"``
    #: (one unit per behavioural class — O(classes) solver work).
    planner: str = "by-label"

    # -- derivation ---------------------------------------------------------

    def with_(self, **changes) -> "VerifyOptions":
        """A copy with ``changes`` applied (frozen-dataclass ``replace``)."""
        return dataclasses.replace(self, **changes)

    def session_kwargs(self) -> Dict[str, object]:
        """The subset handed to :class:`VerificationSession`."""
        return {
            "depth": self.depth,
            "max_paths": self.max_paths,
            "max_steps": self.max_steps,
            "analysis": self.analysis,
            "analysis_check": self.analysis_check,
        }

    def make_budget(self):
        """A fresh one-unit Budget, or None when unbounded."""
        if self.budget_seconds is None and self.fuel is None:
            return None
        from repro.resilience import Budget

        return Budget(wall_seconds=self.budget_seconds, fuel=self.fuel)

    def make_cache(self):
        """A cache handle on ``cache_dir``, or None when uncached."""
        if self.cache_dir is None:
            return None
        from repro.incremental import SummaryCache

        return SummaryCache(cache_dir=self.cache_dir)

    def make_fault_plan(self):
        """The whole-run fault plan (sequential mode), or None."""
        if self.faults is None:
            return None
        from repro.resilience import faults

        return faults.parse_spec(self.faults)

    # -- wire format --------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "VerifyOptions":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_args(cls, args) -> "VerifyOptions":
        """Build from the CLI's shared runtime flags (absent flags keep
        the dataclass defaults, so every subcommand can use this)."""
        fields = {
            "budget_seconds": getattr(args, "budget_seconds", None),
            "fuel": getattr(args, "fuel", None),
            "cache_dir": getattr(args, "cache", None),
            "workers": getattr(args, "workers", None),
            "faults": getattr(args, "faults", None),
            "planner": getattr(args, "planner", None),
        }
        options = cls(**{k: v for k, v in fields.items() if v is not None})
        if getattr(args, "no_analysis", False):
            options = options.with_(analysis=False)
        if getattr(args, "analysis_check", False):
            options = options.with_(analysis_check=True)
        return options

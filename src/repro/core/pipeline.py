"""The DNS-V verification pipeline (paper Figure 6).

``VerificationSession`` wires one (zone, engine version) pair into the
verifier: the control plane builds the concrete in-heap domain tree and the
flat specification zone, the symbolic query is installed, and the GoPy
modules are compiled to AbsLLVM. ``verify()`` then follows the layered
workflow:

1. summarize the evolving resolution layers bottom-up (each layer's summary
   is bound before the next layer is summarized, so Find is explored on top
   of TreeSearch's summary specification);
2. check ``resolve`` against the top-level specification ``rrlookup`` with
   the nested path-product refinement, which also discharges safety (a
   reachable panic is reported as a runtime-error bug);
3. decode every mismatch model into a concrete query, re-execute the
   engine and the specification *natively* (GoPy is Python), and keep only
   validated divergences as :class:`BugReport`\\ s, classified into the
   paper's Table-2 categories.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import QueryEncoding
from repro.core.layers import LayerConfig, resolution_layers
from repro.dns.message import Query
from repro.dns.zone import Zone
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy import nameops, nodestack, respops
from repro.frontend import compile_module
from repro.ir import Module
from repro.refine import RefinementReport, check_refinement_nested
from repro.resilience import verdicts as verdicts_mod
from repro.resilience.budget import Budget, BudgetExhausted
from repro.spec import toplevel
from repro.solver import Solver
from repro.summary import Summary, summarize
from repro.symex import Executor, HeapLoader, OutOfBudgetError, PathState

# ---------------------------------------------------------------------------
# Compilation cache: GoPy modules compile once per process *per source
# text*. Keys carry the source digest (own plus externs'), so editing a
# version module on disk — the paper's porting workflow — recompiles
# instead of serving stale IR.
# ---------------------------------------------------------------------------

_IR_CACHE: Dict[Tuple, Module] = {}


def clear_ir_cache() -> None:
    """Drop every compiled module (tests and long-running daemons)."""
    _IR_CACHE.clear()


def _compiled(py_module, externs: Sequence[Module] = (),
              analysis: bool = False) -> Module:
    from repro.incremental.digest import source_digest
    from repro.resilience import faults

    faults.maybe_raise(faults.SITE_COMPILE)

    # Externs are already-compiled Modules; identity captures their
    # provenance (a re-compiled base module is a new object, so dependents
    # recompile too). The analysis flag is part of the key because the
    # pruning pass rewrites the module in place — pruned and unpruned IR
    # must never share a cache entry.
    key = (
        py_module.__name__,
        source_digest(py_module),
        tuple((module.name, id(module)) for module in externs),
        analysis,
    )
    cached = _IR_CACHE.get(key)
    if cached is None:
        cached = compile_module(py_module, extern_modules=list(externs))
        if analysis:
            from repro.analysis import prune_module
            from repro.analysis.interproc import (
                compute_summaries,
                summaries_digest,
            )

            # Summaries over the externs (already pruned — the domain
            # reads ElidedGuardBr survive-conditions back) plus this
            # module, bottom-up, so pruning sees facts across calls.
            summaries = compute_summaries(list(externs) + [cached])
            cached.prune_report = prune_module(cached, summaries=summaries)
            cached.summary_digest = summaries_digest(summaries)
        _IR_CACHE[key] = cached
    return cached


def compile_engine_modules(version: str, analysis: bool = False) -> List[Module]:
    """IR modules for one engine version plus the shared layers and the
    top-level specification; ``analysis=True`` runs the panic-pruning
    pass on each module as it is compiled."""
    base = [
        _compiled(nameops, analysis=analysis),
        _compiled(nodestack, analysis=analysis),
        _compiled(respops, analysis=analysis),
    ]
    version_module = control.ENGINE_VERSIONS[version]
    return base + [
        _compiled(version_module, externs=base, analysis=analysis),
        _compiled(toplevel, externs=base, analysis=analysis),
    ]


# ---------------------------------------------------------------------------
# Bug reports
# ---------------------------------------------------------------------------

#: Table-2 classification labels.
WRONG_FLAG = "Wrong Flag"
WRONG_ANSWER = "Wrong Answer"
WRONG_RCODE = "Wrong rcode"
WRONG_AUTHORITY = "Wrong Authority"
WRONG_ADDITIONAL = "Wrong Additional"
RUNTIME_ERROR = "Runtime Error"


@dataclass
class BugReport:
    """One validated divergence between an engine version and the spec."""

    version: str
    categories: Tuple[str, ...]
    query: Optional[Query]
    qname_codes: Tuple[int, ...]
    qtype_code: int
    description: str
    validated: bool
    engine_summary: str = ""
    expected_summary: str = ""

    def describe(self) -> str:
        where = self.query.to_text() if self.query is not None else (
            f"codes={list(self.qname_codes)} qtype={self.qtype_code}"
        )
        cats = ", ".join(self.categories)
        flag = "validated" if self.validated else "UNVALIDATED"
        return f"[{self.version}] {cats} on query {where} ({flag}): {self.description}"


@dataclass
class LayerResult:
    """Per-layer verification record (feeds Figure 12)."""

    name: str
    route: str
    elapsed_seconds: float
    paths: int
    cases: int = 0
    verified: bool = True


@dataclass
class VerificationResult:
    """Outcome of verifying one engine version on one zone.

    ``verdict`` is the typed outcome of the fault-tolerant runtime
    (:mod:`repro.resilience.verdicts`): VERIFIED/BUG coincide with the
    historical ``verified`` flag; UNKNOWN means the proof neither closed
    nor refuted (budget exhaustion, solver give-up — ``unknown_reason``
    says which, ``partial`` holds coverage so far); ERROR means the run
    itself failed (``error_class``/``error_detail`` classify it).
    """

    version: str
    zone_origin: str
    verified: bool
    bugs: List[BugReport] = field(default_factory=list)
    layers: List[LayerResult] = field(default_factory=list)
    refinement: Optional[RefinementReport] = None
    elapsed_seconds: float = 0.0
    solver_checks: int = 0
    spurious_mismatches: int = 0
    cache_stats: Optional[Dict[str, int]] = None
    verdict: str = verdicts_mod.VERIFIED
    unknown_reason: Optional[str] = None
    error_class: Optional[str] = None
    error_detail: str = ""
    partial: Optional[Dict[str, object]] = None
    #: Per-phase wall time (``compile``/``summarize``/``solve``) — feeds
    #: the parallel executor's perf counters and the ``--json`` output.
    #: Timing-only: never part of any canonical/deterministic projection.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Static-analysis accounting (None when the run predates the pass):
    #: ``enabled``, the static prune counts (``guards_total``/
    #: ``guards_pruned``/``panic_blocks_removed``) and the runtime counters
    #: (``panic_guard_checks``, ``pruned_guard_hits``,
    #: ``solver_checks_avoided``). Counter-only — like ``solver_checks``,
    #: never part of canonical verdict comparisons.
    analysis: Optional[Dict[str, object]] = None

    def bug_categories(self) -> List[str]:
        seen = []
        for bug in self.bugs:
            for category in bug.categories:
                if category not in seen:
                    seen.append(category)
        return seen

    def describe(self) -> str:
        if self.verdict == verdicts_mod.UNKNOWN:
            status = f"UNKNOWN ({self.unknown_reason})"
        elif self.verdict == verdicts_mod.ERROR:
            status = f"ERROR ({self.error_class}: {self.error_detail})"
        elif self.verified:
            status = "VERIFIED"
        else:
            status = f"{len(self.bugs)} bug(s) found"
        lines = [
            f"DNS-V {self.version} on {self.zone_origin}: {status} "
            f"({self.elapsed_seconds:.1f}s, {self.solver_checks} solver checks)"
        ]
        for layer in self.layers:
            lines.append(
                f"  layer {layer.name:<12} [{layer.route}] "
                f"{layer.elapsed_seconds:6.2f}s  {layer.paths} paths"
                + (f", {layer.cases} summary cases" if layer.cases else "")
            )
        if self.partial:
            coverage = ", ".join(
                f"{key}={value}" for key, value in sorted(self.partial.items())
            )
            lines.append(f"  partial coverage: {coverage}")
        for bug in self.bugs:
            lines.append("  " + bug.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class VerificationSession:
    """One (zone, engine version) verification setup."""

    def __init__(
        self,
        zone: Zone,
        version: str = "verified",
        depth: Optional[int] = None,
        solver: Optional[Solver] = None,
        max_paths: int = 200000,
        max_steps: int = 20_000_000,
        cache=None,
        budget: Optional[Budget] = None,
        analysis: bool = True,
        analysis_check: bool = False,
    ):
        self.zone = zone
        self.version = version
        self.cache = cache  # Optional[repro.incremental.cache.SummaryCache]
        self.budget = budget
        if budget is not None:
            budget.start()
        self._layer_routes: Dict[str, str] = {}
        self.analysis_enabled = analysis
        self.encoder = ZoneEncoder(zone)
        self.tree_go = control.build_domain_tree(self.encoder)
        self.flat_go = control.build_flat_zone(self.encoder)
        compile_started = time.perf_counter()
        modules = compile_engine_modules(version, analysis=analysis)
        self.compile_seconds = time.perf_counter() - compile_started
        self.prune_report = None
        self.summary_digest: Optional[str] = None
        if analysis:
            import hashlib

            from repro.analysis import PruneReport

            self.prune_report = PruneReport()
            digests = []
            for module in modules:
                module_report = getattr(module, "prune_report", None)
                if module_report is not None:
                    self.prune_report.merge(module_report)
                digests.append(getattr(module, "summary_digest", ""))
            # One digest over the whole module set's summary tables; rides
            # the cache keys and the result telemetry.
            self.summary_digest = hashlib.sha256(
                "|".join(digests).encode()
            ).hexdigest()
        self.executor = Executor(
            modules,
            solver=solver,
            max_paths=max_paths,
            max_steps=max_steps,
            budget=budget,
            analysis_check=analysis_check,
        )
        self.state = PathState()
        loader = HeapLoader(self.state.memory)
        self.tree_ptr = loader.load(self.tree_go)
        self.flat_ptr = loader.load(self.flat_go)
        self.query_encoding = QueryEncoding(self.encoder, depth)
        self.q_ptr = self.query_encoding.install(self.state)
        self.pre = self.query_encoding.preconditions()
        self.engine_resp_ptr = self.executor.new_object(self.state, "Response")
        self.spec_resp_ptr = self.executor.new_object(self.state, "Response")

    # -- restriction and cache keys --------------------------------------------

    def restrict(self, extra_pre: Sequence) -> None:
        """Conjoin extra constraints onto the global precondition (the
        incremental engine confines a session to one query-space
        partition this way). Call before any summarization."""
        self.pre = self.pre + list(extra_pre)

    def _cache_key_base(self) -> Dict[str, object]:
        from repro.incremental.digest import (
            digest_text,
            engine_digest,
            layers_digest,
            zone_digest,
        )

        return {
            "engine": engine_digest(self.version),
            "layers": layers_digest(),
            "zone": zone_digest(self.zone),
            "depth": self.query_encoding.depth,
            "pre": digest_text(*[repr(f) for f in self.pre]),
            # Pruned and unpruned runs produce identical verdicts but
            # different counters; keying keeps each config's entries
            # internally consistent. The summary digest folds in the
            # interprocedural tables (and their schema version), so a
            # domain change invalidates entries built on old proofs.
            "analysis": (
                f"on:{self.summary_digest}" if self.analysis_enabled
                else "off"
            ),
        }

    # -- layered verification --------------------------------------------------

    def summarize_layer(self, layer: LayerConfig) -> Summary:
        summary = None
        key = None
        if self.cache is not None:
            from repro.incremental.serialize import (
                SerializationError,
                summary_from_json,
            )

            key = dict(self._cache_key_base(), function=layer.function)
            payload = self.cache.get("summary", key)
            if payload is not None:
                try:
                    summary = summary_from_json(payload, layer.params(self))
                    self._layer_routes[layer.function] = "cache"
                except (SerializationError, KeyError, TypeError):
                    summary = None
        if summary is None:
            summary = summarize(
                self.executor,
                layer.function,
                layer.params(self),
                state=self.state,
                pre=self.pre,
            )
            self._layer_routes[layer.function] = "summarize"
            if self.cache is not None:
                from repro.incremental.serialize import (
                    SerializationError,
                    summary_to_json,
                )

                try:
                    self.cache.put("summary", key, summary_to_json(summary))
                except SerializationError:
                    pass
        self.executor.bindings.bind_summary(layer.function, summary)
        return summary

    def verify(self, use_summaries: bool = True) -> VerificationResult:
        """Run the full pipeline; ``use_summaries=False`` is the ablation
        that inlines every layer (monolithic symbolic execution).

        Every outcome is a typed verdict: budget/path/step exhaustion is
        caught here and returned as ``UNKNOWN(reason)`` with partial
        coverage — never raised — so a campaign or partition loop simply
        continues with the next unit.
        """
        started = time.perf_counter()
        solver = self.executor.solver
        checks_before = solver.num_checks
        prepass_checks_before = getattr(solver, "guard_prepass_checks", 0)
        prepass_unsat_before = getattr(solver, "guard_prepass_unsat", 0)
        stats = self.executor.stats
        guard_checks_before = stats.panic_guard_checks
        guard_hits_before = stats.pruned_guard_hits
        avoided_before = stats.pruned_checks_avoided
        by_fn_before = dict(stats.guard_checks_by_function)
        hits_by_fn_before = dict(stats.pruned_hits_by_function)
        result = VerificationResult(self.version, self.zone.origin.to_text(), True)
        try:
            self._verify_into(result, use_summaries)
        except BudgetExhausted as exc:
            self._mark_unknown(result, exc.reason, str(exc))
        except OutOfBudgetError as exc:
            self._mark_unknown(result, _exhaustion_reason(exc), str(exc))
        result.elapsed_seconds = time.perf_counter() - started
        result.solver_checks = self.executor.solver.num_checks - checks_before
        result.analysis = {
            "enabled": self.analysis_enabled,
            "panic_guard_checks": stats.panic_guard_checks - guard_checks_before,
            "pruned_guard_hits": stats.pruned_guard_hits - guard_hits_before,
            "solver_checks_avoided": stats.pruned_checks_avoided - avoided_before,
            "guard_prepass_checks": (
                getattr(solver, "guard_prepass_checks", 0)
                - prepass_checks_before
            ),
            "guard_prepass_unsat": (
                getattr(solver, "guard_prepass_unsat", 0)
                - prepass_unsat_before
            ),
            # Per-function residual guard checks and pruned crossings —
            # what makes a discharge regression attributable.
            "guard_checks_by_function": _dict_delta(
                stats.guard_checks_by_function, by_fn_before
            ),
            "pruned_hits_by_function": _dict_delta(
                stats.pruned_hits_by_function, hits_by_fn_before
            ),
        }
        if self.summary_digest is not None:
            result.analysis["summary_digest"] = self.summary_digest
        if self.prune_report is not None:
            result.analysis.update(
                guards_total=self.prune_report.guards_total,
                guards_pruned=self.prune_report.guards_pruned,
                panic_blocks_removed=self.prune_report.panic_blocks_removed,
            )
        result.phase_seconds = {
            "compile": round(self.compile_seconds, 6),
            "summarize": round(
                sum(l.elapsed_seconds for l in result.layers
                    if l.name != "Resolve"), 6,
            ),
            "solve": round(
                sum(l.elapsed_seconds for l in result.layers
                    if l.name == "Resolve"), 6,
            ),
        }
        if self.cache is not None:
            result.cache_stats = self.cache.stats()
        return result

    def _mark_unknown(self, result: VerificationResult, reason: str,
                      detail: str) -> None:
        """Typed degradation: record what ran out plus coverage so far."""
        result.verified = False
        result.verdict = verdicts_mod.UNKNOWN
        result.unknown_reason = reason
        stats = self.executor.stats
        result.partial = {
            "steps": stats.steps,
            "forks": stats.forks,
            "paths": stats.paths,
            "layers_done": len(result.layers),
            "detail": detail,
        }
        if self.budget is not None:
            result.partial["budget"] = self.budget.snapshot()

    def _verify_into(self, result: VerificationResult,
                     use_summaries: bool) -> None:
        report = None
        report_key = None
        if self.cache is not None:
            from repro.incremental.serialize import report_from_json

            report_key = dict(
                self._cache_key_base(),
                code="resolve",
                spec="rrlookup",
                use_summaries=use_summaries,
            )
            payload = self.cache.get("refinement", report_key)
            if payload is not None:
                try:
                    report = report_from_json(payload)
                except (KeyError, TypeError):
                    report = None

        if report is not None:
            # Same zone content, engine and preconditions: replay the stored
            # mismatch models through the normal decode/validate path below
            # without re-running summarization or the refinement check.
            result.layers.append(
                LayerResult(
                    "Resolve", "cache", 0.0, report.code_paths,
                    verified=report.verified,
                )
            )
        else:
            if use_summaries:
                for layer in resolution_layers():
                    summary = self.summarize_layer(layer)
                    result.layers.append(
                        LayerResult(
                            layer.name,
                            self._layer_routes.get(layer.function, "summarize"),
                            summary.elapsed_seconds,
                            summary.paths_explored,
                            cases=len(summary.cases),
                        )
                    )

            top_started = time.perf_counter()
            report = check_refinement_nested(
                self.executor,
                "resolve",
                "rrlookup",
                [self.tree_ptr, self.q_ptr, self.query_encoding.qtype, self.engine_resp_ptr],
                [self.flat_ptr, self.q_ptr, self.query_encoding.qtype, self.spec_resp_ptr],
                state=self.state,
                pre=self.pre,
                observe_code=lambda outcome: self.engine_resp_ptr,
                observe_spec=lambda outcome: self.spec_resp_ptr,
            )
            result.layers.append(
                LayerResult(
                    "Resolve",
                    "toplevel",
                    time.perf_counter() - top_started,
                    report.code_paths,
                    verified=report.verified,
                )
            )
            if self.cache is not None and not report.unknowns:
                # An UNKNOWN-tainted report reflects a budget/solver limit,
                # not zone content; caching it would pin the give-up past
                # runs with roomier budgets.
                from repro.incremental.serialize import report_to_json

                self.cache.put("refinement", report_key, report_to_json(report))
        result.refinement = report

        for mismatch in report.mismatches:
            bug = self._decode_mismatch(mismatch)
            if bug is None:
                result.spurious_mismatches += 1
                continue
            result.bugs.append(bug)
        result.verified = report.verified and not result.bugs
        # A mismatch that failed validation still refutes the proof.
        if report.mismatches and not result.bugs:
            result.verified = False

        # Typed verdict: validated bugs refute; otherwise any solver
        # give-up or unvalidated mismatch leaves the proof open (UNKNOWN),
        # never silently dropped.
        if any(b.validated for b in result.bugs):
            result.verdict = verdicts_mod.BUG
        elif report.unknowns or report.mismatches:
            # Mismatches survive here only unvalidated (a modelless
            # solver give-up, or a counterexample native re-execution
            # could not reproduce): the proof is open, not refuted.
            result.verdict = verdicts_mod.UNKNOWN
            solverish = report.unknowns or any(
                b.query is None for b in result.bugs if not b.validated
            )
            result.unknown_reason = (
                verdicts_mod.REASON_SOLVER if solverish
                else verdicts_mod.REASON_UNVALIDATED
            )
        else:
            result.verdict = verdicts_mod.VERIFIED

    # -- counterexample decoding and validation ---------------------------------

    def _decode_mismatch(self, mismatch) -> Optional[BugReport]:
        model = mismatch.model
        if model is None:
            return BugReport(
                self.version,
                (RUNTIME_ERROR if mismatch.kind == "code-panic" else WRONG_ANSWER,),
                None,
                (),
                0,
                f"unverified mismatch ({mismatch.kind}); solver returned unknown",
                validated=False,
            )
        codes = tuple(self.query_encoding.query_codes(model))
        qtype_code = self.query_encoding.qtype_code(model)
        query = self.query_encoding.decode_query(model)

        if mismatch.kind == "code-panic":
            validated, detail = self._validate_panic(codes, qtype_code)
            return BugReport(
                self.version,
                (RUNTIME_ERROR,),
                query,
                codes,
                qtype_code,
                f"{mismatch.observation}; native re-execution: {detail}",
                validated=validated,
            )

        engine_resp, engine_error = self._native_engine(codes, qtype_code)
        spec_resp, _ = self._native_spec(codes, qtype_code)
        if engine_error is not None:
            return BugReport(
                self.version,
                (RUNTIME_ERROR,),
                query,
                codes,
                qtype_code,
                f"engine crashed natively: {engine_error}",
                validated=True,
            )
        categories, diffs = classify_divergence(engine_resp, spec_resp)
        if not categories:
            return None  # spurious (e.g. record-order-only difference)
        return BugReport(
            self.version,
            tuple(categories),
            query,
            codes,
            qtype_code,
            "; ".join(diffs[:4]),
            validated=True,
            engine_summary=_summarise_response(engine_resp),
            expected_summary=_summarise_response(spec_resp),
        )

    def _native_engine(self, codes, qtype_code):
        try:
            resp = control.run_engine_concrete(
                control.ENGINE_VERSIONS[self.version], self.tree_go, list(codes), qtype_code
            )
            return resp, None
        except (IndexError, AttributeError, TypeError) as exc:
            return None, f"{type(exc).__name__}: {exc}"

    def _native_spec(self, codes, qtype_code):
        from repro.engine.gopy.structs import Response as GoResponse

        resp = GoResponse()
        toplevel.rrlookup(self.flat_go, list(codes), qtype_code, resp)
        return resp, None

    def _validate_panic(self, codes, qtype_code):
        _, error = self._native_engine(codes, qtype_code)
        if error is not None:
            return True, error
        return False, "no native crash reproduced"


def _dict_delta(now: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """Per-key counter deltas, dropping keys that did not move."""
    return {
        key: value - before.get(key, 0)
        for key, value in sorted(now.items())
        if value - before.get(key, 0)
    }


def _exhaustion_reason(exc: OutOfBudgetError) -> str:
    """Map the executor's own hard limits onto the UNKNOWN taxonomy."""
    text = str(exc)
    if "path budget" in text:
        return verdicts_mod.REASON_PATHS
    if "call depth" in text:
        return verdicts_mod.REASON_DEPTH
    return verdicts_mod.REASON_STEPS


# ---------------------------------------------------------------------------
# Divergence classification (Table 2 vocabulary)
# ---------------------------------------------------------------------------


def _section_multiset(records):
    return sorted((tuple(r.rname), r.rtype, r.rdata_id) for r in records)


def classify_divergence(engine_resp, spec_resp) -> Tuple[List[str], List[str]]:
    """Compare two native responses semantically; return Table-2 category
    labels and human-readable differences."""
    categories: List[str] = []
    diffs: List[str] = []
    if engine_resp.rcode != spec_resp.rcode:
        categories.append(WRONG_RCODE)
        diffs.append(f"rcode {engine_resp.rcode} != expected {spec_resp.rcode}")
    if engine_resp.aa != spec_resp.aa:
        categories.append(WRONG_FLAG)
        diffs.append(f"aa {engine_resp.aa} != expected {spec_resp.aa}")
    for section, label in (
        ("answer", WRONG_ANSWER),
        ("authority", WRONG_AUTHORITY),
        ("additional", WRONG_ADDITIONAL),
    ):
        got = _section_multiset(getattr(engine_resp, section))
        want = _section_multiset(getattr(spec_resp, section))
        if got != want:
            categories.append(label)
            missing = len([r for r in want if r not in got])
            extra = len([r for r in got if r not in want])
            diffs.append(f"{section}: {missing} missing, {extra} extraneous")
    return categories, diffs


def _summarise_response(resp) -> str:
    return (
        f"rcode={resp.rcode} aa={int(resp.aa)} "
        f"ans={len(resp.answer)} auth={len(resp.authority)} add={len(resp.additional)}"
    )


#: Legacy kwargs-bag keys verify_engine still maps onto VerifyOptions.
_LEGACY_OPTION_KWARGS = frozenset({"depth", "max_paths", "max_steps"})
_legacy_kwargs_warned = False


def verify_engine(
    zone: Zone,
    version: str = "verified",
    options=None,
    *,
    cache=None,
    budget: Optional[Budget] = None,
    solver: Optional[Solver] = None,
    **legacy_kwargs,
) -> VerificationResult:
    """One-call convenience API: verify ``version`` on ``zone``.

    Configuration travels in ``options``
    (:class:`repro.core.options.VerifyOptions`); live objects — an open
    ``cache``, a running ``budget``, a custom ``solver`` — stay explicit
    keyword arguments. When ``options.workers`` is set the run goes
    through the partitioned pooled executor (:mod:`repro.parallel`),
    whose merged result is deterministic across worker counts.

    The pre-``VerifyOptions`` kwargs-bag (``depth=``/``max_paths=``/
    ``max_steps=`` passed directly) still works but warns once per
    process; pass ``options=VerifyOptions(...)`` instead.
    """
    from repro.core.options import VerifyOptions

    global _legacy_kwargs_warned
    if legacy_kwargs:
        unknown = set(legacy_kwargs) - _LEGACY_OPTION_KWARGS
        if unknown:
            raise TypeError(
                f"verify_engine() got unexpected keyword argument(s) "
                f"{sorted(unknown)}; pass options=VerifyOptions(...)"
            )
        if not _legacy_kwargs_warned:
            import warnings

            warnings.warn(
                "passing verification knobs as **kwargs is deprecated; "
                "use verify_engine(zone, version, options=VerifyOptions(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            _legacy_kwargs_warned = True
        options = (options or VerifyOptions()).with_(**legacy_kwargs)
    if options is None:
        options = VerifyOptions()
    if cache is None:
        cache = options.make_cache()
    if options.workers is not None:
        from repro.parallel import verify_partitioned

        return verify_partitioned(zone, version, options=options, cache=cache)
    if options.planner not in (None, "by-label"):
        # Non-default planners are inherently unit-based: route the
        # sequential run through the incremental engine, which plans,
        # verifies and merges per unit (same merge the pooled path uses).
        from repro.incremental.engine import IncrementalVerifier

        verifier = IncrementalVerifier(
            zone,
            version,
            cache=cache,
            depth=options.depth,
            options=options,
            max_paths=options.max_paths,
            max_steps=options.max_steps,
        )
        outcome = verifier.verify_current()
        result = outcome.result
        if result.cache_stats is None:
            result.cache_stats = outcome.reuse.cache
        return result
    if budget is None:
        budget = options.make_budget()
    session = VerificationSession(
        zone,
        version,
        solver=solver,
        cache=cache,
        budget=budget,
        **options.session_kwargs(),
    )
    return session.verify(use_summaries=options.use_summaries)

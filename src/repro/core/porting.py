"""Porting-cost analysis (paper Table 3).

The paper measures what a developer touches when carrying the verification
from one engine version to the next: the implementation itself, the
dependency-layer specifications, the interface configuration, the top-level
specification, and the safety property. This module measures the same five
artifacts in this repository — real line counts of the real files — and the
line-level churn between version pairs.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core import layers as layers_module
from repro.engine import control
from repro.engine.gopy import nameops, nodestack, respops, structs
from repro.spec import namespec, toplevel


def _source_lines(module) -> List[str]:
    return inspect.getsource(module).splitlines()


def count_loc(module) -> int:
    """Non-blank, non-comment source lines."""
    count = 0
    for line in _source_lines(module):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def changed_loc(module_a, module_b) -> int:
    """Lines added or removed between two modules (unified-diff churn)."""
    diff = difflib.unified_diff(
        _source_lines(module_a), _source_lines(module_b), lineterm=""
    )
    changes = 0
    for line in diff:
        if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
            if line[1:].strip():
                changes += 1
    return changes


#: The five Table-3 artifact rows and the modules realising each.
ARTIFACTS = {
    "implementation": None,  # per version
    "dependency specification": [nameops, nodestack, respops, structs, namespec],
    "interface configuration": [layers_module],
    "top-level specification": [toplevel],
    "safety property": None,  # a single reused predicate (panic unreachability)
}


@dataclass
class PortingRow:
    artifact: str
    loc: int
    changed: int


@dataclass
class PortingReport:
    """Table 3: absolute cost at ``base_version`` and churn porting to
    ``next_version``."""

    base_version: str
    next_version: str
    rows: List[PortingRow]

    def describe(self) -> str:
        header = (
            f"{'lines of code:':<28} {self.base_version:>8}   "
            f"changes {self.base_version} -> {self.next_version}"
        )
        lines = [header]
        for row in self.rows:
            lines.append(f"{row.artifact:<28} {row.loc:>8}   {row.changed:>8}")
        return "\n".join(lines)


def porting_report(base_version: str = "v2.0", next_version: str = "v3.0") -> PortingReport:
    """Compute the Table-3 analogue for a version pair."""
    base_module = control.ENGINE_VERSIONS[base_version]
    next_module = control.ENGINE_VERSIONS[next_version]

    rows = [
        PortingRow(
            "implementation",
            count_loc(base_module),
            changed_loc(base_module, next_module),
        ),
        PortingRow(
            "dependency specification",
            sum(count_loc(m) for m in ARTIFACTS["dependency specification"]),
            0,  # stable across versions by design (section 6.2)
        ),
        PortingRow(
            "interface configuration",
            count_loc(layers_module),
            0,  # layer interfaces did not change between these versions
        ),
        PortingRow(
            "top-level specification",
            count_loc(toplevel),
            _toplevel_changed(next_version),
        ),
        PortingRow("safety property", 1, 0),
    ]
    return PortingReport(base_version, next_version, rows)


def _toplevel_changed(next_version: str) -> int:
    """Top-level-spec churn introduced by a version's features.

    Only the v4.0 ALIAS feature required a spec adaptation (the paper's
    "specifications of custom features are relatively short and simple");
    measure it as the real size of the alias-specific clauses."""
    if next_version != "v4.0":
        return 0
    from repro.spec.toplevel import spec_flatten_alias, spec_get_alias

    lines = 0
    for function in (spec_get_alias, spec_flatten_alias):
        for line in inspect.getsource(function).splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                lines += 1
    return lines + 4  # plus the dispatch clause inside spec_lookup


def version_loc_table() -> Dict[str, Tuple[int, int]]:
    """(LoC, churn-from-previous) per engine version, in release order."""
    order = ["v1.0", "v2.0", "v3.0", "dev", "verified", "v4.0"]
    out: Dict[str, Tuple[int, int]] = {}
    previous = None
    for version in order:
        module = control.ENGINE_VERSIONS[version]
        churn = changed_loc(previous, module) if previous is not None else 0
        out[version] = (count_loc(module), churn)
        previous = module
    return out

"""DNS domain model substrate.

This subpackage implements the DNS concepts that the paper's section 2
introduces and that every other layer builds on: domain names with their
canonical ordering, resource records and RRsets, zones with a textual
zone-file format, query/response messages, and an order-preserving label
interner that realises the paper's integer encoding of labels (sections 5.4
and 6.3).

Nothing in here is symbolic; this is the concrete ground truth shared by the
production-style engine (:mod:`repro.engine`), the top-level specification
(:mod:`repro.spec`) and the verification pipeline (:mod:`repro.core`).
"""

from repro.dns.name import DnsName, NameError_, MAX_LABEL_LENGTH, MAX_NAME_DEPTH
from repro.dns.rtypes import RRType, RCode, DNSClass
from repro.dns.rdata import (
    Rdata,
    ALIASRdata,
    ARdata,
    AAAARdata,
    NSRdata,
    CNAMERdata,
    SOARdata,
    MXRdata,
    TXTRdata,
    SRVRdata,
    PTRRdata,
    CAARdata,
    rdata_from_text,
)
from repro.dns.records import ResourceRecord, RRset, group_rrsets
from repro.dns.zone import Zone, ZoneValidationError
from repro.dns.zonefile import parse_zone_text, zone_to_text, ZoneParseError
from repro.dns.message import Query, Response, response_diff
from repro.dns.interner import LabelInterner, LABEL_SPACING

__all__ = [
    "DnsName",
    "NameError_",
    "MAX_LABEL_LENGTH",
    "MAX_NAME_DEPTH",
    "RRType",
    "RCode",
    "DNSClass",
    "Rdata",
    "ALIASRdata",
    "ARdata",
    "AAAARdata",
    "NSRdata",
    "CNAMERdata",
    "SOARdata",
    "MXRdata",
    "TXTRdata",
    "SRVRdata",
    "PTRRdata",
    "CAARdata",
    "rdata_from_text",
    "ResourceRecord",
    "RRset",
    "group_rrsets",
    "Zone",
    "ZoneValidationError",
    "parse_zone_text",
    "zone_to_text",
    "ZoneParseError",
    "Query",
    "Response",
    "response_diff",
    "LabelInterner",
    "LABEL_SPACING",
]

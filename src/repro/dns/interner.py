"""Order-preserving label interning.

Section 6.3 of the paper maps domain-name labels to integers so that the
abstract name comparison (``compareAbs``, Figure 10) reduces to linear
integer arithmetic, the only theory the automated reasoning needs. Two
properties make the mapping usable:

1. **Order preservation.** The integer order of codes equals the canonical
   (byte-wise, case-folded) order of labels, so the engine's left/right
   domain-tree walk translates to ``<`` / ``>`` on codes.
2. **Gap decodability.** Codes are spaced out so that a solver model that
   lands *between* two interned codes can be decoded back into a fresh
   concrete label lying strictly between the two neighbouring labels. This
   is how a symbolic counterexample becomes a concrete, runnable query even
   when it requires a qname label that appears nowhere in the zone.

The wildcard label ``*`` always interns to the smallest code (it sorts below
every legal hostname character), so queries naming the wildcard literally
remain expressible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.name import DnsName, MAX_LABEL_LENGTH

#: Distance between consecutive interned codes. Large enough that random
#: models rarely exhaust a gap's decodable labels.
LABEL_SPACING = 1 << 16

#: The code of the wildcard label '*'.
WILDCARD_CODE = 1

_CANDIDATE_CHARS = "0123456789abcdefghijklmnopqrstuvwxyz"


class LabelInterner:
    """Bidirectional, order-preserving label/integer mapping for one zone."""

    def __init__(self, labels: Iterable[str]):
        universe = sorted({lab.lower() for lab in labels} - {"*"})
        self._labels: Tuple[str, ...] = tuple(universe)
        self._code_of: Dict[str, int] = {"*": WILDCARD_CODE}
        self._label_of: Dict[int, str] = {WILDCARD_CODE: "*"}
        for rank, label in enumerate(self._labels):
            code = (rank + 1) * LABEL_SPACING
            self._code_of[label] = code
            self._label_of[code] = label

    @classmethod
    def for_zone(cls, zone) -> "LabelInterner":
        """Interner over every label the zone mentions (owner names and
        rdata-embedded names)."""
        return cls(zone.label_universe())

    # -- basic mapping ------------------------------------------------------

    @property
    def universe(self) -> Tuple[str, ...]:
        return self._labels

    @property
    def min_code(self) -> int:
        return WILDCARD_CODE

    @property
    def max_code(self) -> int:
        """Largest valid code; values above the last interned label remain
        decodable up to this bound."""
        return (len(self._labels) + 1) * LABEL_SPACING - 1

    def has(self, label: str) -> bool:
        return label.lower() in self._code_of

    def code(self, label: str) -> int:
        try:
            return self._code_of[label.lower()]
        except KeyError:
            raise KeyError(f"label {label!r} not interned") from None

    def interned_codes(self) -> List[int]:
        return sorted(self._label_of)

    # -- decoding, including gap values --------------------------------------

    def decode(self, code: int) -> Optional[str]:
        """Turn any code in ``[min_code, max_code]`` into a concrete label.

        Interned codes map back exactly; gap codes synthesise a fresh label
        lying strictly between the neighbouring interned labels (and strictly
        ordered against them byte-wise), preserving the model's ordering
        facts. Returns None when the gap admits no legal label (callers
        then re-solve with the offending value excluded).
        """
        if code in self._label_of:
            return self._label_of[code]
        if code < self.min_code or code > self.max_code:
            return None
        rank = code // LABEL_SPACING  # 0 => below first label, n => above last
        lo = self._labels[rank - 1] if rank >= 1 else None
        hi = self._labels[rank] if rank < len(self._labels) else None
        if rank == 0:
            # Between '*' and the first interned label.
            lo = None
        return _label_between(lo, hi)

    # -- whole names ----------------------------------------------------------

    def encode_name(self, name: DnsName) -> Tuple[int, ...]:
        """Codes of the name's labels in significance order (Figure 10's
        reversed representation: ``www.example.com.`` ->
        ``(code(com), code(example), code(www))``)."""
        return tuple(self.code(lab) for lab in name.reversed_labels)

    def decode_name(self, codes: Iterable[int]) -> Optional[DnsName]:
        """Inverse of :meth:`encode_name`, accepting gap codes."""
        reversed_labels: List[str] = []
        for code in codes:
            label = self.decode(code)
            if label is None:
                return None
            reversed_labels.append(label)
        return DnsName(tuple(reversed(reversed_labels)))

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"LabelInterner({len(self._labels)} labels, spacing {LABEL_SPACING})"


def _label_between(lo: Optional[str], hi: Optional[str]) -> Optional[str]:
    """A legal label strictly between ``lo`` and ``hi`` byte-wise (None
    bounds are open)."""
    if lo is None:
        # "0" is the smallest legal label; nothing legal sorts below it.
        if hi is None or "0" < hi:
            return "0"
        return None

    # lo given: extensions of lo sort just above lo. lo+"0" is the smallest
    # clean extension; if hi blocks it, descend through '-' runs which sort
    # below any digit/letter continuation.
    for suffix_base in ("", "-", "--", "---", "----"):
        for ch in _CANDIDATE_CHARS:
            candidate = lo + suffix_base + ch
            if len(candidate) > MAX_LABEL_LENGTH:
                return None
            if candidate > lo and (hi is None or candidate < hi):
                return candidate
    return None

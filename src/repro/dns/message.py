"""DNS query and response messages.

Mirrors section 2 of the paper: a query is (qname, qtype); a response
carries an rcode, the authoritative-answer flag, and the answer / authority /
additional sections. Responses compare section-wise with record order
ignored, which is the equality the top-level specification is checked
against (record ordering within a section is not semantically meaningful
for the properties DNS-V verifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dns.name import DnsName
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RCode, RRType


@dataclass(frozen=True)
class Query:
    """A one-shot DNS question."""

    qname: DnsName
    qtype: RRType

    def to_text(self) -> str:
        return f"{self.qname.to_text()} {self.qtype.name}"


def _canonical(records: Tuple[ResourceRecord, ...]) -> Tuple[Tuple, ...]:
    return tuple(sorted(rec.sort_key() for rec in records))


@dataclass(frozen=True)
class Response:
    """A DNS response as the engine and specification both produce it.

    TTLs are carried but excluded from equality: the paper's functional
    correctness property concerns which records appear where, the rcode and
    the AA flag.
    """

    query: Query
    rcode: RCode
    aa: bool
    answer: Tuple[ResourceRecord, ...] = field(default_factory=tuple)
    authority: Tuple[ResourceRecord, ...] = field(default_factory=tuple)
    additional: Tuple[ResourceRecord, ...] = field(default_factory=tuple)
    #: RFC 1035 4.2.1 truncation: set on the empty reply an overloaded
    #: server sends over UDP to push the client onto TCP. A transport
    #: artifact, not an engine output — excluded from semantic equality.
    tc: bool = False

    def semantic_key(self) -> Tuple:
        return (
            self.query.qname,
            self.query.qtype,
            self.rcode,
            self.aa,
            _canonical(self.answer),
            _canonical(self.authority),
            _canonical(self.additional),
        )

    def semantically_equal(self, other: "Response") -> bool:
        return self.semantic_key() == other.semantic_key()

    def to_text(self) -> str:
        lines = [
            f";; query: {self.query.to_text()}",
            f";; rcode: {self.rcode.name}  aa: {int(self.aa)}",
        ]
        for title, section in (
            ("ANSWER", self.answer),
            ("AUTHORITY", self.authority),
            ("ADDITIONAL", self.additional),
        ):
            lines.append(f";; {title} ({len(section)}):")
            for rec in sorted(section, key=lambda r: r.sort_key()):
                lines.append(f"  {rec.to_text()}")
        return "\n".join(lines)


def response_diff(got: Response, want: Response) -> List[str]:
    """Human-readable differences between two responses (empty if
    semantically equal). Used by the differential tester and by bug reports
    to explain counterexamples."""
    diffs: List[str] = []
    if got.query != want.query:
        diffs.append(f"query differs: {got.query.to_text()} vs {want.query.to_text()}")
    if got.rcode is not want.rcode:
        diffs.append(f"rcode: got {got.rcode.name}, want {want.rcode.name}")
    if got.aa != want.aa:
        diffs.append(f"aa flag: got {int(got.aa)}, want {int(want.aa)}")
    for title, got_sec, want_sec in (
        ("answer", got.answer, want.answer),
        ("authority", got.authority, want.authority),
        ("additional", got.additional, want.additional),
    ):
        got_set = {rec.sort_key(): rec for rec in got_sec}
        want_set = {rec.sort_key(): rec for rec in want_sec}
        for key in sorted(set(want_set) - set(got_set)):
            diffs.append(f"{title}: missing {want_set[key].to_text()}")
        for key in sorted(set(got_set) - set(want_set)):
            diffs.append(f"{title}: extraneous {got_set[key].to_text()}")
    return diffs

"""Domain names.

A domain name is a sequence of labels (section 2 of the paper). The
production engine represents names as raw bytes for performance (Figure 4);
the specification layer represents them as reversed lists of interned label
integers (Figure 10). This module provides the shared concrete
representation both views are derived from.

Names here are always *absolute* (relative names are resolved against the
zone origin at parse time) and stored lowercase, since DNS name comparison is
case-insensitive (RFC 1035 section 2.3.3).
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, Iterator, Optional, Tuple

#: Maximum number of characters in one label (RFC 1035 section 2.3.4; the
#: paper's section 6.3 relies on this bound to map labels to integers).
MAX_LABEL_LENGTH = 63

#: Maximum number of labels we allow in a name. Real DNS bounds the wire
#: form to 255 octets; the verification encoding (section 5.4) only needs
#: *some* finite bound, and the pipeline further tightens it per zone.
MAX_NAME_DEPTH = 32

_LABEL_RE = re.compile(r"^(\*|[a-z0-9_]([a-z0-9_-]*[a-z0-9_])?)$")


class NameError_(ValueError):
    """Raised for malformed domain names.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`NameError`.
    """


def _check_label(label: str) -> str:
    lowered = label.lower()
    if not lowered:
        raise NameError_("empty label")
    if len(lowered) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(lowered)} > {MAX_LABEL_LENGTH}): {lowered!r}")
    if not _LABEL_RE.match(lowered):
        raise NameError_(f"invalid label: {label!r}")
    return lowered


@total_ordering
class DnsName:
    """An absolute domain name as an immutable tuple of labels.

    ``DnsName(("www", "example", "com"))`` is ``www.example.com.``; the root
    name is the empty tuple. Ordering is the canonical DNS ordering of
    RFC 4034 section 6.1: names compare by label starting from the rightmost
    (most significant) label, each label byte-wise, with a missing label
    sorting first. This is exactly the order the engine's domain tree and the
    label interner rely on.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[str] = ()):
        self._labels: Tuple[str, ...] = tuple(_check_label(lab) for lab in labels)
        if len(self._labels) > MAX_NAME_DEPTH:
            raise NameError_(f"name too deep ({len(self._labels)} labels)")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_text(cls, text: str, origin: Optional["DnsName"] = None) -> "DnsName":
        """Parse dotted text. ``"@"`` denotes the origin; a name without a
        trailing dot is relative to ``origin`` (if given)."""
        text = text.strip()
        if text in (".", ""):
            return cls(())
        if text == "@":
            if origin is None:
                raise NameError_("'@' used without an origin")
            return origin
        absolute = text.endswith(".")
        labels = [lab for lab in text.rstrip(".").split(".")]
        name = cls(labels)
        if not absolute:
            if origin is None:
                raise NameError_(f"relative name {text!r} without an origin")
            name = name.concat(origin)
        return name

    @classmethod
    def root(cls) -> "DnsName":
        return cls(())

    # -- views -----------------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """Labels in presentation order (leftmost first)."""
        return self._labels

    @property
    def reversed_labels(self) -> Tuple[str, ...]:
        """Labels in significance order, e.g. ``("com", "example", "www")``.

        This is the order the specification encoding (Figure 10) and the
        domain tree use.
        """
        return tuple(reversed(self._labels))

    def to_text(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels) + "."

    def to_wire(self) -> bytes:
        """Uncompressed RFC 1035 wire form: length-prefixed labels plus the
        terminating zero octet."""
        out = bytearray()
        for lab in self._labels:
            raw = lab.encode("ascii")
            out.append(len(raw))
            out.extend(raw)
        out.append(0)
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int = 0) -> Tuple["DnsName", int]:
        """Parse an uncompressed wire-form name, returning the name and the
        offset just past it."""
        labels = []
        pos = offset
        while True:
            if pos >= len(wire):
                raise NameError_("truncated wire name")
            length = wire[pos]
            pos += 1
            if length == 0:
                break
            if length > MAX_LABEL_LENGTH:
                raise NameError_(f"bad label length {length}")
            if pos + length > len(wire):
                raise NameError_("truncated wire label")
            labels.append(wire[pos : pos + length].decode("ascii"))
            pos += length
        return cls(labels), pos

    # -- structure -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __bool__(self) -> bool:
        # The root name is still a real name; never treat names as falsy.
        return True

    def parent(self) -> "DnsName":
        """The name with the leftmost label removed. Parent of the root is
        the root itself."""
        if not self._labels:
            return self
        return DnsName(self._labels[1:])

    def concat(self, suffix: "DnsName") -> "DnsName":
        return DnsName(self._labels + suffix._labels)

    def prepend(self, label: str) -> "DnsName":
        return DnsName((label,) + self._labels)

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True if ``self`` is ``other`` or lies under it."""
        n = len(other._labels)
        if n == 0:
            return True
        return len(self._labels) >= n and self._labels[-n:] == other._labels

    def is_proper_subdomain_of(self, other: "DnsName") -> bool:
        return self != other and self.is_subdomain_of(other)

    def relativize(self, origin: "DnsName") -> Tuple[str, ...]:
        """Labels of ``self`` below ``origin`` (leftmost first)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self.to_text()} is not under {origin.to_text()}")
        cut = len(self._labels) - len(origin._labels)
        return self._labels[:cut]

    # -- wildcards (RFC 4592) ---------------------------------------------

    @property
    def is_wildcard(self) -> bool:
        return bool(self._labels) and self._labels[0] == "*"

    def wildcard_parent(self) -> "DnsName":
        """For ``*.example.com.`` return ``example.com.``."""
        if not self.is_wildcard:
            raise NameError_(f"{self.to_text()} is not a wildcard name")
        return self.parent()

    def with_wildcard(self) -> "DnsName":
        """``example.com.`` -> ``*.example.com.``"""
        return self.prepend("*")

    # -- comparison --------------------------------------------------------

    def canonical_key(self) -> Tuple[str, ...]:
        """Sort key realising RFC 4034 section 6.1 canonical ordering."""
        return self.reversed_labels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DnsName):
            return NotImplemented
        return self._labels == other._labels

    def __lt__(self, other: "DnsName") -> bool:
        if not isinstance(other, DnsName):
            return NotImplemented
        return self.canonical_key() < other.canonical_key()

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:
        return f"DnsName({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()


def common_suffix_depth(a: DnsName, b: DnsName) -> int:
    """Number of trailing labels ``a`` and ``b`` share.

    ``common_suffix_depth(www.example.com., cs.example.com.) == 2``. This is
    the word-level analogue of the byte-level scanning in the production
    engine's ``compareRaw`` (Figure 4).
    """
    ra, rb = a.reversed_labels, b.reversed_labels
    depth = 0
    for la, lb in zip(ra, rb):
        if la != lb:
            break
        depth += 1
    return depth

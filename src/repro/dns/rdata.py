"""Resource record data (rdata) for each supported RR type.

Each rdata class is an immutable value object with a textual form matching
conventional master-file syntax. The engine's data plane never interprets
rdata except for the embedded domain names used by CNAME chasing and
additional-section (glue) processing, which ``names()`` exposes uniformly.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Tuple

from repro.dns.name import DnsName
from repro.dns.rtypes import RRType


class Rdata:
    """Base class for rdata values. Subclasses are frozen dataclasses."""

    #: Overridden per subclass.
    rtype: RRType

    def names(self) -> Tuple[DnsName, ...]:
        """Domain names embedded in this rdata (for glue / chasing)."""
        return ()

    def to_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ARdata(Rdata):
    """IPv4 address."""

    address: str
    rtype = RRType.A

    def __post_init__(self) -> None:
        ipaddress.IPv4Address(self.address)

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AAAARdata(Rdata):
    """IPv6 address, stored in compressed canonical text form."""

    address: str
    rtype = RRType.AAAA

    def __post_init__(self) -> None:
        canonical = str(ipaddress.IPv6Address(self.address))
        object.__setattr__(self, "address", canonical)

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class NSRdata(Rdata):
    """Authoritative nameserver for a delegation."""

    nsdname: DnsName
    rtype = RRType.NS

    def names(self) -> Tuple[DnsName, ...]:
        return (self.nsdname,)

    def to_text(self) -> str:
        return self.nsdname.to_text()


@dataclass(frozen=True)
class CNAMERdata(Rdata):
    """Canonical-name alias target."""

    target: DnsName
    rtype = RRType.CNAME

    def names(self) -> Tuple[DnsName, ...]:
        return (self.target,)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class DNAMERdata(Rdata):
    """Subtree redirection target (RFC 6672)."""

    target: DnsName
    rtype = RRType.DNAME

    def names(self) -> Tuple[DnsName, ...]:
        return (self.target,)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class SOARdata(Rdata):
    """Start of authority."""

    mname: DnsName
    rname: DnsName
    serial: int
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300
    rtype = RRType.SOA

    def names(self) -> Tuple[DnsName, ...]:
        return (self.mname, self.rname)

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True)
class MXRdata(Rdata):
    """Mail exchange with preference."""

    preference: int
    exchange: DnsName
    rtype = RRType.MX

    def names(self) -> Tuple[DnsName, ...]:
        return (self.exchange,)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


@dataclass(frozen=True)
class TXTRdata(Rdata):
    """Free-form text."""

    text: str
    rtype = RRType.TXT

    def to_text(self) -> str:
        return f'"{self.text}"'


@dataclass(frozen=True)
class SRVRdata(Rdata):
    """Service locator (RFC 2782)."""

    priority: int
    weight: int
    port: int
    target: DnsName
    rtype = RRType.SRV

    def names(self) -> Tuple[DnsName, ...]:
        return (self.target,)

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"


@dataclass(frozen=True)
class PTRRdata(Rdata):
    """Pointer to a canonical name."""

    target: DnsName
    rtype = RRType.PTR

    def names(self) -> Tuple[DnsName, ...]:
        return (self.target,)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class ALIASRdata(Rdata):
    """In-house apex alias (flattened at query time by engine v4.0+)."""

    target: DnsName
    rtype = RRType.ALIAS

    def names(self) -> Tuple[DnsName, ...]:
        return (self.target,)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class CAARdata(Rdata):
    """Certification authority authorization (RFC 8659)."""

    flags: int
    tag: str
    value: str
    rtype = RRType.CAA

    def to_text(self) -> str:
        return f'{self.flags} {self.tag} "{self.value}"'


_TEXT_PARSERS = {}


def _parser(rtype: RRType):
    def register(func):
        _TEXT_PARSERS[rtype] = func
        return func

    return register


@_parser(RRType.A)
def _parse_a(fields, origin):
    (addr,) = fields
    return ARdata(addr)


@_parser(RRType.AAAA)
def _parse_aaaa(fields, origin):
    (addr,) = fields
    return AAAARdata(addr)


@_parser(RRType.NS)
def _parse_ns(fields, origin):
    (target,) = fields
    return NSRdata(DnsName.from_text(target, origin))


@_parser(RRType.CNAME)
def _parse_cname(fields, origin):
    (target,) = fields
    return CNAMERdata(DnsName.from_text(target, origin))


@_parser(RRType.DNAME)
def _parse_dname(fields, origin):
    (target,) = fields
    return DNAMERdata(DnsName.from_text(target, origin))


@_parser(RRType.SOA)
def _parse_soa(fields, origin):
    mname, rname, *numbers = fields
    nums = [int(n) for n in numbers]
    while len(nums) < 5:
        nums.append([0, 3600, 600, 86400, 300][len(nums)])
    return SOARdata(
        DnsName.from_text(mname, origin),
        DnsName.from_text(rname, origin),
        *nums[:5],
    )


@_parser(RRType.MX)
def _parse_mx(fields, origin):
    pref, exchange = fields
    return MXRdata(int(pref), DnsName.from_text(exchange, origin))


@_parser(RRType.TXT)
def _parse_txt(fields, origin):
    text = " ".join(fields)
    return TXTRdata(text.strip('"'))


@_parser(RRType.SRV)
def _parse_srv(fields, origin):
    prio, weight, port, target = fields
    return SRVRdata(int(prio), int(weight), int(port), DnsName.from_text(target, origin))


@_parser(RRType.PTR)
def _parse_ptr(fields, origin):
    (target,) = fields
    return PTRRdata(DnsName.from_text(target, origin))


@_parser(RRType.ALIAS)
def _parse_alias(fields, origin):
    (target,) = fields
    return ALIASRdata(DnsName.from_text(target, origin))


@_parser(RRType.CAA)
def _parse_caa(fields, origin):
    flags, tag, value = fields
    return CAARdata(int(flags), tag, value.strip('"'))


def rdata_from_text(rtype: RRType, text: str, origin: DnsName = None) -> Rdata:
    """Parse master-file rdata text for ``rtype``.

    Raises :class:`ValueError` for unsupported types or malformed fields.
    """
    parser = _TEXT_PARSERS.get(rtype)
    if parser is None:
        raise ValueError(f"no rdata parser for type {rtype!r}")
    fields = text.split()
    try:
        return parser(fields, origin)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad {rtype.name} rdata {text!r}: {exc}") from exc

"""Resource records and RRsets.

A :class:`ResourceRecord` is the (rname, type, rdata) triple of the paper's
section 2 (plus TTL for realism). An :class:`RRset` groups all records
sharing an owner name and type, which is the unit the engine's domain tree
stores and the unit DNS responses are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.dns.name import DnsName
from repro.dns.rdata import Rdata
from repro.dns.rtypes import RRType


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    rname: DnsName
    rtype: RRType
    rdata: Rdata
    ttl: int = 300

    def __post_init__(self) -> None:
        if self.rdata.rtype is not self.rtype:
            raise ValueError(
                f"rdata type {self.rdata.rtype!r} does not match record type {self.rtype!r}"
            )
        if self.ttl < 0:
            raise ValueError(f"negative TTL {self.ttl}")

    def to_text(self) -> str:
        return f"{self.rname.to_text()} {self.ttl} IN {self.rtype.name} {self.rdata.to_text()}"

    def with_rname(self, rname: DnsName) -> "ResourceRecord":
        """Copy with a different owner name.

        This is the wildcard-synthesis operation (RFC 4592): the engine
        copies the wildcard RR and replaces its rname with the query name —
        the exact allocation pattern the summarizer's ``newobject`` effect
        models (section 5.3).
        """
        return ResourceRecord(rname, self.rtype, self.rdata, self.ttl)

    def sort_key(self) -> Tuple:
        return (self.rname.canonical_key(), int(self.rtype), self.rdata.to_text())


@dataclass(frozen=True)
class RRset:
    """All records at one (rname, rtype), rdata order preserved."""

    rname: DnsName
    rtype: RRType
    records: Tuple[ResourceRecord, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for rec in self.records:
            if rec.rname != self.rname or rec.rtype is not self.rtype:
                raise ValueError(f"record {rec.to_text()} does not belong to this RRset")
        if not self.records:
            raise ValueError("empty RRset")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def ttl(self) -> int:
        return min(rec.ttl for rec in self.records)

    def with_rname(self, rname: DnsName) -> "RRset":
        return RRset(rname, self.rtype, tuple(rec.with_rname(rname) for rec in self.records))

    def to_text(self) -> str:
        return "\n".join(rec.to_text() for rec in self.records)


def group_rrsets(records: Iterable[ResourceRecord]) -> List[RRset]:
    """Group records into RRsets, preserving first-seen order of sets."""
    buckets: Dict[Tuple[DnsName, RRType], List[ResourceRecord]] = {}
    order: List[Tuple[DnsName, RRType]] = []
    for rec in records:
        key = (rec.rname, rec.rtype)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(rec)
    return [RRset(name, rtype, tuple(buckets[(name, rtype)])) for name, rtype in order]

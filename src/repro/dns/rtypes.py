"""Resource record types, classes and response codes.

Numeric values follow the IANA DNS parameter registry, so the symbolic
qtype variable used by the verification encoding (section 5.4) ranges over
the same integers a real packet would carry.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """DNS resource record types supported by the engine and specification."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    DNAME = 39
    CAA = 257
    #: In-house apex-alias type (private-use number): ALIAS flattening is
    #: the "custom feature" of our v4.0 engine iteration (paper section 1:
    #: "We also adapt the top-level specification to accommodate new
    #: features").
    ALIAS = 65280
    #: The ANY / '*' query pseudo-type (RFC 8482 limits it in practice; our
    #: engine and spec both answer it with every RRset at the node).
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR type {text!r}") from None

    @property
    def is_query_only(self) -> bool:
        """Types that may appear in queries but never in zone data."""
        return self is RRType.ANY

    @property
    def has_name_rdata(self) -> bool:
        """Types whose rdata carries a domain name that additional-section
        processing may chase (NS targets, MX exchanges, SRV targets...)."""
        return self in (RRType.NS, RRType.CNAME, RRType.MX, RRType.SRV,
                        RRType.PTR, RRType.DNAME)


class DNSClass(enum.IntEnum):
    """DNS classes; only IN is used, kept for wire compatibility."""

    IN = 1
    CH = 3
    ANY = 255


class RCode(enum.IntEnum):
    """Response codes (RFC 1035 section 4.1.1, plus REFUSED usage)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    @classmethod
    def from_text(cls, text: str) -> "RCode":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown rcode {text!r}") from None


#: RR types that are valid in zone files for this engine.
ZONE_DATA_TYPES = (
    RRType.A,
    RRType.NS,
    RRType.CNAME,
    RRType.SOA,
    RRType.PTR,
    RRType.MX,
    RRType.TXT,
    RRType.AAAA,
    RRType.SRV,
    RRType.DNAME,
    RRType.CAA,
    RRType.ALIAS,
)

#: Query types the verification pipeline makes symbolic. ANY is included
#: because several Table-2 bug classes (wrong answer on MX, extraneous
#: additional) only trigger on less common qtypes.
QUERYABLE_TYPES = ZONE_DATA_TYPES + (RRType.ANY,)

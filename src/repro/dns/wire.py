"""Minimal DNS wire-format codec (RFC 1035 section 4).

The paper scopes packet encoding/decoding out of the verified engine (its
correctness is handled by conventional testing); this codec exists so the
example applications can serve real packets: it parses a query message and
serialises a :class:`~repro.dns.message.Response`. Uncompressed names only
on output (compression pointers are accepted on input), one question per
message, no EDNS.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.dns.message import Query, Response
from repro.dns.name import DnsName, NameError_
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CAARdata,
    CNAMERdata,
    MXRdata,
    NSRdata,
    PTRRdata,
    SOARdata,
    SRVRdata,
    TXTRdata,
)
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import DNSClass, RCode, RRType


class WireError(ValueError):
    """Malformed wire data."""


class NotAQueryError(WireError):
    """The message parses as far as the header but has QR=1: it is a
    response, not a query. RFC 1035 section 7.1 forbids answering it —
    an error reply would itself carry QR=1, so two servers (or one
    server fed its own spoofed address) would reflect errors at each
    other forever. Servers must drop these, not FORMERR them."""


_HEADER = struct.Struct("!HHHHHH")

#: RFC 1035 section 3.1: a whole name occupies at most 255 octets on the
#: wire (length bytes plus the terminating root byte included).
MAX_NAME_WIRE_LENGTH = 255


def parse_name(wire: bytes, offset: int) -> Tuple[DnsName, int]:
    """Parse a possibly-compressed name; returns (name, next offset)."""
    labels: List[str] = []
    jumps = 0
    next_offset = None
    pos = offset
    wire_length = 0  # decompressed octets, per RFC 1035 3.1
    while True:
        if pos >= len(wire):
            raise WireError("truncated name")
        length = wire[pos]
        if length & 0xC0 == 0xC0:
            if pos + 1 >= len(wire):
                raise WireError("truncated compression pointer")
            target = ((length & 0x3F) << 8) | wire[pos + 1]
            if next_offset is None:
                next_offset = pos + 2
            pos = target
            jumps += 1
            if jumps > 32:
                raise WireError("compression pointer loop")
            continue
        if length & 0xC0:
            # 0x40/0x80 label types are reserved (RFC 1035 4.1.4).
            raise WireError(f"reserved label length byte 0x{length:02x}")
        wire_length += 1 + length
        if wire_length > MAX_NAME_WIRE_LENGTH:
            raise WireError(f"name exceeds {MAX_NAME_WIRE_LENGTH} octets")
        pos += 1
        if length == 0:
            break
        if pos + length > len(wire):
            raise WireError("truncated label")
        labels.append(wire[pos : pos + length].decode("ascii", errors="replace"))
        pos += length
    try:
        name = DnsName(labels)
    except NameError_ as exc:
        raise WireError(str(exc)) from exc
    return name, (next_offset if next_offset is not None else pos)


def parse_query(wire: bytes) -> Tuple[int, Query]:
    """Parse a query message; returns (transaction id, question)."""
    if len(wire) < _HEADER.size:
        raise WireError("short header")
    txid, flags, qdcount, _, _, _ = _HEADER.unpack_from(wire)
    if flags & 0x8000:
        raise NotAQueryError("message is a response, not a query")
    if qdcount != 1:
        raise WireError(f"expected exactly one question, got {qdcount}")
    qname, offset = parse_name(wire, _HEADER.size)
    if offset + 4 > len(wire):
        raise WireError("truncated question")
    qtype_value, qclass = struct.unpack_from("!HH", wire, offset)
    try:
        qtype = RRType(qtype_value)
    except ValueError as exc:
        raise WireError(f"unsupported qtype {qtype_value}") from exc
    if qclass not in (DNSClass.IN, DNSClass.ANY):
        raise WireError(f"unsupported qclass {qclass}")
    return txid, Query(qname, qtype)


def _encode_rdata(record: ResourceRecord) -> bytes:
    rdata = record.rdata
    if isinstance(rdata, ARdata):
        return bytes(int(part) for part in rdata.address.split("."))
    if isinstance(rdata, AAAARdata):
        import ipaddress

        return ipaddress.IPv6Address(rdata.address).packed
    if isinstance(rdata, (NSRdata, PTRRdata)):
        return rdata.names()[0].to_wire()
    if isinstance(rdata, CNAMERdata):
        return rdata.target.to_wire()
    if isinstance(rdata, MXRdata):
        return struct.pack("!H", rdata.preference) + rdata.exchange.to_wire()
    if isinstance(rdata, TXTRdata):
        raw = rdata.text.encode("ascii", errors="replace")[:255]
        return bytes([len(raw)]) + raw
    if isinstance(rdata, SOARdata):
        return (
            rdata.mname.to_wire()
            + rdata.rname.to_wire()
            + struct.pack(
                "!IIIII",
                rdata.serial,
                rdata.refresh,
                rdata.retry,
                rdata.expire,
                rdata.minimum,
            )
        )
    if isinstance(rdata, SRVRdata):
        return (
            struct.pack("!HHH", rdata.priority, rdata.weight, rdata.port)
            + rdata.target.to_wire()
        )
    if isinstance(rdata, CAARdata):
        tag = rdata.tag.encode("ascii")
        return bytes([rdata.flags, len(tag)]) + tag + rdata.value.encode("ascii")
    raise WireError(f"cannot encode rdata of type {record.rtype!r}")


def _encode_record(record: ResourceRecord) -> bytes:
    rdata = _encode_rdata(record)
    return (
        record.rname.to_wire()
        + struct.pack("!HHIH", int(record.rtype), int(DNSClass.IN), record.ttl, len(rdata))
        + rdata
    )


def build_query(txid: int, query: Query) -> bytes:
    """Serialise a query message (for the client side of examples)."""
    header = _HEADER.pack(txid, 0x0100, 1, 0, 0, 0)
    question = query.qname.to_wire() + struct.pack(
        "!HH", int(query.qtype), int(DNSClass.IN)
    )
    return header + question


def build_response(txid: int, response: Response) -> bytes:
    """Serialise a response message."""
    flags = 0x8000 | 0x0400  # QR | RD copied off; AA set below
    flags = 0x8000
    if response.aa:
        flags |= 0x0400
    if response.tc:
        flags |= 0x0200
    flags |= int(response.rcode) & 0xF
    header = _HEADER.pack(
        txid,
        flags,
        1,
        len(response.answer),
        len(response.authority),
        len(response.additional),
    )
    out = bytearray(header)
    out += response.query.qname.to_wire()
    out += struct.pack("!HH", int(response.query.qtype), int(DNSClass.IN))
    for section in (response.answer, response.authority, response.additional):
        for record in section:
            out += _encode_record(record)
    return bytes(out)


def build_error_response(txid: int, rcode: RCode, query: Query = None) -> bytes:
    """A minimal error reply for queries that failed before (or during)
    resolution: header-only when the question never parsed (FORMERR), the
    question echoed back when it did (SERVFAIL on engine failure). The
    serving path uses this instead of silently dropping, so clients fail
    fast and the failure is countable on both ends."""
    flags = 0x8000 | (int(rcode) & 0xF)
    if query is None:
        return _HEADER.pack(txid, flags, 0, 0, 0, 0)
    header = _HEADER.pack(txid, flags, 1, 0, 0, 0)
    question = query.qname.to_wire() + struct.pack(
        "!HH", int(query.qtype), int(DNSClass.IN)
    )
    return header + question


def build_truncated_response(txid: int, query: Query) -> bytes:
    """An RFC 1035 4.2.1 truncated reply: QR and TC set, the question
    echoed, every answer section empty. An overloaded server sends this
    over UDP instead of resolving — well-behaved clients retry the same
    question over TCP, whose accept queue gives the kernel a back-pressure
    mechanism the datagram socket lacks."""
    flags = 0x8000 | 0x0200  # QR | TC
    header = _HEADER.pack(txid, flags, 1, 0, 0, 0)
    question = query.qname.to_wire() + struct.pack(
        "!HH", int(query.qtype), int(DNSClass.IN)
    )
    return header + question


def parse_response(wire: bytes) -> Tuple[int, Response]:
    """Parse a response message (used by tests to round-trip)."""
    if len(wire) < _HEADER.size:
        raise WireError("short header")
    txid, flags, qdcount, ancount, nscount, arcount = _HEADER.unpack_from(wire)
    if not flags & 0x8000:
        raise WireError("message is a query, not a response")
    if qdcount != 1:
        raise WireError("expected one question")
    qname, offset = parse_name(wire, _HEADER.size)
    qtype_value, _ = struct.unpack_from("!HH", wire, offset)
    offset += 4
    query = Query(qname, RRType(qtype_value))

    def read_records(count: int, offset: int):
        records = []
        for _ in range(count):
            rname, offset = parse_name(wire, offset)
            rtype_value, _, ttl, rdlength = struct.unpack_from("!HHIH", wire, offset)
            offset += 10
            rdata_wire = wire[offset : offset + rdlength]
            records.append(
                _decode_record(rname, RRType(rtype_value), ttl, rdata_wire, wire, offset)
            )
            offset += rdlength
        return tuple(records), offset

    answer, offset = read_records(ancount, offset)
    authority, offset = read_records(nscount, offset)
    additional, offset = read_records(arcount, offset)
    return txid, Response(
        query=query,
        rcode=RCode(flags & 0xF),
        aa=bool(flags & 0x0400),
        answer=answer,
        authority=authority,
        additional=additional,
        tc=bool(flags & 0x0200),
    )


def _decode_record(rname, rtype, ttl, rdata_wire, full_wire, rdata_offset):
    if rtype is RRType.A:
        rdata = ARdata(".".join(str(b) for b in rdata_wire))
    elif rtype is RRType.AAAA:
        import ipaddress

        rdata = AAAARdata(str(ipaddress.IPv6Address(rdata_wire)))
    elif rtype in (RRType.NS, RRType.CNAME, RRType.PTR):
        target, _ = parse_name(full_wire, rdata_offset)
        rdata = {
            RRType.NS: NSRdata,
            RRType.CNAME: CNAMERdata,
            RRType.PTR: PTRRdata,
        }[rtype](target)
    elif rtype is RRType.MX:
        (pref,) = struct.unpack_from("!H", rdata_wire)
        exchange, _ = parse_name(full_wire, rdata_offset + 2)
        rdata = MXRdata(pref, exchange)
    elif rtype is RRType.TXT:
        rdata = TXTRdata(rdata_wire[1 : 1 + rdata_wire[0]].decode("ascii"))
    elif rtype is RRType.SOA:
        mname, off = parse_name(full_wire, rdata_offset)
        rname2, off = parse_name(full_wire, off)
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", full_wire, off)
        rdata = SOARdata(mname, rname2, serial, refresh, retry, expire, minimum)
    elif rtype is RRType.SRV:
        prio, weight, port = struct.unpack_from("!HHH", rdata_wire)
        target, _ = parse_name(full_wire, rdata_offset + 6)
        rdata = SRVRdata(prio, weight, port, target)
    else:
        raise WireError(f"cannot decode rdata type {rtype!r}")
    return ResourceRecord(rname, rtype, rdata, ttl)

"""Zones: a named collection of resource records with validation.

A zone is the unit the control plane loads into the engine's in-heap domain
tree (section 6.5), and also the flat record list the top-level specification
iterates over (Figure 9). Validation enforces the structural rules both the
engine and the specification assume, so that "garbage zone" behaviours are a
control-plane concern, exactly as the paper scopes them out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dns.name import DnsName
from repro.dns.records import ResourceRecord, RRset, group_rrsets
from repro.dns.rtypes import RRType


class ZoneValidationError(ValueError):
    """Raised when a record set violates zone structural rules."""


@dataclass(frozen=True)
class Zone:
    """An authoritative zone: an origin name plus its resource records.

    Construction validates the zone; a :class:`Zone` instance is therefore
    always structurally sound (single SOA at the apex, apex NS present,
    CNAME exclusivity, wildcard labels only leftmost, records in-bailiwick,
    and nothing but glue below delegation points).
    """

    origin: DnsName
    records: Tuple[ResourceRecord, ...]

    def __post_init__(self) -> None:
        _validate(self.origin, self.records)
        # Materialized once: every verification unit keys on the encoding
        # depth, and rescanning a million records per unit would put an
        # O(zone) term back into the per-delta verify path.
        depth = len(self.origin)
        for rec in self.records:
            depth = max(depth, len(rec.rname))
            for name in rec.rdata.names():
                depth = max(depth, len(name))
        object.__setattr__(self, "_max_name_depth", depth)

    # -- basic views ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def names(self) -> List[DnsName]:
        """Distinct owner names, canonically ordered."""
        seen: Set[DnsName] = set(rec.rname for rec in self.records)
        return sorted(seen)

    def records_at(self, name: DnsName) -> List[ResourceRecord]:
        return [rec for rec in self.records if rec.rname == name]

    def rrsets(self) -> List[RRset]:
        return group_rrsets(self.records)

    def rrsets_at(self, name: DnsName) -> List[RRset]:
        return group_rrsets(self.records_at(name))

    def rrset(self, name: DnsName, rtype: RRType) -> Optional[RRset]:
        recs = [rec for rec in self.records_at(name) if rec.rtype is rtype]
        if not recs:
            return None
        return RRset(name, rtype, tuple(recs))

    @property
    def soa(self) -> RRset:
        rrset = self.rrset(self.origin, RRType.SOA)
        assert rrset is not None  # guaranteed by validation
        return rrset

    # -- structural queries used by the spec and tests ---------------------

    def delegation_points(self) -> List[DnsName]:
        """Owner names (below the apex) holding NS records — zone cuts."""
        cuts = {
            rec.rname
            for rec in self.records
            if rec.rtype is RRType.NS and rec.rname != self.origin
        }
        return sorted(cuts)

    def is_below_cut(self, name: DnsName) -> bool:
        """True if ``name`` lies strictly below some delegation point."""
        return any(name.is_proper_subdomain_of(cut) for cut in self.delegation_points())

    def enclosing_cut(self, name: DnsName) -> Optional[DnsName]:
        """The highest delegation point at-or-above ``name``, if any."""
        best: Optional[DnsName] = None
        for cut in self.delegation_points():
            if name.is_subdomain_of(cut):
                if best is None or len(cut) < len(best):
                    best = cut
        return best

    def glue_candidates(self, target: DnsName) -> List[RRset]:
        """A/AAAA RRsets at ``target``, the additional-section inputs."""
        out = []
        for rtype in (RRType.A, RRType.AAAA):
            rrset = self.rrset(target, rtype)
            if rrset is not None:
                out.append(rrset)
        return out

    def label_universe(self) -> List[str]:
        """Every label appearing in owner names or embedded rdata names.

        This is the universe the :class:`~repro.dns.interner.LabelInterner`
        is built from when verifying the engine on this zone.
        """
        labels: Set[str] = set()
        for rec in self.records:
            labels.update(rec.rname.labels)
            for name in rec.rdata.names():
                labels.update(name.labels)
        labels.discard("*")
        return sorted(labels)

    def max_name_depth(self) -> int:
        return self._max_name_depth


def _validate(origin: DnsName, records: Tuple[ResourceRecord, ...]) -> None:
    if not records:
        raise ZoneValidationError("zone has no records")

    soas = [rec for rec in records if rec.rtype is RRType.SOA]
    if len(soas) != 1:
        raise ZoneValidationError(f"zone must have exactly one SOA, found {len(soas)}")
    if soas[0].rname != origin:
        raise ZoneValidationError(
            f"SOA owner {soas[0].rname.to_text()} is not the origin {origin.to_text()}"
        )

    apex_ns = [rec for rec in records if rec.rtype is RRType.NS and rec.rname == origin]
    if not apex_ns:
        raise ZoneValidationError("zone must have NS records at the apex")

    by_name: Dict[DnsName, List[ResourceRecord]] = {}
    for rec in records:
        if not rec.rname.is_subdomain_of(origin):
            raise ZoneValidationError(
                f"record {rec.rname.to_text()} is out of bailiwick of {origin.to_text()}"
            )
        # RFC 4592 section 2.1.1: an asterisk label is only *special* when
        # leftmost; interior asterisks are ordinary labels and legal
        # ("sub.*.example." in the RFC's own example zone).
        by_name.setdefault(rec.rname, []).append(rec)

    for name, recs in by_name.items():
        types = {rec.rtype for rec in recs}
        if RRType.ALIAS in types:
            forbidden = types & {RRType.A, RRType.AAAA, RRType.CNAME}
            if forbidden:
                raise ZoneValidationError(
                    f"ALIAS at {name.to_text()} coexists with "
                    f"{sorted(t.name for t in forbidden)}"
                )
            if len([r for r in recs if r.rtype is RRType.ALIAS]) > 1:
                raise ZoneValidationError(f"multiple ALIAS records at {name.to_text()}")
            if name.is_wildcard:
                raise ZoneValidationError(
                    f"ALIAS at wildcard name {name.to_text()} is not supported"
                )
        if RRType.CNAME in types and types != {RRType.CNAME}:
            raise ZoneValidationError(
                f"CNAME at {name.to_text()} coexists with other types {sorted(t.name for t in types)}"
            )
        if RRType.CNAME in types and len([r for r in recs if r.rtype is RRType.CNAME]) > 1:
            raise ZoneValidationError(f"multiple CNAMEs at {name.to_text()}")
        if RRType.DNAME in types and len([r for r in recs if r.rtype is RRType.DNAME]) > 1:
            raise ZoneValidationError(f"multiple DNAMEs at {name.to_text()}")

    cuts = {
        rec.rname for rec in records if rec.rtype is RRType.NS and rec.rname != origin
    }
    for name, recs in by_name.items():
        # Walk the name's own ancestor chain against the cut set rather
        # than scanning every cut per name: chains are bounded by name
        # depth while cut count grows with zone size (a TLD-shaped zone
        # is mostly delegations).
        labels = name.labels
        for i in range(1, len(labels)):
            cut = DnsName(labels[i:])
            if cut in cuts:
                bad = [r for r in recs if r.rtype not in (RRType.A, RRType.AAAA)]
                if bad:
                    raise ZoneValidationError(
                        f"non-glue data {bad[0].rtype.name} at {name.to_text()} "
                        f"below delegation {cut.to_text()}"
                    )
        if name in cuts:
            extra = {rec.rtype for rec in recs} - {RRType.NS}
            if extra:
                raise ZoneValidationError(
                    f"delegation point {name.to_text()} holds non-NS data "
                    f"{sorted(t.name for t in extra)}"
                )


def make_zone(origin: str, records: Iterable[ResourceRecord]) -> Zone:
    """Convenience constructor from an origin string."""
    return Zone(DnsName.from_text(origin), tuple(records))

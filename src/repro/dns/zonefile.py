"""A small master-file style zone text format.

Supports the subset of RFC 1035 master-file syntax the project needs:
``$ORIGIN`` / ``$TTL`` directives, ``@`` for the origin, optional TTL and
class fields, ``;`` comments, and blank-name continuation (a line starting
with whitespace reuses the previous owner name). Parenthesised multi-line
records are not supported; SOA fields go on one line.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.name import DnsName
from repro.dns.rdata import rdata_from_text
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone


class ZoneParseError(ValueError):
    """Raised with line information for malformed zone text."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def parse_zone_text(text: str, origin: Optional[str] = None) -> Zone:
    """Parse zone text into a validated :class:`Zone`.

    ``origin`` may be supplied by the caller or via a ``$ORIGIN`` directive
    (the directive wins for records following it).
    """
    current_origin: Optional[DnsName] = (
        DnsName.from_text(origin if origin.endswith(".") else origin + ".")
        if origin
        else None
    )
    default_ttl = 300
    last_name: Optional[DnsName] = None
    records: List[ResourceRecord] = []

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue

        if line.startswith("$"):
            fields = line.split()
            directive = fields[0].upper()
            if directive == "$ORIGIN":
                if len(fields) != 2:
                    raise ZoneParseError(lineno, "$ORIGIN needs one argument")
                current_origin = DnsName.from_text(fields[1])
            elif directive == "$TTL":
                if len(fields) != 2 or not fields[1].isdigit():
                    raise ZoneParseError(lineno, "$TTL needs one numeric argument")
                default_ttl = int(fields[1])
            else:
                raise ZoneParseError(lineno, f"unknown directive {fields[0]}")
            continue

        starts_blank = line[0] in " \t"
        fields = line.split()
        if starts_blank:
            if last_name is None:
                raise ZoneParseError(lineno, "continuation line before any owner name")
            name = last_name
        else:
            try:
                name = DnsName.from_text(fields[0], current_origin)
            except ValueError as exc:
                raise ZoneParseError(lineno, str(exc)) from exc
            fields = fields[1:]

        ttl = default_ttl
        if fields and fields[0].isdigit():
            ttl = int(fields[0])
            fields = fields[1:]
        if fields and fields[0].upper() in ("IN", "CH"):
            fields = fields[1:]
        if not fields:
            raise ZoneParseError(lineno, "missing RR type")

        try:
            rtype = RRType.from_text(fields[0])
        except ValueError as exc:
            raise ZoneParseError(lineno, str(exc)) from exc
        rdata_text = " ".join(fields[1:])
        try:
            rdata = rdata_from_text(rtype, rdata_text, current_origin)
        except ValueError as exc:
            raise ZoneParseError(lineno, str(exc)) from exc

        records.append(ResourceRecord(name, rtype, rdata, ttl))
        last_name = name

    if current_origin is None:
        raise ZoneParseError(0, "no origin given (argument or $ORIGIN)")
    if not records:
        raise ZoneParseError(0, "zone text contains no records")
    return Zone(current_origin, tuple(records))


def zone_to_text(zone: Zone) -> str:
    """Serialise a zone back to parseable text (round-trips with
    :func:`parse_zone_text`)."""
    lines = [f"$ORIGIN {zone.origin.to_text()}"]
    for rec in sorted(zone.records, key=lambda r: r.sort_key()):
        lines.append(
            f"{rec.rname.to_text()} {rec.ttl} IN {rec.rtype.name} {rec.rdata.to_text()}"
        )
    return "\n".join(lines) + "\n"

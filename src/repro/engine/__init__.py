"""The in-production-style DNS authoritative engine (the verification target).

This subpackage plays the role of Alibaba Cloud's proprietary 2,000-LoC Go
engine (paper section 6). It is written in **GoPy** — the restricted subset
:mod:`repro.frontend` compiles to AbsLLVM — so every module leads a double
life: compiled IR for the verifier, ordinary Python for concrete execution
(counterexample validation, the differential tester, the demo server).

Layout mirrors Figure 5:

- :mod:`repro.engine.gopy.consts` / :mod:`repro.engine.gopy.structs` —
  shared constants and struct definitions;
- :mod:`repro.engine.gopy.nameops` — the Name library layer (abstract
  label-code form); :mod:`repro.engine.gopy.rawname` — the raw byte-level
  ``compareRaw`` of Figure 4, target of the section 6.3 refinement
  experiment;
- :mod:`repro.engine.gopy.nodestack` — the custom stack with the leaky
  ``level`` field of Figure 3;
- :mod:`repro.engine.versions.*` — one module per engine version
  (``v1_0``, ``v2_0``, ``v3_0``, ``dev``, ``verified``), each holding that
  version's ``tree_search`` / ``find`` / ``resolve`` resolution logic with
  the paper's Table-2 bugs seeded at the matching version;
- :mod:`repro.engine.control` — the control plane: build the in-heap
  domain tree from a :class:`repro.dns.Zone` (section 6.5).
"""

from repro.engine.control import build_domain_tree, build_flat_zone, ENGINE_VERSIONS

__all__ = ["build_domain_tree", "build_flat_zone", "ENGINE_VERSIONS"]

"""The control plane: zone configurations to in-heap domain trees.

Section 6.5: the engine's data plane assumes a concrete in-heap domain tree
supplied by the control plane. This module builds that tree (and the flat
zone the top-level specification consumes) from a validated
:class:`repro.dns.Zone`, via a :class:`~repro.engine.encoding.ZoneEncoder`.

Tree shape (Figure 11): one node per owner name *and* per empty
non-terminal; each node's children form a balanced BST over the child's own
label code reached through ``down``/``left``/``right``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import DomainTree, FlatZone, Response, RR, RRSet, TreeNode
from repro.engine.versions import dev, v1_0, v2_0, v3_0, v4_0, verified

#: Version name -> GoPy module, in release order.
ENGINE_VERSIONS = {
    "v1.0": v1_0,
    "v2.0": v2_0,
    "v3.0": v3_0,
    "dev": dev,
    "verified": verified,
    "v4.0": v4_0,
}


def build_flat_zone(encoder: ZoneEncoder) -> FlatZone:
    """The specification's zone view: origin + canonically ordered RRs."""
    return FlatZone(
        origin=encoder.encode_name(encoder.zone.origin),
        rrs=encoder.encoded_rrs(),
    )


def build_domain_tree(encoder: ZoneEncoder) -> DomainTree:
    """Build the engine's domain tree, sharing RR objects with the flat
    zone view."""
    zone = encoder.zone
    origin = zone.origin

    # Every owner name plus all empty non-terminals between it and the apex.
    names = {origin}
    for record in zone.records:
        name = record.rname
        while name != origin:
            names.add(name)
            name = name.parent()

    by_name: Dict[DnsName, List[RR]] = {name: [] for name in names}
    for record, rr in encoder.records:
        by_name[record.rname].append(rr)

    nodes: Dict[DnsName, TreeNode] = {}
    for name in names:
        rrs = by_name.get(name, [])
        rrsets: List[RRSet] = []
        current_type: Optional[int] = None
        for rr in rrs:  # canonical order: grouped by ascending rtype
            if current_type != rr.rtype:
                rrsets.append(RRSet(rtype=rr.rtype, rrs=[]))
                current_type = rr.rtype
            rrsets[-1].rrs.append(rr)
        has_ns = any(rr.rtype == int(RRType.NS) for rr in rrs)
        nodes[name] = TreeNode(
            name=encoder.encode_name(name),
            rrsets=rrsets,
            is_delegation=has_ns and name != origin,
            is_apex=name == origin,
        )

    children: Dict[DnsName, List[DnsName]] = {name: [] for name in names}
    for name in names:
        if name != origin:
            children[name.parent()].append(name)

    def bst(sorted_children: List[DnsName]) -> Optional[TreeNode]:
        if not sorted_children:
            return None
        mid = len(sorted_children) // 2
        node = nodes[sorted_children[mid]]
        node.left = bst(sorted_children[:mid])
        node.right = bst(sorted_children[mid + 1:])
        return node

    for name in names:
        kids = sorted(
            children[name],
            key=lambda child: encoder.interner.code(child.labels[0]),
        )
        nodes[name].down = bst(kids)

    return DomainTree(root=nodes[origin])


def run_engine_concrete(version_module, tree: DomainTree, qcodes: List[int], qtype: int) -> Response:
    """Execute a version natively (GoPy modules are plain Python) — used to
    validate counterexamples and by the differential tester.

    Engine panics surface as Python IndexError/AttributeError/TypeError;
    callers treat those as runtime-error evidence.
    """
    resp = Response()
    version_module.resolve(tree, list(qcodes), qtype, resp)
    return resp

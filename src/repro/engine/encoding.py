"""Zone encoding: :mod:`repro.dns` objects <-> engine GoPy values.

The encoder owns the two interning tables of the verification methodology
(section 5.4/6.3): the order-preserving label interner (names become
reversed lists of label codes) and an rdata interner (each distinct rdata
becomes an opaque id — the data plane never interprets rdata beyond the
embedded domain name, which is carried separately for glue and chasing).

Encoded :class:`~repro.engine.gopy.structs.RR` objects are shared: the flat
zone (specification view) and the domain tree (engine view) reference the
*same* RR instances, so both views load into the same heap blocks and
record-for-record comparisons reduce to pointer equality wherever no
synthesis happened.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dns.interner import LabelInterner
from repro.dns.message import Query, Response as DnsResponse
from repro.dns.name import DnsName
from repro.dns.rdata import Rdata
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RCode, RRType
from repro.dns.zone import Zone
from repro.engine.gopy.structs import RR


class ZoneEncoder:
    """Bidirectional encoder for one zone."""

    def __init__(self, zone: Zone, extra_labels=()):
        """``extra_labels`` extends the interner universe beyond the zone's
        own labels (useful for encoding off-zone query names in tests and
        the differential tester; counterexample decoding instead uses the
        interner's gap decoding)."""
        self.zone = zone
        self.interner = LabelInterner(list(zone.label_universe()) + list(extra_labels))
        self._rdata_ids: Dict[Tuple[int, str], int] = {}
        self._rdata_objects: Dict[int, Rdata] = {}
        self._name_lists: Dict[DnsName, List[int]] = {}
        self._records: List[Tuple[ResourceRecord, RR]] = []
        for record in sorted(zone.records, key=self._record_key):
            self._records.append((record, self._make_rr(record)))

    def _record_key(self, record: ResourceRecord):
        return (
            record.rname.canonical_key(),
            int(record.rtype),
            record.rdata.to_text(),
        )

    # -- names ---------------------------------------------------------------

    def encode_name(self, name: DnsName) -> List[int]:
        """Reversed label codes; list objects are shared per name so both
        zone views alias the same heap block."""
        cached = self._name_lists.get(name)
        if cached is None:
            cached = list(self.interner.encode_name(name))
            self._name_lists[name] = cached
        return cached

    def decode_name(self, codes, overrides: Optional[Dict[int, str]] = None
                    ) -> Optional[DnsName]:
        """Decode label codes to a name. ``overrides`` maps fresh codes the
        caller allocated (see :func:`repro.serve.snapshot.encode_query_name`)
        back to their original labels, so responses that echo a query name
        decode to exactly what was asked rather than a synthesized gap
        label."""
        if not overrides:
            return self.interner.decode_name(codes)
        reversed_labels = []
        for code in codes:
            label = overrides.get(code)
            if label is None:
                label = self.interner.decode(code)
            if label is None:
                return None
            reversed_labels.append(label)
        try:
            return DnsName(tuple(reversed(reversed_labels)))
        except Exception:
            return None

    # -- rdata ------------------------------------------------------------------

    def rdata_id(self, rdata: Rdata) -> int:
        key = (int(rdata.rtype), rdata.to_text())
        existing = self._rdata_ids.get(key)
        if existing is None:
            existing = len(self._rdata_ids) + 1
            self._rdata_ids[key] = existing
            self._rdata_objects[existing] = rdata
        return existing

    def rdata_for_id(self, rdata_id: int) -> Rdata:
        try:
            return self._rdata_objects[rdata_id]
        except KeyError:
            raise KeyError(f"unknown rdata id {rdata_id}") from None

    # -- records ------------------------------------------------------------------

    def _make_rr(self, record: ResourceRecord) -> RR:
        names = record.rdata.names()
        # SOA's mname/rname are never chased or glued; every other
        # name-bearing type carries exactly the name the data plane needs.
        embedded: List[int] = []
        if names and record.rtype is not RRType.SOA:
            embedded = self.encode_name(names[0])
        return RR(
            rname=self.encode_name(record.rname),
            rtype=int(record.rtype),
            rdata_id=self.rdata_id(record.rdata),
            rdata_name=embedded,
        )

    @property
    def records(self) -> List[Tuple[ResourceRecord, RR]]:
        """(source record, encoded RR) pairs in canonical order."""
        return list(self._records)

    def encoded_rrs(self) -> List[RR]:
        return [rr for _, rr in self._records]

    # -- decoding responses --------------------------------------------------------

    def decode_rr(self, rr_view, overrides: Optional[Dict[int, str]] = None
                  ) -> Optional[ResourceRecord]:
        """Decode an RR (GoStruct, or a concretized dict from symex memory)
        back into a :class:`ResourceRecord`. Returns None when a name label
        cannot be decoded (caller re-solves)."""
        get = _accessor(rr_view)
        name = self.decode_name(get("rname"), overrides)
        if name is None:
            return None
        rdata = self.rdata_for_id(get("rdata_id"))
        return ResourceRecord(name, RRType(get("rtype")), rdata)

    def decode_response(self, query: Query, resp_view,
                        overrides: Optional[Dict[int, str]] = None
                        ) -> Optional[DnsResponse]:
        """Decode an engine/spec Response value into the dns domain model."""
        get = _accessor(resp_view)
        sections = []
        for field in ("answer", "authority", "additional"):
            out = []
            for rr_view in get(field):
                decoded = self.decode_rr(rr_view, overrides)
                if decoded is None:
                    return None
                out.append(decoded)
            sections.append(tuple(out))
        return DnsResponse(
            query=query,
            rcode=RCode(get("rcode")),
            aa=bool(get("aa")),
            answer=sections[0],
            authority=sections[1],
            additional=sections[2],
        )


def _accessor(view):
    if isinstance(view, dict):
        return view.__getitem__
    return lambda field: getattr(view, field)

"""Shared GoPy library modules (the stable yellow boxes of Figure 5)."""

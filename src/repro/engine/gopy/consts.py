"""Shared engine constants (GoPy module).

All values are plain ints so the frontend can inline them as IR constants.
RR type numbers follow the IANA registry, matching
:class:`repro.dns.rtypes.RRType`, so the symbolic qtype ranges over real
wire values.
"""

# Name comparison results (Figure 4 / Figure 10).
NOMATCH = 0
EXACTMATCH = 1
PARTIALMATCH = 2

# TreeSearch outcomes.
SR_MISS = 0
SR_EXACT = 1
SR_DELEGATION = 2
SR_WILDCARD = 3

# Response codes (RFC 1035).
RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_REFUSED = 5

# RR types (IANA).
TYPE_A = 1
TYPE_NS = 2
TYPE_CNAME = 5
TYPE_SOA = 6
TYPE_PTR = 12
TYPE_MX = 15
TYPE_TXT = 16
TYPE_AAAA = 28
TYPE_SRV = 33
TYPE_DNAME = 39
TYPE_ANY = 255
TYPE_CAA = 257
# In-house apex-alias type, flattened at query time by engine v4.0+.
TYPE_ALIAS = 65280

# The interner always assigns the wildcard label '*' the smallest code.
WILDCARD_LABEL = 1

# CNAME chains longer than this are cut off (both engine and spec).
MAX_CHASE = 8

# Raw byte-level name encoding (Figure 4): label separator byte ('.').
SEP = 46

"""The Name library layer, abstract form (GoPy module).

Operations on domain names in the reversed label-code encoding of
Figure 10. These are the word-level functions the rest of the engine and
the top-level specification share; their byte-level production counterpart
(:mod:`repro.engine.gopy.rawname`) is proven to refine this form by the
section 6.3 experiment.
"""

from repro.engine.gopy.consts import EXACTMATCH, NOMATCH, PARTIALMATCH


def is_prefix(prefix: list[int], name: list[int]) -> bool:
    """True iff ``name`` equals or lies under ``prefix`` (``prefix`` is an
    ancestor-or-self in the domain tree sense)."""
    if len(prefix) > len(name):
        return False
    i = 0
    while i < len(prefix):
        if prefix[i] != name[i]:
            return False
        i = i + 1
    return True


def name_equal(a: list[int], b: list[int]) -> bool:
    """Label-wise equality."""
    if len(a) != len(b):
        return False
    return is_prefix(a, b)


def name_match(q: list[int], n: list[int]) -> int:
    """The Figure 10 three-way comparison: EXACTMATCH when equal,
    PARTIALMATCH when ``q`` lies strictly under ``n``, NOMATCH otherwise."""
    if not is_prefix(n, q):
        return NOMATCH
    if len(q) == len(n):
        return EXACTMATCH
    return PARTIALMATCH


def shared_prefix_len(a: list[int], b: list[int]) -> int:
    """Number of leading (most-significant) labels the names share; the
    closest-encloser depth computation of RFC 4592."""
    i = 0
    while i < len(a) and i < len(b):
        if a[i] != b[i]:
            return i
        i = i + 1
    return i

"""The NodeStack library layer (GoPy module).

Reproduces the Figure 3 anti-pattern: ``stack_push`` maintains the
``level`` field, but resolution modules read ``stack.level`` and index
``stack.nodes`` directly instead of going through accessor functions. The
flexible memory model (section 5.1) is what lets the verifier abstract this
structure only partially.
"""

from repro.engine.gopy.structs import NodeStack, TreeNode


def stack_new() -> NodeStack:
    return NodeStack()


def stack_push(s: NodeStack, n: TreeNode) -> None:
    s.nodes.append(n)
    s.level = s.level + 1


def stack_top(s: NodeStack) -> TreeNode:
    """Top of the stack; callers are *supposed* to use this, but production
    code frequently inlines the field accesses instead."""
    return s.nodes[s.level - 1]


def stack_is_empty(s: NodeStack) -> bool:
    return s.level == 0

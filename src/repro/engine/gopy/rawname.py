"""The Name library layer, raw production form (GoPy module).

Figure 4 of the paper: domain names as raw byte arrays (presentation order,
``'.'``-separated labels), compared byte-to-byte from the last position —
the low-level implementation "our developers intentionally choose ... to
avoid extra overhead", and the reason the Name layer needs a manual
abstract specification rather than whole-program symbolic execution.

The section 6.3 refinement experiment proves ``compare_raw`` on byte arrays
equivalent to :func:`repro.engine.gopy.nameops.name_match` on interned
label codes, under the interface relation linking the two encodings.
"""

from repro.engine.gopy.consts import EXACTMATCH, NOMATCH, PARTIALMATCH, SEP


def compare_raw(n1: list[int], n2: list[int]) -> int:
    """Compare query bytes ``n1`` with node bytes ``n2``.

    Returns EXACTMATCH when the byte strings are identical, PARTIALMATCH
    when ``n2`` is a whole-label suffix of ``n1`` (``n1`` lies under
    ``n2``), NOMATCH otherwise.
    """
    i = len(n1) - 1
    j = len(n2) - 1
    while i >= 0 and j >= 0:
        if n1[i] != n2[j]:
            return NOMATCH
        i = i - 1
        j = j - 1
    if i < 0 and j < 0:
        return EXACTMATCH
    if j < 0:
        # n2 exhausted: n1 extends it; only a label boundary makes it a
        # subdomain ("wwwexample.com" must not match "example.com").
        if n1[i] == SEP:
            return PARTIALMATCH
        return NOMATCH
    # n1 exhausted but n2 goes on: the query is *above* the node.
    return NOMATCH


def compare_raw_noboundary(n1: list[int], n2: list[int]) -> int:
    """A historical, buggy revision of :func:`compare_raw` kept for the
    refinement experiment's negative control: it omits the label-boundary
    check, so ``"wwwexample.com"`` wrongly partial-matches ``"example.com"``.
    The section 6.3 refinement proof rejects this version."""
    i = len(n1) - 1
    j = len(n2) - 1
    while i >= 0 and j >= 0:
        if n1[i] != n2[j]:
            return NOMATCH
        i = i - 1
        j = j - 1
    if i < 0 and j < 0:
        return EXACTMATCH
    if j < 0:
        return PARTIALMATCH
    return NOMATCH


def raw_equal(n1: list[int], n2: list[int]) -> bool:
    """Byte-wise equality, forward scan (used by unit tests)."""
    if len(n1) != len(n2):
        return False
    i = 0
    while i < len(n1):
        if n1[i] != n2[i]:
            return False
        i = i + 1
    return True

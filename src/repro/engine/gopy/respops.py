"""Write accessors for the layer result structs (GoPy module).

Figure 3's root cause is resolution code writing ``Response`` and
``SearchResult`` fields directly across the layer boundary. This module
gives the cleaned-up engine versions (``verified``) and the top-level
specification a named seam for those writes: the mutation lives with the
struct, and a grep for ``resp_set_aa`` finds every place the AA bit can
change. The legacy versions (``v1.0``–``v4.0``, ``dev``) keep the raw
field writes on purpose — they are the linter's GP301 exhibit.

These are *write* accessors only: result structs are produced on one side
of a layer interface and read on the other, so consumers reading
``sr.kind`` or ``resp.answer`` is the intended protocol, not a smell
(contrast ``NodeStack``, whose owner exports read accessors the
production code bypasses — that read path is GP303).
"""

from repro.engine.gopy.structs import Response, SearchResult, TreeNode


def resp_set_rcode(resp: Response, rcode: int) -> None:
    resp.rcode = rcode


def resp_set_aa(resp: Response, aa: bool) -> None:
    resp.aa = aa


def sr_set_kind(sr: SearchResult, kind: int) -> None:
    sr.kind = kind


def sr_set_node(sr: SearchResult, node: TreeNode) -> None:
    sr.node = node

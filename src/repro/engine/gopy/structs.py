"""Shared engine data structures (GoPy module).

Domain names are reversed lists of interned label codes (section 6.3:
``www.example.com`` becomes ``[code("com"), code("example"), code("www")]``).
Rdata is an interned id plus the embedded domain name (for NS/CNAME/MX/SRV
targets) that CNAME chasing and glue lookups need.

``TreeNode`` is the Figure 11 shape: ``down`` points into a binary search
tree of children (``left``/``right`` ordered by the child's own label).
``NodeStack`` reproduces the Figure 3 anti-pattern on purpose: ``push``
maintains ``level``, yet other modules read and index through ``level``
directly — the poor encapsulation the flexible memory model must tolerate.
"""

from repro.frontend.runtime import GoStruct


class RR(GoStruct):
    """One resource record in engine encoding."""

    rname: list[int]
    rtype: int
    rdata_id: int
    rdata_name: list[int]


class RRSet(GoStruct):
    """All records of one type at one node."""

    rtype: int
    rrs: list[RR]


class TreeNode(GoStruct):
    """Domain-tree node; ``name`` is the full reversed-code name."""

    name: list[int]
    left: "TreeNode"
    right: "TreeNode"
    down: "TreeNode"
    rrsets: list[RRSet]
    is_delegation: bool
    is_apex: bool


class DomainTree(GoStruct):
    """The in-heap domain tree for one zone."""

    root: TreeNode


class NodeStack(GoStruct):
    """Custom stack of visited nodes (Figure 3's leaky encapsulation)."""

    nodes: list[TreeNode]
    level: int


class SearchResult(GoStruct):
    """TreeSearch output holder (section 5.3 result-struct pattern)."""

    kind: int
    node: TreeNode


class Response(GoStruct):
    """DNS response under construction."""

    rcode: int
    aa: bool
    answer: list[RR]
    authority: list[RR]
    additional: list[RR]


class FlatZone(GoStruct):
    """The specification's view of a zone: origin plus a flat RR list
    (Figure 9: the spec filters this list instead of walking a tree)."""

    origin: list[int]
    rrs: list[RR]

"""Engine versions.

``v1_0`` is the base version; ``v2_0`` and ``v3_0`` are iterations with new
features and performance work; ``dev`` is the iteration after ``v3_0``;
``verified`` is the fully corrected engine every Table-2 bug class is fixed
in. Each version is a self-contained module (production iterations carry
their history as near-copies — exactly the legacy-code reality section 3.3
describes), sharing only the stable library layers.
"""

"""Engine version 3.0.

Iteration over v2.0: the v2.0 bug classes are fixed and an empty-node
fast path was added to Find to skip record-set scans on nodes that exist
only as interior tree entries. The fast path misjudges empty non-terminals
(Table 2, row 8), marked inline with a ``seeded bug`` comment.
"""

from repro.engine.gopy.consts import (
    MAX_CHASE,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    SR_DELEGATION,
    SR_EXACT,
    SR_MISS,
    SR_WILDCARD,
    TYPE_A,
    TYPE_AAAA,
    TYPE_ANY,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NS,
    TYPE_SOA,
    TYPE_SRV,
    WILDCARD_LABEL,
)
from repro.engine.gopy.nameops import is_prefix
from repro.engine.gopy.nodestack import stack_new, stack_push
from repro.engine.gopy.structs import (
    DomainTree,
    NodeStack,
    Response,
    RR,
    RRSet,
    SearchResult,
    TreeNode,
)


def find_wildcard_child(node: TreeNode) -> TreeNode:
    """BST walk for the '*' child (smallest label code, hence leftmost)."""
    child = node.down
    while child is not None:
        clabel = child.name[len(child.name) - 1]
        if clabel == WILDCARD_LABEL:
            return child
        if WILDCARD_LABEL < clabel:
            child = child.left
        else:
            child = child.right
    return None


def tree_search(tree: DomainTree, q: list[int], stack: NodeStack, sr: SearchResult) -> None:
    """Walk down the domain tree matching ``q`` (section 6.4).

    Visited nodes are pushed onto ``stack``; the result holder gets the
    match kind and the relevant node (exact node, delegation node, wildcard
    source, or closest encloser on a miss).
    """
    node = tree.root
    stack_push(stack, node)
    while True:
        if len(q) == len(node.name):
            sr.kind = SR_EXACT
            sr.node = node
            return
        if node.is_delegation:
            sr.kind = SR_DELEGATION
            sr.node = node
            return
        qlabel = q[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if qlabel == clabel:
                break
            if qlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            wc = find_wildcard_child(node)
            if wc is not None:
                sr.kind = SR_WILDCARD
                sr.node = wc
                return
            sr.kind = SR_MISS
            sr.node = node
            return
        stack_push(stack, child)
        node = child


def get_rrset(node: TreeNode, t: int) -> RRSet:
    i = 0
    while i < len(node.rrsets):
        rs = node.rrsets[i]
        if rs.rtype == t:
            return rs
        i = i + 1
    return None


def locate_node(tree: DomainTree, name: list[int]) -> TreeNode:
    """Exact-name lookup that ignores delegation cuts — glue records live
    below cuts. Returns None when the node does not exist."""
    node = tree.root
    if not is_prefix(node.name, name):
        return None
    while True:
        if len(name) == len(node.name):
            return node
        nlabel = name[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if nlabel == clabel:
                break
            if nlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            return None
        node = child


def append_soa(tree: DomainTree, resp: Response) -> None:
    soa = get_rrset(tree.root, TYPE_SOA)
    if soa is not None:
        i = 0
        while i < len(soa.rrs):
            resp.authority.append(soa.rrs[i])
            i = i + 1


def add_glue_for_name(tree: DomainTree, target: list[int], resp: Response) -> None:
    """Append in-zone A/AAAA records of ``target`` to the additional
    section (RFC 1034 additional-section processing)."""
    if not is_prefix(tree.root.name, target):
        return
    node = locate_node(tree, target)
    if node is None:
        return
    a = get_rrset(node, TYPE_A)
    if a is not None:
        i = 0
        while i < len(a.rrs):
            resp.additional.append(a.rrs[i])
            i = i + 1
    aaaa = get_rrset(node, TYPE_AAAA)
    if aaaa is not None:
        i = 0
        while i < len(aaaa.rrs):
            resp.additional.append(aaaa.rrs[i])
            i = i + 1


def make_referral(tree: DomainTree, node: TreeNode, resp: Response, at_top: bool) -> None:
    """Delegation response: NS of the cut into authority, glue into
    additional. Referrals are not authoritative."""
    if at_top:
        resp.aa = False
    ns = get_rrset(node, TYPE_NS)
    if ns is None:
        return
    i = 0
    while i < len(ns.rrs):
        resp.authority.append(ns.rrs[i])
        i = i + 1
    i = 0
    while i < len(ns.rrs):
        add_glue_for_name(tree, ns.rrs[i].rdata_name, resp)
        i = i + 1


def copy_with_name(rr: RR, rname: list[int]) -> RR:
    """Wildcard synthesis (RFC 4592): copy the RR, replace its owner name
    with the query name — the newobject pattern of section 5.3."""
    return RR(rname=rname, rtype=rr.rtype, rdata_id=rr.rdata_id, rdata_name=rr.rdata_name)


def append_matching(node: TreeNode, qtype: int, synth: bool, sname: list[int], resp: Response) -> int:
    """Append RRs at ``node`` matching ``qtype`` (or all for ANY) to the
    answer section; synthesize owner names on wildcard matches."""
    count = 0
    i = 0
    while i < len(node.rrsets):
        rs = node.rrsets[i]
        if rs.rtype == qtype or qtype == TYPE_ANY:
            j = 0
            while j < len(rs.rrs):
                rr = rs.rrs[j]
                if synth:
                    resp.answer.append(copy_with_name(rr, sname))
                else:
                    resp.answer.append(rr)
                count = count + 1
                j = j + 1
        i = i + 1
    return count


def add_glue_for_answers(tree: DomainTree, resp: Response, base: int) -> None:
    """Glue for NS/MX/SRV answers appended at or after index ``base``."""
    i = base
    while i < len(resp.answer):
        rr = resp.answer[i]
        if rr.rtype == TYPE_NS or rr.rtype == TYPE_MX or rr.rtype == TYPE_SRV:
            add_glue_for_name(tree, rr.rdata_name, resp)
        i = i + 1


def answer_node(tree: DomainTree, sname: list[int], qtype: int, node: TreeNode, synth: bool, resp: Response, depth: int) -> None:
    """Authoritative answer construction at a matched node: CNAME handling
    (with in-zone chasing), qtype matching, NODATA, and glue."""
    cname = get_rrset(node, TYPE_CNAME)
    if cname is not None and qtype != TYPE_CNAME and qtype != TYPE_ANY:
        rr = cname.rrs[0]
        resp.aa = True
        if synth:
            resp.answer.append(copy_with_name(rr, sname))
        else:
            resp.answer.append(rr)
        if depth < MAX_CHASE and is_prefix(tree.root.name, rr.rdata_name):
            chase_lookup(tree, rr.rdata_name, qtype, resp, depth + 1)
        return
    base = len(resp.answer)
    count = append_matching(node, qtype, synth, sname, resp)
    resp.aa = True
    if count == 0:
        append_soa(tree, resp)
    else:
        add_glue_for_answers(tree, resp, base)


def chase_search(tree: DomainTree, name: list[int], sr: SearchResult) -> None:
    """Tree walk for chased (in-zone, concrete) names. Near-duplicate of
    tree_search — legacy function division kept as-is in production."""
    node = tree.root
    while True:
        if len(name) == len(node.name):
            sr.kind = SR_EXACT
            sr.node = node
            return
        if node.is_delegation:
            sr.kind = SR_DELEGATION
            sr.node = node
            return
        nlabel = name[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if nlabel == clabel:
                break
            if nlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            wc = find_wildcard_child(node)
            if wc is not None:
                sr.kind = SR_WILDCARD
                sr.node = wc
                return
            sr.kind = SR_MISS
            sr.node = node
            return
        node = child


def chase_lookup(tree: DomainTree, name: list[int], qtype: int, resp: Response, depth: int) -> None:
    """Continue resolution at a CNAME target."""
    sr = SearchResult()
    chase_search(tree, name, sr)
    if sr.kind == SR_DELEGATION:
        make_referral(tree, sr.node, resp, False)
        return
    if sr.kind == SR_EXACT:
        if sr.node.is_delegation:
            make_referral(tree, sr.node, resp, False)
            return
        answer_node(tree, name, qtype, sr.node, False, resp, depth)
        return
    if sr.kind == SR_WILDCARD:
        answer_node(tree, name, qtype, sr.node, True, resp, depth)
        return
    resp.rcode = RCODE_NXDOMAIN
    resp.aa = True
    append_soa(tree, resp)


def find(tree: DomainTree, q: list[int], qtype: int, resp: Response) -> None:
    """The Find layer: dispatch on the TreeSearch result."""
    stack = stack_new()
    sr = SearchResult()
    tree_search(tree, q, stack, sr)
    if sr.kind == SR_DELEGATION:
        make_referral(tree, sr.node, resp, True)
        return
    if sr.kind == SR_EXACT:
        if sr.node.is_delegation:
            make_referral(tree, sr.node, resp, True)
            return
        if len(sr.node.rrsets) == 0:
            # seeded bug (Table 2 #8): the v3.0 empty-node fast path treats
            # empty non-terminals as misses and re-runs the wildcard
            # machinery from the parent, but RFC 4592 says an existing
            # (empty) name blocks wildcard synthesis and answers NODATA.
            parent = stack.nodes[stack.level - 2]
            wc = find_wildcard_child(parent)
            if wc is not None:
                answer_node(tree, q, qtype, wc, True, resp, 0)
                return
            resp.rcode = RCODE_NXDOMAIN
            resp.aa = True
            append_soa(tree, resp)
            return
        answer_node(tree, q, qtype, sr.node, False, resp, 0)
        return
    if sr.kind == SR_WILDCARD:
        answer_node(tree, q, qtype, sr.node, True, resp, 0)
        return
    resp.rcode = RCODE_NXDOMAIN
    resp.aa = True
    append_soa(tree, resp)


def resolve(tree: DomainTree, q: list[int], qtype: int, resp: Response) -> None:
    """Top-level entry point of the DNS authoritative engine."""
    resp.rcode = RCODE_NOERROR
    resp.aa = False
    if not is_prefix(tree.root.name, q):
        resp.rcode = RCODE_REFUSED
        return
    find(tree, q, qtype, resp)

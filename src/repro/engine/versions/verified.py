"""Engine version ``verified``: every known bug class fixed.

This is the reference data plane: TreeSearch walks the concrete domain
tree, Find implements RFC 1034 section 4.3.2 resolution with RFC 4592
wildcards, CNAME chasing, referrals and additional-section (glue)
processing, and Resolve is the top-level entry point verified against the
top-level specification.
"""

from repro.engine.gopy.consts import (
    MAX_CHASE,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    RCODE_REFUSED,
    SR_DELEGATION,
    SR_EXACT,
    SR_MISS,
    SR_WILDCARD,
    TYPE_A,
    TYPE_AAAA,
    TYPE_ANY,
    TYPE_CNAME,
    TYPE_MX,
    TYPE_NS,
    TYPE_SOA,
    TYPE_SRV,
    WILDCARD_LABEL,
)
from repro.engine.gopy.nameops import is_prefix
from repro.engine.gopy.nodestack import stack_new, stack_push
from repro.engine.gopy.respops import (
    resp_set_aa,
    resp_set_rcode,
    sr_set_kind,
    sr_set_node,
)
from repro.engine.gopy.structs import (
    DomainTree,
    NodeStack,
    Response,
    RR,
    RRSet,
    SearchResult,
    TreeNode,
)


def find_wildcard_child(node: TreeNode) -> TreeNode:
    """BST walk for the '*' child (smallest label code, hence leftmost)."""
    child = node.down
    while child is not None:
        clabel = child.name[len(child.name) - 1]
        if clabel == WILDCARD_LABEL:
            return child
        if WILDCARD_LABEL < clabel:
            child = child.left
        else:
            child = child.right
    return None


def tree_search(tree: DomainTree, q: list[int], stack: NodeStack, sr: SearchResult) -> None:
    """Walk down the domain tree matching ``q`` (section 6.4).

    Visited nodes are pushed onto ``stack``; the result holder gets the
    match kind and the relevant node (exact node, delegation node, wildcard
    source, or closest encloser on a miss).
    """
    node = tree.root
    stack_push(stack, node)
    while True:
        if len(q) == len(node.name):
            sr_set_kind(sr, SR_EXACT)
            sr_set_node(sr, node)
            return
        if node.is_delegation:
            sr_set_kind(sr, SR_DELEGATION)
            sr_set_node(sr, node)
            return
        qlabel = q[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if qlabel == clabel:
                break
            if qlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            wc = find_wildcard_child(node)
            if wc is not None:
                sr_set_kind(sr, SR_WILDCARD)
                sr_set_node(sr, wc)
                return
            sr_set_kind(sr, SR_MISS)
            sr_set_node(sr, node)
            return
        stack_push(stack, child)
        node = child


def get_rrset(node: TreeNode, t: int) -> RRSet:
    i = 0
    while i < len(node.rrsets):
        rs = node.rrsets[i]
        if rs.rtype == t:
            return rs
        i = i + 1
    return None


def locate_node(tree: DomainTree, name: list[int]) -> TreeNode:
    """Exact-name lookup that ignores delegation cuts — glue records live
    below cuts. Returns None when the node does not exist."""
    node = tree.root
    if not is_prefix(node.name, name):
        return None
    while True:
        if len(name) == len(node.name):
            return node
        nlabel = name[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if nlabel == clabel:
                break
            if nlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            return None
        node = child


def append_soa(tree: DomainTree, resp: Response) -> None:
    soa = get_rrset(tree.root, TYPE_SOA)
    if soa is not None:
        i = 0
        while i < len(soa.rrs):
            resp.authority.append(soa.rrs[i])
            i = i + 1


def add_glue_for_name(tree: DomainTree, target: list[int], resp: Response) -> None:
    """Append in-zone A/AAAA records of ``target`` to the additional
    section (RFC 1034 additional-section processing)."""
    if not is_prefix(tree.root.name, target):
        return
    node = locate_node(tree, target)
    if node is None:
        return
    a = get_rrset(node, TYPE_A)
    if a is not None:
        i = 0
        while i < len(a.rrs):
            resp.additional.append(a.rrs[i])
            i = i + 1
    aaaa = get_rrset(node, TYPE_AAAA)
    if aaaa is not None:
        i = 0
        while i < len(aaaa.rrs):
            resp.additional.append(aaaa.rrs[i])
            i = i + 1


def make_referral(tree: DomainTree, node: TreeNode, resp: Response) -> None:
    """Delegation response: NS of the cut into authority, glue into
    additional. Top-level callers clear the AA bit first — referrals are
    not authoritative; the old ``at_top`` control flag is gone."""
    ns = get_rrset(node, TYPE_NS)
    if ns is None:
        return
    i = 0
    while i < len(ns.rrs):
        resp.authority.append(ns.rrs[i])
        i = i + 1
    i = 0
    while i < len(ns.rrs):
        add_glue_for_name(tree, ns.rrs[i].rdata_name, resp)
        i = i + 1


def copy_with_name(rr: RR, rname: list[int]) -> RR:
    """Wildcard synthesis (RFC 4592): copy the RR, replace its owner name
    with the query name — the newobject pattern of section 5.3."""
    return RR(rname=rname, rtype=rr.rtype, rdata_id=rr.rdata_id, rdata_name=rr.rdata_name)


def append_matching(node: TreeNode, qtype: int, synth: bool, sname: list[int], resp: Response) -> int:
    """Append RRs at ``node`` matching ``qtype`` (or all for ANY) to the
    answer section; synthesize owner names on wildcard matches."""
    count = 0
    i = 0
    while i < len(node.rrsets):
        rs = node.rrsets[i]
        if rs.rtype == qtype or qtype == TYPE_ANY:
            j = 0
            while j < len(rs.rrs):
                rr = rs.rrs[j]
                if synth:
                    resp.answer.append(copy_with_name(rr, sname))
                else:
                    resp.answer.append(rr)
                count = count + 1
                j = j + 1
        i = i + 1
    return count


def add_glue_for_answers(tree: DomainTree, resp: Response, base: int) -> None:
    """Glue for NS/MX/SRV answers appended at or after index ``base``."""
    i = base
    while i < len(resp.answer):
        rr = resp.answer[i]
        if rr.rtype == TYPE_NS or rr.rtype == TYPE_MX or rr.rtype == TYPE_SRV:
            add_glue_for_name(tree, rr.rdata_name, resp)
        i = i + 1


def answer_node(tree: DomainTree, sname: list[int], qtype: int, node: TreeNode, synth: bool, resp: Response, depth: int) -> None:
    """Authoritative answer construction at a matched node: CNAME handling
    (with in-zone chasing), qtype matching, NODATA, and glue."""
    cname = get_rrset(node, TYPE_CNAME)
    if cname is not None and qtype != TYPE_CNAME and qtype != TYPE_ANY:
        rr = cname.rrs[0]
        resp_set_aa(resp, True)
        if synth:
            resp.answer.append(copy_with_name(rr, sname))
        else:
            resp.answer.append(rr)
        if depth < MAX_CHASE and is_prefix(tree.root.name, rr.rdata_name):
            chase_lookup(tree, rr.rdata_name, qtype, resp, depth + 1)
        return
    base = len(resp.answer)
    count = append_matching(node, qtype, synth, sname, resp)
    resp_set_aa(resp, True)
    if count == 0:
        append_soa(tree, resp)
    else:
        add_glue_for_answers(tree, resp, base)


def chase_search(tree: DomainTree, name: list[int], sr: SearchResult) -> None:
    """Tree walk for chased (in-zone, concrete) names. Near-duplicate of
    tree_search — legacy function division kept as-is in production."""
    node = tree.root
    while True:
        if len(name) == len(node.name):
            sr_set_kind(sr, SR_EXACT)
            sr_set_node(sr, node)
            return
        if node.is_delegation:
            sr_set_kind(sr, SR_DELEGATION)
            sr_set_node(sr, node)
            return
        nlabel = name[len(node.name)]
        child = node.down
        while child is not None:
            clabel = child.name[len(child.name) - 1]
            if nlabel == clabel:
                break
            if nlabel < clabel:
                child = child.left
            else:
                child = child.right
        if child is None:
            wc = find_wildcard_child(node)
            if wc is not None:
                sr_set_kind(sr, SR_WILDCARD)
                sr_set_node(sr, wc)
                return
            sr_set_kind(sr, SR_MISS)
            sr_set_node(sr, node)
            return
        node = child


def chase_lookup(tree: DomainTree, name: list[int], qtype: int, resp: Response, depth: int) -> None:
    """Continue resolution at a CNAME target."""
    sr = SearchResult()
    chase_search(tree, name, sr)
    if sr.kind == SR_DELEGATION:
        make_referral(tree, sr.node, resp)
        return
    if sr.kind == SR_EXACT:
        if sr.node.is_delegation:
            make_referral(tree, sr.node, resp)
            return
        answer_node(tree, name, qtype, sr.node, False, resp, depth)
        return
    if sr.kind == SR_WILDCARD:
        answer_node(tree, name, qtype, sr.node, True, resp, depth)
        return
    resp_set_rcode(resp, RCODE_NXDOMAIN)
    resp_set_aa(resp, True)
    append_soa(tree, resp)


def find(tree: DomainTree, q: list[int], qtype: int, resp: Response) -> None:
    """The Find layer: dispatch on the TreeSearch result."""
    stack = stack_new()
    sr = SearchResult()
    tree_search(tree, q, stack, sr)
    if sr.kind == SR_DELEGATION:
        resp_set_aa(resp, False)
        make_referral(tree, sr.node, resp)
        return
    if sr.kind == SR_EXACT:
        if sr.node.is_delegation:
            resp_set_aa(resp, False)
            make_referral(tree, sr.node, resp)
            return
        answer_node(tree, q, qtype, sr.node, False, resp, 0)
        return
    if sr.kind == SR_WILDCARD:
        answer_node(tree, q, qtype, sr.node, True, resp, 0)
        return
    resp_set_rcode(resp, RCODE_NXDOMAIN)
    resp_set_aa(resp, True)
    append_soa(tree, resp)


def resolve(tree: DomainTree, q: list[int], qtype: int, resp: Response) -> None:
    """Top-level entry point of the DNS authoritative engine."""
    resp_set_rcode(resp, RCODE_NOERROR)
    resp_set_aa(resp, False)
    if not is_prefix(tree.root.name, q):
        resp_set_rcode(resp, RCODE_REFUSED)
        return
    find(tree, q, qtype, resp)

"""The GoPy frontend: restricted Python to AbsLLVM.

The paper compiles its Go engine with GoLLVM and trusts the emitted IR as
reference semantics (section 4.1). We replace Go by **GoPy** — a restricted,
Go-flavoured subset of Python — and this frontend replaces GoLLVM. The
correspondence is deliberate:

- GoPy classes are Go structs; all aggregate values have reference
  semantics (a variable of struct or list type holds a pointer);
- every attribute access compiles to a nil-check guarded ``getelementptr`` +
  ``load``/``store``; every index compiles to a bounds-check guarded access
  — the checks branch to explicit :class:`~repro.ir.instructions.Panic`
  blocks exactly like the Go runtime checks GoLLVM makes explicit;
- ``and``/``or`` short-circuit through the CFG, loops are real back-edges,
  and locals live in ``alloca`` slots (the ``-O0`` discipline, no phis).

Because GoPy is genuine Python, every engine version is *also* directly
executable and unit-testable concretely — which is how counterexamples
produced by the verifier get validated end-to-end.

Public API: :func:`compile_module`, :func:`compile_source` and the
:class:`GoPyError` diagnostic.
"""

from repro.frontend.errors import GoPyError
from repro.frontend.compiler import compile_module, compile_source

__all__ = ["GoPyError", "compile_module", "compile_source"]

"""GoPy-to-AbsLLVM compiler (the GoLLVM stand-in).

``compile_module`` takes an imported Python module written in the GoPy
subset and produces an :class:`repro.ir.Module`. The subset (documented in
:mod:`repro.frontend`) is deliberately Go-shaped:

- module level: ``GoStruct`` subclasses (structs), integer/boolean
  constants, and top-level functions with fully annotated signatures;
- statements: assignments (including attribute/subscript targets and
  augmented forms), ``if``/``elif``/``else``, ``while``, ``for`` over
  ``range(...)`` or a list, ``return``, ``break``, ``continue``, ``pass``;
- expressions: int/bool literals, ``None``, arithmetic (``+ - *`` with at
  most one symbolic factor), comparisons, short-circuit ``and``/``or``,
  ``not``, conditional expressions, ``len``, ``.append``, list literals,
  struct constructors with keyword fields, and calls to other GoPy
  functions.

Safety checks are compiled in exactly where Go's runtime would trap:
attribute access emits a nil-check branch to a ``panic`` block, and
subscripts emit lower/upper bounds checks. Proving those panic blocks
unreachable is the safety property of section 6.1.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import typing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.errors import GoPyError
from repro.frontend.runtime import GoStruct, is_gopy_struct
from repro.ir import (
    Alloca,
    BasicBlock,
    BinOp,
    Br,
    Call,
    CondBr,
    ConstBool,
    ConstInt,
    ConstNull,
    Function,
    GEP,
    ICmp,
    IntType,
    ListType,
    Load,
    Module,
    NamedType,
    Panic,
    PointerType,
    Register,
    Ret,
    Store,
    StructType,
    Type,
    validate_module,
)
from repro.ir.types import BOOL, INT, VOID, BoolType, VoidType

#: Wildcard pointer type carried by ``None`` literals until unified.
NULL_TYPE = PointerType(VOID)


class Signature:
    def __init__(self, params: Sequence[Tuple[str, Type]], ret: Type):
        self.params = tuple(params)
        self.ret = ret


class ModuleContext:
    """Everything the per-function compiler needs to resolve names."""

    def __init__(self, name: str):
        self.ir_module = Module(name)
        self.consts: Dict[str, object] = {}
        self.signatures: Dict[str, Signature] = {}
        self.source_name = name

    def define_struct_from_class(self, cls: type) -> None:
        if cls.__name__ in self.ir_module.types:
            return
        annotations: Dict[str, object] = {}
        for klass in reversed(cls.__mro__):
            if klass in (object, GoStruct):
                continue
            annotations.update(getattr(klass, "__annotations__", {}) or {})
        fields = [
            (field, resolve_runtime_annotation(annotation))
            for field, annotation in annotations.items()
        ]
        self.ir_module.types.define(cls.__name__, fields)

    def struct(self, name: str) -> StructType:
        return self.ir_module.types.get(name)

    def has_struct(self, name: str) -> bool:
        return name in self.ir_module.types

    def resolve(self, ty: Type) -> Type:
        return self.ir_module.types.resolve(ty)


# ---------------------------------------------------------------------------
# Annotation resolution (two routes: runtime objects and source AST).
# ---------------------------------------------------------------------------


def resolve_runtime_annotation(annotation) -> Type:
    """Annotation attached to a live object (class/int/string form)."""
    if annotation is int or annotation == "int":
        return INT
    if annotation is bool or annotation == "bool":
        return BOOL
    if annotation is None or annotation is type(None) or annotation == "None":
        return VOID
    if isinstance(annotation, str):
        node = ast.parse(annotation, mode="eval").body
        return resolve_annotation_ast(node)
    if isinstance(annotation, type) and issubclass(annotation, GoStruct):
        return PointerType(NamedType(annotation.__name__))
    origin = typing.get_origin(annotation)
    if origin is list:
        (element,) = typing.get_args(annotation)
        return PointerType(ListType(resolve_runtime_annotation(element)))
    raise GoPyError(f"unsupported annotation {annotation!r}")


def resolve_annotation_ast(node: ast.AST) -> Type:
    """Annotation in source form."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return VOID
        if isinstance(node.value, str):
            inner = ast.parse(node.value, mode="eval").body
            return resolve_annotation_ast(inner)
        raise GoPyError(f"unsupported annotation literal {node.value!r}", node)
    if isinstance(node, ast.Name):
        if node.id == "int":
            return INT
        if node.id == "bool":
            return BOOL
        return PointerType(NamedType(node.id))
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("list", "List"):
            return PointerType(ListType(resolve_annotation_ast(node.slice)))
        raise GoPyError("only list[...] generics are supported", node)
    raise GoPyError(f"unsupported annotation syntax {ast.dump(node)}", node)


def signature_from_ast(fdef: ast.FunctionDef) -> Signature:
    params: List[Tuple[str, Type]] = []
    args = fdef.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs or args.defaults:
        raise GoPyError(
            f"function {fdef.name}: only plain positional parameters allowed", fdef
        )
    for arg in args.args:
        if arg.annotation is None:
            raise GoPyError(
                f"function {fdef.name}: parameter {arg.arg!r} needs a type annotation",
                fdef,
            )
        params.append((arg.arg, resolve_annotation_ast(arg.annotation)))
    ret = VOID if fdef.returns is None else resolve_annotation_ast(fdef.returns)
    return Signature(params, ret)


# ---------------------------------------------------------------------------
# Module compilation
# ---------------------------------------------------------------------------


def compile_module(py_module, extern_modules: Sequence[Module] = ()) -> Module:
    """Compile an imported GoPy module.

    Structs and constants are collected from the module's runtime namespace
    (so imports from shared GoPy library modules resolve naturally);
    functions *defined in this file* are compiled, while imported GoPy
    functions become extern calls — the call sites the verification pipeline
    later binds to abstract specifications or summaries (section 4.3).
    """
    source = inspect.getsource(py_module)
    tree = ast.parse(textwrap.dedent(source))
    ctx = ModuleContext(py_module.__name__.rsplit(".", 1)[-1])

    for extern in extern_modules:
        for struct in extern.types.structs():
            if not ctx.has_struct(struct.name):
                ctx.ir_module.types.define(struct.name, struct.fields)
        for function in extern.functions.values():
            ctx.signatures.setdefault(
                function.name, Signature(function.params, function.return_type)
            )

    for name, obj in vars(py_module).items():
        if name.startswith("_"):
            continue
        if is_gopy_struct(obj):
            ctx.define_struct_from_class(obj)
        elif isinstance(obj, bool):
            ctx.consts[name] = obj
        elif isinstance(obj, int):
            ctx.consts[name] = obj
        elif inspect.isfunction(obj):
            try:
                func_tree = ast.parse(textwrap.dedent(inspect.getsource(obj)))
            except (OSError, TypeError) as exc:
                raise GoPyError(f"cannot read source of function {name}: {exc}")
            fdef = func_tree.body[0]
            if isinstance(fdef, ast.FunctionDef):
                ctx.signatures[obj.__name__] = signature_from_ast(fdef)

    local_defs = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    for fdef in local_defs:
        ctx.signatures[fdef.name] = signature_from_ast(fdef)

    for fdef in local_defs:
        function = _FunctionCompiler(ctx, fdef).compile()
        ctx.ir_module.add_function(function)

    validate_module(ctx.ir_module)
    return ctx.ir_module


def compile_source(source: str, name: str = "gopy") -> Module:
    """Compile GoPy source text (used by tests and small examples).

    The source is executed once so struct classes and constants exist as
    runtime objects, then compiled exactly like an imported module.
    """
    namespace: Dict[str, object] = {"GoStruct": GoStruct}
    exec(compile(textwrap.dedent(source), f"<{name}>", "exec"), namespace)

    class _Shim:
        pass

    shim = _Shim()
    shim.__dict__.update(namespace)
    shim.__name__ = name

    tree = ast.parse(textwrap.dedent(source))
    ctx = ModuleContext(name)
    for attr, obj in namespace.items():
        if attr.startswith("_") or attr == "GoStruct":
            continue
        if is_gopy_struct(obj):
            ctx.define_struct_from_class(obj)
        elif isinstance(obj, bool) or (
            isinstance(obj, int) and not isinstance(obj, bool)
        ):
            ctx.consts[attr] = obj

    local_defs = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    for fdef in local_defs:
        ctx.signatures[fdef.name] = signature_from_ast(fdef)
    for fdef in local_defs:
        ctx.ir_module.add_function(_FunctionCompiler(ctx, fdef).compile())
    validate_module(ctx.ir_module)
    return ctx.ir_module


# ---------------------------------------------------------------------------
# Function compilation
# ---------------------------------------------------------------------------


class _FunctionCompiler:
    def __init__(self, ctx: ModuleContext, fdef: ast.FunctionDef):
        self.ctx = ctx
        self.fdef = fdef
        self.sig = ctx.signatures[fdef.name]
        self.fn = Function(fdef.name, self.sig.params, self.sig.ret)
        self._counter = 0
        self._line = getattr(fdef, "lineno", None)
        self.entry = self.fn.new_block("entry")
        self.entry.source_line = self._line
        self.body = self.fn.new_block("body")
        self.body.source_line = self._line
        self.current = self.body
        self.slots: Dict[str, Tuple[Register, Type]] = {}
        self.loops: List[Tuple[str, str]] = []  # (continue_label, break_label)
        for pname, ptype in self.sig.params:
            slot = self._fresh(f"{pname}.slot")
            self.entry.append(Alloca(slot, ptype))
            self.entry.append(Store(Register(pname), slot))
            self.slots[pname] = (slot, ptype)

    # -- small helpers ----------------------------------------------------

    def _fresh(self, hint: str = "r") -> Register:
        self._counter += 1
        return Register(f"{hint}.{self._counter}")

    def _emit(self, insn) -> None:
        self.current.append(insn)

    def _new_block(self, hint: str) -> BasicBlock:
        block = self.fn.new_block(hint)
        block.source_line = self._line
        return block

    def _branch_to(self, block: BasicBlock) -> None:
        if not self.current.terminated:
            self.current.terminate(Br(block.label))
        self.current = block

    def _error(self, message: str, node: ast.AST) -> GoPyError:
        return GoPyError(
            f"{self.fdef.name}: {message}", node, self.ctx.source_name
        )

    def _slot_for(self, name: str, ty: Type, node: ast.AST) -> Tuple[Register, Type]:
        existing = self.slots.get(name)
        if existing is not None:
            slot, declared = existing
            self._check_assignable(declared, ty, node)
            return slot, declared
        slot = self._fresh(f"{name}.slot")
        if ty == NULL_TYPE:
            raise self._error(
                f"cannot infer type of {name!r} from a bare None; annotate it",
                node,
            )
        self.entry.append(Alloca(slot, ty))
        self.slots[name] = (slot, ty)
        return slot, ty

    def _check_assignable(self, expected: Type, actual: Type, node: ast.AST) -> None:
        if expected == actual:
            return
        if actual == NULL_TYPE and isinstance(expected, PointerType):
            return
        raise self._error(f"type mismatch: expected {expected!r}, got {actual!r}", node)

    # -- compilation entry --------------------------------------------------

    def compile(self) -> Function:
        self.compile_stmts(self.fdef.body)
        if not self.current.terminated:
            if isinstance(self.sig.ret, VoidType):
                self.current.terminate(Ret(None))
            else:
                self.current.terminate(
                    Panic("missing-return", f"{self.fdef.name} fell off the end")
                )
        self.entry.terminate(Br(self.body.label))
        return self.fn

    # -- statements -----------------------------------------------------------

    def compile_stmts(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if self.current.terminated:
                break  # dead code after return/break/continue
            self.compile_stmt(stmt)

    def compile_stmt(self, node: ast.stmt) -> None:
        self._line = getattr(node, "lineno", self._line)
        if isinstance(node, ast.Assign):
            self._compile_assign(node)
        elif isinstance(node, ast.AnnAssign):
            self._compile_ann_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._compile_aug_assign(node)
        elif isinstance(node, ast.If):
            self._compile_if(node)
        elif isinstance(node, ast.While):
            self._compile_while(node)
        elif isinstance(node, ast.For):
            self._compile_for(node)
        elif isinstance(node, ast.Return):
            self._compile_return(node)
        elif isinstance(node, ast.Break):
            if not self.loops:
                raise self._error("break outside loop", node)
            self.current.terminate(Br(self.loops[-1][1]))
        elif isinstance(node, ast.Continue):
            if not self.loops:
                raise self._error("continue outside loop", node)
            self.current.terminate(Br(self.loops[-1][0]))
        elif isinstance(node, ast.Pass):
            pass
        elif isinstance(node, ast.Expr):
            self._compile_expr_stmt(node)
        else:
            raise self._error(
                f"statement {type(node).__name__} is outside the GoPy subset", node
            )

    def _compile_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise self._error("chained assignment is not supported", node)
        target = node.targets[0]
        if isinstance(target, ast.Name):
            expected = None
            if target.id in self.slots:
                expected = self.slots[target.id][1]
            value, ty = self.compile_expr(node.value, expected)
            slot, _ = self._slot_for(target.id, ty, node)
            self._emit(Store(value, slot))
        elif isinstance(target, ast.Attribute):
            addr, field_ty = self._compile_field_addr(target)
            value, ty = self.compile_expr(node.value, field_ty)
            self._check_assignable(field_ty, ty, node)
            self._emit(Store(value, addr))
        elif isinstance(target, ast.Subscript):
            addr, elem_ty = self._compile_index_addr(target)
            value, ty = self.compile_expr(node.value, elem_ty)
            self._check_assignable(elem_ty, ty, node)
            self._emit(Store(value, addr))
        else:
            raise self._error(
                f"cannot assign to {type(target).__name__}", node
            )

    def _compile_ann_assign(self, node: ast.AnnAssign) -> None:
        if not isinstance(node.target, ast.Name):
            raise self._error("annotated assignment must target a name", node)
        declared = resolve_annotation_ast(node.annotation)
        if node.value is None:
            raise self._error("declaration without a value is not supported", node)
        value, ty = self.compile_expr(node.value, declared)
        self._check_assignable(declared, ty, node)
        slot, _ = self._slot_for(node.target.id, declared, node)
        self._emit(Store(value, slot))

    def _compile_aug_assign(self, node: ast.AugAssign) -> None:
        op = {ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul"}.get(type(node.op))
        if op is None:
            raise self._error(
                f"augmented operator {type(node.op).__name__} not supported", node
            )
        read = ast.copy_location(
            ast.BinOp(left=_as_load(node.target), op=node.op, right=node.value), node
        )
        write = ast.copy_location(
            ast.Assign(targets=[node.target], value=read), node
        )
        ast.fix_missing_locations(write)
        self._compile_assign(write)

    def _compile_if(self, node: ast.If) -> None:
        cond = self.compile_cond(node.test)
        then_block = self._new_block("then")
        else_block = self._new_block("else") if node.orelse else None
        merge = self._new_block("merge")
        self.current.terminate(
            CondBr(cond, then_block.label, (else_block or merge).label)
        )
        self.current = then_block
        self.compile_stmts(node.body)
        if not self.current.terminated:
            self.current.terminate(Br(merge.label))
        if else_block is not None:
            self.current = else_block
            self.compile_stmts(node.orelse)
            if not self.current.terminated:
                self.current.terminate(Br(merge.label))
        self.current = merge

    def _compile_while(self, node: ast.While) -> None:
        if node.orelse:
            raise self._error("while/else is not supported", node)
        header = self._new_block("while.header")
        body = self._new_block("while.body")
        exit_block = self._new_block("while.exit")
        self.current.terminate(Br(header.label))
        self.current = header
        cond = self.compile_cond(node.test)
        self.current.terminate(CondBr(cond, body.label, exit_block.label))
        self.loops.append((header.label, exit_block.label))
        self.current = body
        self.compile_stmts(node.body)
        if not self.current.terminated:
            self.current.terminate(Br(header.label))
        self.loops.pop()
        self.current = exit_block

    def _compile_for(self, node: ast.For) -> None:
        if node.orelse:
            raise self._error("for/else is not supported", node)
        if not isinstance(node.target, ast.Name):
            raise self._error("for target must be a plain name", node)
        if (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            self._compile_for_range(node)
        else:
            self._compile_for_list(node)

    def _compile_for_range(self, node: ast.For) -> None:
        args = node.iter.args
        if len(args) == 1:
            lo_node, hi_node = None, args[0]
        elif len(args) == 2:
            lo_node, hi_node = args
        else:
            raise self._error("range() supports 1 or 2 arguments", node)
        lo_value = (
            ConstInt(0) if lo_node is None else self._expect_int(lo_node)
        )
        hi_value = self._expect_int(hi_node)
        hi_slot = self._fresh("range.hi.slot")
        self.entry.append(Alloca(hi_slot, INT))
        self._emit(Store(hi_value, hi_slot))

        var_slot, _ = self._slot_for(node.target.id, INT, node)
        self._emit(Store(lo_value, var_slot))

        header = self._new_block("for.header")
        body = self._new_block("for.body")
        incr = self._new_block("for.incr")
        exit_block = self._new_block("for.exit")

        self.current.terminate(Br(header.label))
        self.current = header
        i_val = self._fresh("i")
        self._emit(Load(i_val, var_slot))
        hi_val = self._fresh("hi")
        self._emit(Load(hi_val, hi_slot))
        cond = self._fresh("cond")
        self._emit(ICmp(cond, "slt", i_val, hi_val))
        self.current.terminate(CondBr(cond, body.label, exit_block.label))

        self.loops.append((incr.label, exit_block.label))
        self.current = body
        self.compile_stmts(node.body)
        if not self.current.terminated:
            self.current.terminate(Br(incr.label))
        self.loops.pop()

        self.current = incr
        i_again = self._fresh("i")
        self._emit(Load(i_again, var_slot))
        i_next = self._fresh("i.next")
        self._emit(BinOp(i_next, "add", i_again, ConstInt(1)))
        self._emit(Store(i_next, var_slot))
        self.current.terminate(Br(header.label))
        self.current = exit_block

    def _compile_for_list(self, node: ast.For) -> None:
        lst_value, lst_ty = self.compile_expr(node.iter)
        lst_ty = self._expect_list(lst_ty, node.iter)
        elem_ty = lst_ty.pointee.element

        lst_slot = self._fresh("for.list.slot")
        self.entry.append(Alloca(lst_slot, lst_ty))
        self._emit(Store(lst_value, lst_slot))
        idx_slot = self._fresh("for.idx.slot")
        self.entry.append(Alloca(idx_slot, INT))
        self._emit(Store(ConstInt(0), idx_slot))
        var_slot, _ = self._slot_for(node.target.id, elem_ty, node)

        header = self._new_block("for.header")
        body = self._new_block("for.body")
        incr = self._new_block("for.incr")
        exit_block = self._new_block("for.exit")

        self.current.terminate(Br(header.label))
        self.current = header
        idx = self._fresh("idx")
        self._emit(Load(idx, idx_slot))
        lst = self._fresh("lst")
        self._emit(Load(lst, lst_slot))
        length = self._fresh("len")
        self._emit(Call(length, "list.len", [lst]))
        cond = self._fresh("cond")
        self._emit(ICmp(cond, "slt", idx, length))
        self.current.terminate(CondBr(cond, body.label, exit_block.label))

        self.current = body
        # Structurally in-bounds: load without the guard the subscript path
        # emits (the loop condition is the bounds check).
        elem_ptr = self._fresh("elem.ptr")
        self._emit(GEP(elem_ptr, lst, [idx]))
        elem = self._fresh("elem")
        self._emit(Load(elem, elem_ptr))
        self._emit(Store(elem, var_slot))
        self.loops.append((incr.label, exit_block.label))
        self.compile_stmts(node.body)
        if not self.current.terminated:
            self.current.terminate(Br(incr.label))
        self.loops.pop()

        self.current = incr
        idx_again = self._fresh("idx")
        self._emit(Load(idx_again, idx_slot))
        idx_next = self._fresh("idx.next")
        self._emit(BinOp(idx_next, "add", idx_again, ConstInt(1)))
        self._emit(Store(idx_next, idx_slot))
        self.current.terminate(Br(header.label))
        self.current = exit_block

    def _compile_return(self, node: ast.Return) -> None:
        if isinstance(self.sig.ret, VoidType):
            if node.value is not None:
                raise self._error("void function returns a value", node)
            self.current.terminate(Ret(None))
            return
        if node.value is None:
            raise self._error("non-void function returns nothing", node)
        value, ty = self.compile_expr(node.value, self.sig.ret)
        self._check_assignable(self.sig.ret, ty, node)
        self.current.terminate(Ret(value))

    def _compile_expr_stmt(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            return  # docstring
        if not isinstance(node.value, ast.Call):
            raise self._error("expression statements must be calls", node)
        self._compile_call(node.value, expected=None, as_statement=True)

    # -- expressions ------------------------------------------------------------

    def compile_cond(self, node: ast.expr):
        value, ty = self.compile_expr(node, BOOL)
        if not isinstance(ty, BoolType):
            raise self._error(
                "condition must be boolean (use 'is None' / explicit comparison)",
                node,
            )
        return value

    def _expect_int(self, node: ast.expr):
        value, ty = self.compile_expr(node, INT)
        if not isinstance(ty, IntType):
            raise self._error(f"expected int, got {ty!r}", node)
        return value

    def _expect_list(self, ty: Type, node: ast.expr) -> PointerType:
        if isinstance(ty, PointerType) and isinstance(ty.pointee, ListType):
            return ty
        raise self._error(f"expected a list, got {ty!r}", node)

    def compile_expr(
        self, node: ast.expr, expected: Optional[Type] = None
    ) -> Tuple[object, Type]:
        if isinstance(node, ast.Constant):
            return self._compile_constant(node, expected)
        if isinstance(node, ast.Name):
            return self._compile_name(node)
        if isinstance(node, ast.BinOp):
            return self._compile_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._compile_unaryop(node)
        if isinstance(node, ast.Compare):
            return self._compile_compare(node)
        if isinstance(node, ast.BoolOp):
            return self._compile_boolop(node)
        if isinstance(node, ast.IfExp):
            return self._compile_ifexp(node, expected)
        if isinstance(node, ast.Call):
            return self._compile_call(node, expected, as_statement=False)
        if isinstance(node, ast.Attribute):
            addr, field_ty = self._compile_field_addr(node)
            dest = self._fresh("fld")
            self._emit(Load(dest, addr))
            return dest, field_ty
        if isinstance(node, ast.Subscript):
            addr, elem_ty = self._compile_index_addr(node)
            dest = self._fresh("elem")
            self._emit(Load(dest, addr))
            return dest, elem_ty
        if isinstance(node, ast.List):
            return self._compile_list_literal(node, expected)
        raise self._error(
            f"expression {type(node).__name__} is outside the GoPy subset", node
        )

    def _compile_constant(self, node: ast.Constant, expected: Optional[Type]):
        value = node.value
        if value is None:
            return ConstNull(), (expected if isinstance(expected, PointerType) else NULL_TYPE)
        if isinstance(value, bool):
            return ConstBool(value), BOOL
        if isinstance(value, int):
            return ConstInt(value), INT
        raise self._error(f"unsupported literal {value!r}", node)

    def _compile_name(self, node: ast.Name):
        if node.id in self.slots:
            slot, ty = self.slots[node.id]
            dest = self._fresh(node.id)
            self._emit(Load(dest, slot))
            return dest, ty
        if node.id in self.ctx.consts:
            const = self.ctx.consts[node.id]
            if isinstance(const, bool):
                return ConstBool(const), BOOL
            return ConstInt(const), INT
        raise self._error(f"unknown name {node.id!r}", node)

    def _compile_binop(self, node: ast.BinOp):
        op = {ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul"}.get(type(node.op))
        if op is None:
            raise self._error(
                f"operator {type(node.op).__name__} not supported (GoPy has + - * only)",
                node,
            )
        lhs = self._expect_int(node.left)
        rhs = self._expect_int(node.right)
        dest = self._fresh("bin")
        self._emit(BinOp(dest, op, lhs, rhs))
        return dest, INT

    def _compile_unaryop(self, node: ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            value = self.compile_cond(node.operand)
            dest = self._fresh("not")
            self._emit(BinOp(dest, "xor", value, ConstBool(True)))
            return dest, BOOL
        if isinstance(node.op, ast.USub):
            value = self._expect_int(node.operand)
            dest = self._fresh("neg")
            self._emit(BinOp(dest, "sub", ConstInt(0), value))
            return dest, INT
        raise self._error(f"unary {type(node.op).__name__} not supported", node)

    _CMP = {
        ast.Eq: "eq",
        ast.NotEq: "ne",
        ast.Lt: "slt",
        ast.LtE: "sle",
        ast.Gt: "sgt",
        ast.GtE: "sge",
    }

    def _compile_compare(self, node: ast.Compare):
        if len(node.ops) != 1:
            raise self._error("chained comparisons are not supported", node)
        op = node.ops[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            pred = "eq" if isinstance(op, ast.Is) else "ne"
            lhs, lty = self.compile_expr(node.left)
            rhs, rty = self.compile_expr(node.comparators[0])
            if not (
                isinstance(lty, PointerType) or isinstance(rty, PointerType)
            ):
                raise self._error("'is' comparisons are for pointers/None only", node)
            dest = self._fresh("cmp")
            self._emit(ICmp(dest, pred, lhs, rhs))
            return dest, BOOL
        pred = self._CMP.get(type(op))
        if pred is None:
            raise self._error(f"comparison {type(op).__name__} not supported", node)
        lhs, lty = self.compile_expr(node.left)
        rhs, rty = self.compile_expr(node.comparators[0], lty)
        if isinstance(lty, PointerType) or isinstance(rty, PointerType):
            if pred not in ("eq", "ne"):
                raise self._error("pointers only compare with ==/!=", node)
        elif isinstance(lty, BoolType) or isinstance(rty, BoolType):
            if pred not in ("eq", "ne"):
                raise self._error("bools only compare with ==/!=", node)
            if type(lty) is not type(rty):
                raise self._error("comparing bool with non-bool", node)
        elif not (isinstance(lty, IntType) and isinstance(rty, IntType)):
            raise self._error(f"cannot compare {lty!r} with {rty!r}", node)
        dest = self._fresh("cmp")
        self._emit(ICmp(dest, pred, lhs, rhs))
        return dest, BOOL

    def _compile_boolop(self, node: ast.BoolOp):
        is_and = isinstance(node.op, ast.And)
        slot = self._fresh("boolop.slot")
        self.entry.append(Alloca(slot, BOOL))
        end = self._new_block("boolop.end")
        short = self._new_block("boolop.short")
        short.append(Store(ConstBool(not is_and), slot))
        short.terminate(Br(end.label))
        for value_node in node.values[:-1]:
            cond = self.compile_cond(value_node)
            next_block = self._new_block("boolop.next")
            if is_and:
                self.current.terminate(CondBr(cond, next_block.label, short.label))
            else:
                self.current.terminate(CondBr(cond, short.label, next_block.label))
            self.current = next_block
        last = self.compile_cond(node.values[-1])
        self._emit(Store(last, slot))
        self.current.terminate(Br(end.label))
        self.current = end
        dest = self._fresh("boolop")
        self._emit(Load(dest, slot))
        return dest, BOOL

    def _compile_ifexp(self, node: ast.IfExp, expected: Optional[Type]):
        cond = self.compile_cond(node.test)
        then_block = self._new_block("sel.then")
        else_block = self._new_block("sel.else")
        end = self._new_block("sel.end")
        self.current.terminate(CondBr(cond, then_block.label, else_block.label))

        self.current = then_block
        then_val, then_ty = self.compile_expr(node.body, expected)
        slot_ty = then_ty if then_ty != NULL_TYPE else expected
        then_exit = self.current

        self.current = else_block
        else_val, else_ty = self.compile_expr(node.orelse, expected or then_ty)
        if slot_ty is None or slot_ty == NULL_TYPE:
            slot_ty = else_ty
        self._check_assignable(slot_ty, else_ty, node)
        if then_ty != NULL_TYPE:
            self._check_assignable(slot_ty, then_ty, node)
        else_exit = self.current

        slot = self._fresh("sel.slot")
        self.entry.append(Alloca(slot, slot_ty))
        then_exit.append(Store(then_val, slot))
        then_exit.terminate(Br(end.label))
        else_exit.append(Store(else_val, slot))
        else_exit.terminate(Br(end.label))
        self.current = end
        dest = self._fresh("sel")
        self._emit(Load(dest, slot))
        return dest, slot_ty

    def _compile_list_literal(self, node: ast.List, expected: Optional[Type]):
        if node.elts:
            first_val, first_ty = self.compile_expr(node.elts[0])
            list_ty = PointerType(ListType(first_ty))
            dest = self._fresh("list")
            self._emit(Call(dest, "list.new", [], type_hint=list_ty.pointee))
            self._emit(Call(None, "list.append", [dest, first_val]))
            for elt in node.elts[1:]:
                value, ty = self.compile_expr(elt, first_ty)
                self._check_assignable(first_ty, ty, elt)
                self._emit(Call(None, "list.append", [dest, value]))
            return dest, list_ty
        if expected is None or not (
            isinstance(expected, PointerType) and isinstance(expected.pointee, ListType)
        ):
            raise self._error(
                "empty list literal needs a list[...] annotation", node
            )
        dest = self._fresh("list")
        self._emit(Call(dest, "list.new", [], type_hint=expected.pointee))
        return dest, expected

    def _compile_call(
        self, node: ast.Call, expected: Optional[Type], as_statement: bool
    ):
        if node.keywords and not (
            isinstance(node.func, ast.Name) and self.ctx.has_struct(node.func.id)
        ):
            raise self._error("keyword arguments only in struct constructors", node)

        if isinstance(node.func, ast.Attribute):
            if node.func.attr != "append":
                raise self._error(
                    f"method {node.func.attr!r} not supported (only .append)", node
                )
            lst_value, lst_ty = self.compile_expr(node.func.value)
            lst_ty = self._expect_list(lst_ty, node.func.value)
            if len(node.args) != 1:
                raise self._error("append takes exactly one argument", node)
            elem_ty = lst_ty.pointee.element
            value, ty = self.compile_expr(node.args[0], elem_ty)
            self._check_assignable(elem_ty, ty, node)
            self._nil_check(lst_value, "append on nil list")
            self._emit(Call(None, "list.append", [lst_value, value]))
            return None, VOID

        if not isinstance(node.func, ast.Name):
            raise self._error("calls must target plain names", node)
        name = node.func.id

        if name == "len":
            if len(node.args) != 1:
                raise self._error("len takes one argument", node)
            lst_value, lst_ty = self.compile_expr(node.args[0])
            self._expect_list(lst_ty, node.args[0])
            self._nil_check(lst_value, "len of nil list")
            dest = self._fresh("len")
            self._emit(Call(dest, "list.len", [lst_value]))
            return dest, INT

        if self.ctx.has_struct(name):
            struct = self.ctx.struct(name)
            if node.args:
                raise self._error(
                    "struct constructors take keyword arguments only", node
                )
            dest = self._fresh("new")
            self._emit(Call(dest, "newobject", [], type_hint=NamedType(name)))
            for kw in node.keywords:
                if kw.arg is None:
                    raise self._error("**kwargs not supported", node)
                idx = struct.field_index(kw.arg)
                field_ty = struct.field_type(idx)
                value, ty = self.compile_expr(kw.value, field_ty)
                self._check_assignable(field_ty, ty, kw.value)
                addr = self._fresh("fld.ptr")
                self._emit(GEP(addr, dest, [ConstInt(idx)]))
                self._emit(Store(value, addr))
            return dest, PointerType(NamedType(name))

        sig = self.ctx.signatures.get(name)
        if sig is None:
            raise self._error(f"call to unknown function {name!r}", node)
        if len(node.args) != len(sig.params):
            raise self._error(
                f"{name} expects {len(sig.params)} arguments, got {len(node.args)}",
                node,
            )
        args = []
        for arg_node, (_, pty) in zip(node.args, sig.params):
            value, ty = self.compile_expr(arg_node, pty)
            self._check_assignable(pty, ty, arg_node)
            args.append(value)
        if isinstance(sig.ret, VoidType):
            self._emit(Call(None, name, args))
            if not as_statement:
                raise self._error(f"void call {name} used as a value", node)
            return None, VOID
        dest = self._fresh("call")
        self._emit(Call(dest, name, args))
        return dest, sig.ret

    # -- memory access with safety checks ------------------------------------

    def _nil_check(self, ptr_value, description: str) -> None:
        cond = self._fresh("isnil")
        self._emit(ICmp(cond, "eq", ptr_value, ConstNull()))
        panic_block = self._new_block("panic")
        panic_block.terminate(Panic("nil-dereference", description))
        ok = self._new_block("ok")
        self.current.terminate(CondBr(cond, panic_block.label, ok.label))
        self.current = ok

    def _compile_field_addr(self, node: ast.Attribute):
        value, ty = self.compile_expr(node.value)
        if not (isinstance(ty, PointerType) and isinstance(ty.pointee, (NamedType, StructType))):
            raise self._error(
                f"attribute access on non-struct value of type {ty!r}", node
            )
        struct = self.ctx.resolve(ty.pointee)
        self._nil_check(value, f"{struct.name}.{node.attr}")
        try:
            idx = struct.field_index(node.attr)
        except KeyError as exc:
            raise self._error(str(exc), node) from exc
        addr = self._fresh("fld.ptr")
        self._emit(GEP(addr, value, [ConstInt(idx)]))
        return addr, struct.field_type(idx)

    def _compile_index_addr(self, node: ast.Subscript):
        lst_value, lst_ty = self.compile_expr(node.value)
        lst_ty = self._expect_list(lst_ty, node.value)
        self._nil_check(lst_value, "index into nil list")
        index = self._expect_int(node.slice)

        length = self._fresh("len")
        self._emit(Call(length, "list.len", [lst_value]))
        negative = self._fresh("isneg")
        self._emit(ICmp(negative, "slt", index, ConstInt(0)))
        panic_low = self._new_block("panic")
        panic_low.terminate(Panic("index-out-of-bounds", "negative index"))
        ok_low = self._new_block("ok")
        self.current.terminate(CondBr(negative, panic_low.label, ok_low.label))
        self.current = ok_low

        too_big = self._fresh("istoobig")
        self._emit(ICmp(too_big, "sge", index, length))
        panic_high = self._new_block("panic")
        panic_high.terminate(Panic("index-out-of-bounds", "index >= len"))
        ok_high = self._new_block("ok")
        self.current.terminate(CondBr(too_big, panic_high.label, ok_high.label))
        self.current = ok_high

        addr = self._fresh("elem.ptr")
        self._emit(GEP(addr, lst_value, [index]))
        return addr, lst_ty.pointee.element


def _as_load(target: ast.expr) -> ast.expr:
    """Convert an assignment target node into the matching load node."""
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    ast.fix_missing_locations(clone)
    return clone

"""Frontend diagnostics.

Frontend errors and lint findings share one textual shape so editors and
CI log-scrapers need a single matcher::

    path:line:col: RULE-ID: message

:func:`format_diagnostic` is that shape's only implementation;
:class:`GoPyError` (compiler) and :class:`repro.analysis.lint.Finding`
both render through it.
"""

from __future__ import annotations

import ast
from typing import Optional

#: Rule id stamped on restricted-subset / type errors raised by the
#: compiler, so frontend rejections and lint findings share a namespace.
SUBSET_RULE = "GP101"


def format_diagnostic(path: str, line: Optional[int], col: Optional[int],
                      rule: str, message: str) -> str:
    """The one ``path:line:col: rule: message`` renderer."""
    where = path or "<gopy>"
    if line is not None:
        where += f":{line}"
        if col is not None:
            where += f":{col}"
    return f"{where}: {rule}: {message}"


class GoPyError(SyntaxError):
    """A construct outside the GoPy subset, or a type error within it.

    Carries the source position when available so engine developers get
    compiler-quality diagnostics: ``.path``/``.line``/``.col`` are the
    structured location, ``.rule`` the stable rule id, and
    ``.diagnostic()`` the shared ``path:line:col: rule: message`` form.
    """

    def __init__(self, message: str, node: Optional[ast.AST] = None,
                 source_name: str = "", rule: str = SUBSET_RULE):
        location = ""
        if node is not None and hasattr(node, "lineno"):
            location = f" (at {source_name or '<gopy>'}:{node.lineno})"
        super().__init__(message + location)
        self.node = node
        self.raw_message = message
        self.path = source_name or "<gopy>"
        self.line: Optional[int] = getattr(node, "lineno", None)
        self.col: Optional[int] = getattr(node, "col_offset", None)
        self.rule = rule

    def diagnostic(self) -> str:
        return format_diagnostic(
            self.path, self.line, self.col, self.rule, self.raw_message
        )

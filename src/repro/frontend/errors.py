"""Frontend diagnostics."""

from __future__ import annotations

import ast
from typing import Optional


class GoPyError(SyntaxError):
    """A construct outside the GoPy subset, or a type error within it.

    Carries the source line when available so engine developers get
    compiler-quality diagnostics.
    """

    def __init__(self, message: str, node: Optional[ast.AST] = None, source_name: str = ""):
        location = ""
        if node is not None and hasattr(node, "lineno"):
            location = f" (at {source_name or '<gopy>'}:{node.lineno})"
        super().__init__(message + location)
        self.node = node

"""Runtime support for GoPy modules.

GoPy source files are real Python: the same code that the frontend compiles
to AbsLLVM also runs concretely under CPython. That dual life is what lets
DNS-V validate every symbolic counterexample by concrete re-execution.

:class:`GoStruct` gives GoPy classes Go-struct semantics at runtime:
annotated fields with zero values (``int`` -> 0, ``bool`` -> False, struct
references -> ``None``, lists -> fresh ``[]``), a keyword constructor, and
attribute errors for undeclared fields.
"""

from __future__ import annotations

import typing
from typing import Any, Dict, Tuple


def _zero_value(annotation: Any):
    """The Go zero value for an annotation (evaluated or textual)."""
    if annotation in (int, "int"):
        return 0
    if annotation in (bool, "bool"):
        return False
    text = getattr(annotation, "__name__", None) or str(annotation)
    if text.startswith("list") or text.startswith("typing.List") or text.startswith("List"):
        return []
    origin = typing.get_origin(annotation)
    if origin is list:
        return []
    # Struct references (classes or forward-reference strings) start nil.
    return None


class GoStruct:
    """Base class for GoPy structs.

    Subclasses declare fields with class-level annotations only::

        class TreeNode(GoStruct):
            label: int
            left: "TreeNode"
            down: "TreeNode"

    ``TreeNode()`` zero-initialises every field; keyword arguments override.
    """

    __gopy_struct__ = True

    def __init__(self, **kwargs: Any):
        annotations = _collect_annotations(type(self))
        for name, annotation in annotations.items():
            setattr(self, name, _zero_value(annotation))
        for name, value in kwargs.items():
            if name not in annotations:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r}"
                )
            setattr(self, name, value)

    def __repr__(self) -> str:
        annotations = _collect_annotations(type(self))
        inner = ", ".join(f"{n}={getattr(self, n)!r}" for n in annotations)
        return f"{type(self).__name__}({inner})"


def _collect_annotations(cls: type) -> Dict[str, Any]:
    """Annotations across the GoStruct subclass chain, base-first."""
    out: Dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        out.update(getattr(klass, "__annotations__", {}) or {})
    return out


def is_gopy_struct(obj: Any) -> bool:
    return isinstance(obj, type) and issubclass(obj, GoStruct) and obj is not GoStruct


def struct_fields(cls: type) -> Tuple[str, ...]:
    return tuple(_collect_annotations(cls))

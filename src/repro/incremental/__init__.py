"""Incremental verification: digests, deltas, caching, the delta-driven
engine and the watch daemon.

``digest``/``delta``/``cache``/``serialize`` are dependency-light;
``engine`` and ``watch`` import the core pipeline, so they are exposed
lazily to keep ``repro.core.pipeline`` ``import``-able from here without a
cycle.
"""

from repro.incremental.cache import SummaryCache, default_cache_dir
from repro.incremental.delta import (
    DeltaImpact,
    Partition,
    RecordChange,
    ZoneDelta,
    affected_partitions,
    delta_impact,
    diff_zones,
    partition_closure,
    partition_digest,
    partition_of_name,
    random_delta,
    zone_partitions,
)
from repro.incremental.digest import (
    engine_digest,
    layers_digest,
    record_digest,
    records_digest,
    source_digest,
    subtree_digest,
    subtree_records,
    top_labels,
    zone_digest,
)

_LAZY = {
    "QueryPlanner": ("repro.incremental.planner.protocol", "QueryPlanner"),
    "PlanUnit": ("repro.incremental.planner.protocol", "PlanUnit"),
    "make_planner": ("repro.incremental.planner.protocol", "make_planner"),
    "ByLabelPlanner": ("repro.incremental.planner.by_label", "ByLabelPlanner"),
    "ECPlanner": ("repro.incremental.planner.ec", "ECPlanner"),
    "LabelGraph": ("repro.incremental.planner.label_graph", "LabelGraph"),
    "IncrementalVerifier": ("repro.incremental.engine", "IncrementalVerifier"),
    "IncrementalOutcome": ("repro.incremental.engine", "IncrementalOutcome"),
    "ReuseStats": ("repro.incremental.engine", "ReuseStats"),
    "bug_sort_key": ("repro.incremental.engine", "bug_sort_key"),
    "WatchDaemon": ("repro.incremental.watch", "WatchDaemon"),
    "WatchEvent": ("repro.incremental.watch", "WatchEvent"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "SummaryCache",
    "default_cache_dir",
    "DeltaImpact",
    "Partition",
    "RecordChange",
    "ZoneDelta",
    "affected_partitions",
    "delta_impact",
    "diff_zones",
    "partition_closure",
    "partition_digest",
    "partition_of_name",
    "random_delta",
    "zone_partitions",
    "engine_digest",
    "layers_digest",
    "record_digest",
    "records_digest",
    "source_digest",
    "subtree_digest",
    "subtree_records",
    "top_labels",
    "zone_digest",
    "QueryPlanner",
    "PlanUnit",
    "make_planner",
    "ByLabelPlanner",
    "ECPlanner",
    "LabelGraph",
    "IncrementalVerifier",
    "IncrementalOutcome",
    "ReuseStats",
    "bug_sort_key",
    "WatchDaemon",
    "WatchEvent",
]

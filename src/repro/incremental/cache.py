"""Persistent content-addressed cache for verification artifacts.

Entries are JSON documents addressed by the SHA-256 of their *key
material* — a canonical-JSON description of everything the cached value
was computed from (engine digest, zone/closure digests, encoding depth,
format version). Matching key material therefore guarantees the stored
value is still valid; there is no time-based expiry.

Layout on disk (default ``~/.cache/repro``, overridable by constructor
argument or the ``REPRO_CACHE_DIR`` environment variable)::

    <cache_dir>/<kind>/<sha256>.json

where ``kind`` namespaces artifact types (``summary``, ``refinement``,
``partition``). Each file holds ``{"key": <material>, "value": <payload>}``
so entries are self-describing and collisions (different material, same
digest — astronomically unlikely) are detected on read.

A small in-memory layer fronts the disk store; eviction is LRU by file
mtime when ``max_entries`` is exceeded. Counters (hits/misses/puts/
evictions) feed the ``--json`` CLI output and the watch daemon's
per-update log lines.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.incremental.digest import digest_text
from repro.resilience import faults

#: Bump when any serialized payload layout changes; keyed into every entry.
CACHE_FORMAT = 2

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _canonical(material) -> str:
    return json.dumps(material, sort_keys=True, separators=(",", ":"))


class SummaryCache:
    """Content-addressed JSON store (see module docstring).

    ``memory_only=True`` keeps everything in RAM — used by sessions that
    want intra-process reuse without touching the filesystem.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        max_entries: int = 4096,
        memory_only: bool = False,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.max_entries = max_entries
        self.memory_only = memory_only
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        self.io_errors = 0
        self._memory: Dict[Tuple[str, str], object] = {}

    # -- keys ----------------------------------------------------------------

    def address(self, kind: str, key_material) -> str:
        """The content address of an entry: SHA-256 over kind, format
        version and canonical key material."""
        return digest_text(kind, str(CACHE_FORMAT), _canonical(key_material))

    def _path(self, kind: str, address: str) -> Path:
        return self.cache_dir / kind / f"{address}.json"

    # -- store ---------------------------------------------------------------

    def get(self, kind: str, key_material):
        """The cached payload for ``key_material``, or None on miss."""
        address = self.address(kind, key_material)
        mem_key = (kind, address)
        if mem_key in self._memory:
            self.hits += 1
            return self._memory[mem_key]
        if not self.memory_only:
            path = self._path(kind, address)
            entry = None
            try:
                faults.maybe_raise(faults.SITE_CACHE_READ)
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                if faults.should_fire(faults.SITE_CACHE_CORRUPT):
                    # Simulated torn write: truncating drives the genuine
                    # decode-error handling below, not a shortcut.
                    text = text[: max(1, len(text) // 2)]
                entry = json.loads(text)
            except FileNotFoundError:
                pass
            except OSError:
                # Transient or permission IO: a miss, counted; the caller
                # recomputes and (maybe) republishes.
                self.io_errors += 1
            except json.JSONDecodeError:
                self._evict_corrupt(path)
            if entry is not None and not isinstance(entry, dict):
                # Parsed but not an entry object — also corruption.
                self._evict_corrupt(path)
                entry = None
            if entry is not None and entry.get("key") == json.loads(
                _canonical(key_material)
            ):
                value = entry.get("value")
                self._memory[mem_key] = value
                self.hits += 1
                try:  # refresh mtime so LRU eviction sees the use
                    os.utime(path)
                except OSError:
                    pass
                return value
        self.misses += 1
        return None

    def _evict_corrupt(self, path: Path) -> None:
        """A corrupted/truncated entry is a miss: count it and remove the
        file so the next put republishes a clean copy."""
        self.corrupt += 1
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, kind: str, key_material, payload) -> str:
        """Store ``payload`` (JSON-serializable) under its content address;
        returns the address."""
        address = self.address(kind, key_material)
        self._memory[(kind, address)] = payload
        self.puts += 1
        if self.memory_only:
            return address
        path = self._path(kind, address)
        try:
            faults.maybe_raise(faults.SITE_CACHE_WRITE)
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {"key": json.loads(_canonical(key_material)), "value": payload}
            # Atomic publish: readers never observe a half-written entry.
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            self._evict(path.parent)
        except OSError:
            self.io_errors += 1  # a read-only cache dir degrades to memory-only
        return address

    def _evict(self, kind_dir: Path) -> None:
        # Concurrent writers (parallel workers share one cache directory)
        # may publish or evict between our glob and each stat/unlink, so
        # every per-file operation tolerates the file vanishing.
        stamped = []
        try:
            entries = list(kind_dir.glob("*.json"))
        except OSError:
            return
        for path in entries:
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue  # evicted by a sibling; already gone
        stamped.sort(key=lambda pair: pair[0])
        excess = len(stamped) - self.max_entries
        for _, victim in stamped[:max(0, excess)]:
            try:
                victim.unlink()
                self.evictions += 1
            except FileNotFoundError:
                continue  # a sibling won the race; the entry is gone either way
            except OSError:
                break

    # -- stats ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "io_errors": self.io_errors,
        }

    def reset_stats(self) -> None:
        self.hits = self.misses = self.puts = self.evictions = 0
        self.corrupt = self.io_errors = 0

    def __repr__(self) -> str:
        where = "memory" if self.memory_only else str(self.cache_dir)
        return (
            f"SummaryCache({where}, hits={self.hits}, misses={self.misses}, "
            f"puts={self.puts}, evictions={self.evictions})"
        )

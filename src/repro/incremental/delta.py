"""Zone deltas and their verification-level impact.

A :class:`ZoneDelta` is a record-level edit script between two zone
snapshots. The incremental engine turns a delta into the set of
*verification partitions* it invalidates; everything else replays from the
summary cache.

Partitioning the query space
----------------------------

The symbolic query space of one verification run is split by how the
engine's tree walk leaves the apex — the first branching decision every
resolution path makes:

- ``apex``            — the query names the apex itself;
- ``sub:<label>``     — the query descends into the apex child ``<label>``
  (a non-wildcard first-below-apex label that exists in the zone);
- ``miss``            — the query is below the apex but its first label
  matches no apex child (NXDOMAIN space, apex-wildcard synthesis);
- ``outside``         — the query is not a subdomain of the origin at all.

Every engine path lies entirely within one partition, because the path
condition pins the walk's first branch; partitioned verification therefore
finds exactly the bugs a monolithic run finds, partition by partition.

Invalidation rules (the dependency closure)
-------------------------------------------

A partition's verdict may be reused iff nothing its queries can observe
changed. The observable set ("closure") of a partition is:

- the apex RRsets, always (AA flag, SOA authority, apex NS);
- for ``sub:<label>``: the whole subtree slice under that label — a delete
  *anywhere* under the label invalidates it, which is what makes deletes
  under wildcards and delegations safe (the wildcard node, the delegation
  NS set and its glue all live in the slice);
- for ``miss``: the set of existing top labels (they define the partition's
  own boundary) plus the apex-wildcard subtree ``*`` (it synthesizes
  answers for missing children);
- for ``outside``: only the origin and apex (the walk never reaches zone
  data);
- transitively, for every chased rdata target (CNAME/DNAME/ALIAS chase,
  NS/MX/SRV additional-section glue) under the origin: the subtree slice of
  the target's own top label — *including when that subtree is empty*, so
  that later adding the target invalidates its dependents — and, when the
  target's top label is absent, the apex-wildcard subtree that would
  synthesize for it. SOA mname/rname are exempt (never chased or glued).
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.dns.name import DnsName
from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone, ZoneValidationError
from repro.incremental.digest import (
    apex_records,
    digest_json,
    records_digest,
    subtree_records,
    top_label_of,
    top_labels,
)
from repro.solver import eq, ge, ne
from repro.solver.terms import BoolExpr, lt, or_

#: Partition key constants.
APEX = "apex"
MISS = "miss"
OUTSIDE = "outside"
SUB_PREFIX = "sub:"

#: Resolution layers a delta can invalidate (interface-config names).
TREE_SEARCH = "TreeSearch"
FIND = "Find"


# ---------------------------------------------------------------------------
# Record-level deltas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecordChange:
    """One record-level edit: ``op`` is ``"add"`` or ``"delete"``."""

    op: str
    record: ResourceRecord

    def __post_init__(self) -> None:
        if self.op not in ("add", "delete"):
            raise ValueError(f"unknown delta op {self.op!r}")

    def describe(self) -> str:
        sign = "+" if self.op == "add" else "-"
        return f"{sign} {self.record.to_text()}"


@dataclass(frozen=True)
class ZoneDelta:
    """An edit script between two snapshots of one zone.

    An update is represented as a delete plus an add of the same owner
    name. ``apply`` validates that deletes name existing records and adds
    do not duplicate, then revalidates the resulting zone structurally.
    """

    origin: DnsName
    changes: Tuple[RecordChange, ...]

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self):
        return iter(self.changes)

    @property
    def is_empty(self) -> bool:
        return not self.changes

    def apply(self, zone: Zone) -> Zone:
        if zone.origin != self.origin:
            raise ZoneValidationError(
                f"delta for {self.origin.to_text()} applied to "
                f"{zone.origin.to_text()}"
            )
        pool = Counter(zone.records)
        for change in self.changes:
            if change.op == "delete":
                if pool[change.record] <= 0:
                    raise ZoneValidationError(
                        f"delta deletes a record the zone does not hold: "
                        f"{change.record.to_text()}"
                    )
                pool[change.record] -= 1
            else:
                if pool[change.record] > 0:
                    raise ZoneValidationError(
                        f"delta adds a duplicate record: {change.record.to_text()}"
                    )
                pool[change.record] += 1
        records = tuple(
            rec for rec, count in pool.items() for _ in range(count)
        )
        return Zone(self.origin, records)

    def touched_names(self) -> List[DnsName]:
        return sorted({change.record.rname for change in self.changes})

    def describe(self) -> str:
        header = f"delta on {self.origin.to_text()}: {len(self.changes)} change(s)"
        return "\n".join([header] + ["  " + c.describe() for c in self.changes])


def diff_zones(old: Zone, new: Zone) -> ZoneDelta:
    """Record-multiset diff: the delta whose ``apply(old)`` equals ``new``."""
    if old.origin != new.origin:
        raise ZoneValidationError(
            f"cannot diff zones with different origins "
            f"({old.origin.to_text()} vs {new.origin.to_text()})"
        )
    old_pool = Counter(old.records)
    new_pool = Counter(new.records)
    changes: List[RecordChange] = []
    for rec in sorted((old_pool - new_pool).elements(), key=ResourceRecord.sort_key):
        changes.append(RecordChange("delete", rec))
    for rec in sorted((new_pool - old_pool).elements(), key=ResourceRecord.sort_key):
        changes.append(RecordChange("add", rec))
    return ZoneDelta(old.origin, tuple(changes))


# ---------------------------------------------------------------------------
# Partitions of the symbolic query space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """One slice of the query space (see module docstring)."""

    key: str

    @property
    def label(self) -> Optional[str]:
        """The apex-child label for ``sub:`` partitions, else None."""
        if self.key.startswith(SUB_PREFIX):
            return self.key[len(SUB_PREFIX):]
        return None

    def preconditions(self, encoding) -> List[BoolExpr]:
        """Constraints confining the symbolic query to this partition.

        ``encoding`` is the session's
        :class:`~repro.core.encoding.QueryEncoding`; the returned formulas
        are conjoined with the global preconditions.
        """
        interner = encoding.encoder.interner
        origin = encoding.encoder.zone.origin
        origin_codes = list(interner.encode_name(origin))
        depth = len(origin_codes)
        if encoding.depth <= depth and self.key != APEX:
            raise ValueError(
                f"encoding depth {encoding.depth} cannot express queries "
                f"below a {depth}-label origin"
            )
        prefix = [eq(encoding.labels[i], origin_codes[i]) for i in range(depth)]
        if self.key == APEX:
            return prefix + [eq(encoding.name_len, depth)]
        if self.key == OUTSIDE:
            mismatches = [ne(encoding.labels[i], origin_codes[i]) for i in range(depth)]
            return [or_(lt(encoding.name_len, depth), *mismatches)]
        if self.key == MISS:
            zone = encoding.encoder.zone
            excluded = [
                ne(encoding.labels[depth], interner.code(top))
                for top in top_labels(zone)
                if top != "*"
            ]
            return prefix + [ge(encoding.name_len, depth + 1)] + excluded
        return prefix + [
            ge(encoding.name_len, depth + 1),
            eq(encoding.labels[depth], interner.code(self.label)),
        ]


def _zone_partitions_impl(zone: Zone) -> List[Partition]:
    """Every partition of ``zone``'s query space, in deterministic order.

    The apex-wildcard label ``*`` does not get its own ``sub:`` partition:
    queries cannot match it as an ordinary child (its code is reachable
    only by naming ``*`` literally, which the ``miss`` partition covers,
    and whose closure includes the ``*`` subtree).
    """
    parts = [Partition(APEX), Partition(OUTSIDE), Partition(MISS)]
    for top in top_labels(zone):
        if top != "*":
            parts.append(Partition(SUB_PREFIX + top))
    return parts


def _partition_of_name_impl(zone: Zone, name: DnsName) -> str:
    """The key of the partition a concrete query name falls into."""
    if name == zone.origin:
        return APEX
    if not name.is_subdomain_of(zone.origin):
        return OUTSIDE
    top = name.relativize(zone.origin)[-1]
    if top != "*" and top in top_labels(zone):
        return SUB_PREFIX + top
    return MISS


# ---------------------------------------------------------------------------
# Dependency closures and invalidation
# ---------------------------------------------------------------------------


def _chase_targets(records: Sequence[ResourceRecord], origin: DnsName) -> Set[DnsName]:
    """In-zone rdata-embedded names reachable from ``records`` (CNAME/
    DNAME/ALIAS chase and NS/MX/SRV glue); SOA is exempt."""
    targets: Set[DnsName] = set()
    for rec in records:
        if rec.rtype is RRType.SOA:
            continue
        for name in rec.rdata.names():
            if name.is_subdomain_of(origin):
                targets.add(name)
    return targets


def _partition_closure_impl(zone: Zone, key: str) -> Dict[str, object]:
    """Digest material for one partition: everything its queries observe.

    The returned dict is canonical-JSON digestable; two zones give the same
    closure for a partition iff the partition's verdict is reusable across
    them.
    """
    origin = zone.origin
    apex = apex_records(zone)
    material: Dict[str, object] = {
        "partition": key,
        "origin": origin.to_text(),
        "apex": records_digest(apex),
    }
    tops = top_labels(zone)
    present = set(tops)

    seed: List[ResourceRecord] = list(apex)
    included: Dict[str, str] = {}

    def include_subtree(top: str) -> List[ResourceRecord]:
        if top in included:
            return []
        slice_records = subtree_records(zone, top)
        included[top] = records_digest(slice_records)
        return slice_records

    if key == OUTSIDE:
        # The walk never reaches below the apex; origin + apex suffice.
        seed = list(apex)
    elif key == MISS:
        material["tops"] = [t for t in tops if t != "*"]
        if "*" in present:
            seed += include_subtree("*")
    elif key.startswith(SUB_PREFIX):
        seed += include_subtree(key[len(SUB_PREFIX):])

    # Transitive chase: a target's resolution depends on its own subtree
    # slice (empty slices still pin absence) and, when its top label is
    # absent, on the apex wildcard that would synthesize for it.
    if key != OUTSIDE:
        frontier = list(seed)
        seen_targets: Set[DnsName] = set()
        while frontier:
            new_records: List[ResourceRecord] = []
            for target in sorted(_chase_targets(frontier, origin)):
                if target in seen_targets:
                    continue
                seen_targets.add(target)
                if target == origin:
                    continue  # apex is always in the closure
                top = top_label_of(zone, target)
                assert top is not None
                new_records += include_subtree(top)
                if top not in present and "*" in present:
                    new_records += include_subtree("*")
            frontier = new_records

    material["subtrees"] = sorted(included.items())
    return material


def partition_digest(zone: Zone, key: str) -> str:
    return digest_json(_partition_closure_impl(zone, key))


def _affected_partitions_impl(old: Zone, new: Zone) -> List[str]:
    """Partitions of ``new`` whose closure differs from ``old``'s (or which
    ``old`` did not have). These are the partitions a delta from ``old`` to
    ``new`` invalidates; all others replay."""
    affected: List[str] = []
    for part in _zone_partitions_impl(new):
        if partition_digest(new, part.key) != partition_digest(old, part.key):
            affected.append(part.key)
    return affected


@dataclass(frozen=True)
class DeltaImpact:
    """What one delta invalidates, by the documented dependency rules."""

    affected_partitions: Tuple[str, ...]
    affected_layers: Tuple[str, ...]
    reusable_partitions: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"invalidates {len(self.affected_partitions)} partition(s) "
            f"[{', '.join(self.affected_partitions) or '-'}], layers "
            f"[{', '.join(self.affected_layers) or '-'}]; "
            f"{len(self.reusable_partitions)} reusable"
        )


def _shape(zone: Zone) -> FrozenSet[DnsName]:
    """The domain-tree shape: every owner name plus its empty non-terminal
    ancestors (what TreeSearch observes)."""
    names: Set[DnsName] = {zone.origin}
    for rec in zone.records:
        name = rec.rname
        while name != zone.origin:
            names.add(name)
            name = name.parent()
    return frozenset(names)


def delta_impact(old: Zone, new: Zone) -> DeltaImpact:
    """Invalidation summary for the ``old -> new`` edit.

    Layer rules: **TreeSearch** only observes the tree shape (owner names
    and empty non-terminals, plus per-node delegation/type structure is
    Find's concern), so it is invalidated only when the shape changes;
    **Find** observes RRsets and is invalidated by any record change.
    """
    affected = _affected_partitions_impl(old, new)
    layers: List[str] = []
    if _shape(old) != _shape(new):
        layers.append(TREE_SEARCH)
    if Counter(old.records) != Counter(new.records):
        layers.append(FIND)
    reusable = [
        p.key for p in _zone_partitions_impl(new) if p.key not in affected
    ]
    return DeltaImpact(tuple(affected), tuple(layers), tuple(reusable))


# ---------------------------------------------------------------------------
# Deprecated module-level helpers (PR 9): the planner API supersedes them
# ---------------------------------------------------------------------------

_partition_helpers_warned = False


def _warn_partition_helper(name: str) -> None:
    # One warning per process, like the verify_engine kwargs-bag migration:
    # loud enough to steer new code, quiet enough not to flood callers
    # that loop over partitions.
    global _partition_helpers_warned
    if _partition_helpers_warned:
        return
    _partition_helpers_warned = True
    warnings.warn(
        f"repro.incremental.delta.{name} is deprecated; use the planner "
        "API instead (repro.incremental.planner.make_planner('by-label'), "
        "or set VerifyOptions.planner)",
        DeprecationWarning,
        stacklevel=3,
    )


def zone_partitions(zone: Zone) -> List[Partition]:
    """Deprecated alias for :meth:`ByLabelPlanner.plan`."""
    _warn_partition_helper("zone_partitions")
    from repro.incremental.planner.by_label import ByLabelPlanner

    return [Partition(unit.part_key) for unit in ByLabelPlanner().plan(zone)]


def partition_of_name(zone: Zone, name: DnsName) -> str:
    """Deprecated alias for :meth:`ByLabelPlanner.unit_of_name`."""
    _warn_partition_helper("partition_of_name")
    from repro.incremental.planner.by_label import ByLabelPlanner

    return ByLabelPlanner().unit_of_name(zone, name)


def partition_closure(zone: Zone, key: str) -> Dict[str, object]:
    """Deprecated: closure material now backs
    :meth:`ByLabelPlanner.unit_digest`; depend on the digest, not the
    material."""
    _warn_partition_helper("partition_closure")
    return _partition_closure_impl(zone, key)


def affected_partitions(old: Zone, new: Zone) -> List[str]:
    """Deprecated alias for :meth:`ByLabelPlanner.affected`."""
    _warn_partition_helper("affected_partitions")
    from repro.incremental.planner.by_label import ByLabelPlanner

    planner = ByLabelPlanner()
    planner.plan(old)
    return planner.affected(diff_zones(old, new))


# ---------------------------------------------------------------------------
# Random deltas (test corpus / benchmarks)
# ---------------------------------------------------------------------------


def random_delta(zone: Zone, rng, ops: int = 1) -> ZoneDelta:
    """A random, validity-preserving delta of ``ops`` record changes.

    Draws adds, deletes and updates (delete+add at one owner) that keep
    the zone structurally valid; used by the equivalence test corpus and
    the incremental benchmark.
    """
    from repro.dns.rdata import ARdata, TXTRdata

    current = zone
    changes: List[RecordChange] = []
    attempts = 0
    while len(changes) < ops and attempts < 64 * ops:
        attempts += 1
        kind = rng.choice(["add", "delete", "update", "update"])
        candidate: List[RecordChange] = []
        if kind == "delete":
            deletable = [
                rec for rec in current.records if rec.rtype is not RRType.SOA
            ]
            if not deletable:
                continue
            candidate = [RecordChange("delete", rng.choice(deletable))]
        elif kind == "add":
            owner = _random_owner(current, rng)
            if rng.random() < 0.5:
                new = ResourceRecord(
                    owner, RRType.A, ARdata(f"192.0.2.{rng.randint(1, 254)}")
                )
            else:
                new = ResourceRecord(
                    owner, RRType.TXT, TXTRdata(f"delta-{rng.randint(0, 9999)}")
                )
            if new in current.records:
                continue
            candidate = [RecordChange("add", new)]
        else:  # update: rewrite one record's rdata in place
            updatable = [
                rec
                for rec in current.records
                if rec.rtype in (RRType.A, RRType.TXT)
            ]
            if not updatable:
                continue
            rec = rng.choice(updatable)
            if rec.rtype is RRType.A:
                rdata = ARdata(f"192.0.2.{rng.randint(1, 254)}")
            else:
                rdata = TXTRdata(f"delta-{rng.randint(0, 9999)}")
            replacement = ResourceRecord(rec.rname, rec.rtype, rdata, rec.ttl)
            if replacement == rec:
                continue
            candidate = [
                RecordChange("delete", rec),
                RecordChange("add", replacement),
            ]
        try:
            current = ZoneDelta(current.origin, tuple(candidate)).apply(current)
        except (ZoneValidationError, ValueError):
            continue
        changes.extend(candidate)
    return ZoneDelta(zone.origin, tuple(changes))


def _random_owner(zone: Zone, rng) -> DnsName:
    """An owner name for a new record: an existing name, a child of one,
    or a child of the apex with a fresh label."""
    labels = ["alpha", "beta", "gamma", "delta", "extra", "x1", "x2"]
    roll = rng.random()
    names = zone.names()
    if roll < 0.4:
        return rng.choice(names)
    if roll < 0.8:
        return rng.choice(names).prepend(rng.choice(labels))
    return zone.origin.prepend(rng.choice(labels))

"""Stable content digests for the incremental-verification subsystem.

Incremental reuse is only sound when "nothing relevant changed" can be
decided exactly, so every cacheable artifact is addressed by a digest of
the content it was computed from:

- **engine-version IR** — the GoPy *source* of the version module, the
  shared library layers it links against, and the top-level specification
  (the exact module set :func:`repro.core.pipeline.compile_engine_modules`
  feeds the compiler);
- **layer configs** — the interface-configuration artifact
  (:mod:`repro.core.layers`), whose source is the paper's Table-3 unit of
  porting cost;
- **zone content** — whole zones, single records, and per-subtree slices
  (the children of the apex), which is the granularity the delta engine
  invalidates at.

Digests are hex SHA-256 over canonical text, so they are stable across
processes, platforms and Python versions.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from typing import Iterable, List, Optional

from repro.dns.name import DnsName
from repro.dns.records import ResourceRecord
from repro.dns.zone import Zone


def digest_text(*parts: str) -> str:
    """SHA-256 over the given text parts (NUL-separated, UTF-8)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def digest_json(value) -> str:
    """SHA-256 over the canonical JSON form of ``value``."""
    return digest_text(json.dumps(value, sort_keys=True, separators=(",", ":")))


# ---------------------------------------------------------------------------
# Code digests
# ---------------------------------------------------------------------------


def source_digest(py_module) -> str:
    """Digest of a Python module's *current* source text.

    Reads the file behind the module when one exists (so the paper's
    porting workflow — edit ``engine.versions.dev``, re-verify in the same
    process — observes the edit), falling back to :func:`inspect.getsource`
    for file-less modules.
    """
    path = getattr(py_module, "__file__", None)
    if path:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return digest_text(handle.read())
        except OSError:
            pass
    try:
        return digest_text(inspect.getsource(py_module))
    except (OSError, TypeError):
        # Synthetic modules (e.g. built in tests): digest the names of the
        # callables and structs they expose, the best stable proxy we have.
        names = sorted(k for k in vars(py_module) if not k.startswith("__"))
        return digest_json({"module": getattr(py_module, "__name__", "?"), "names": names})


def engine_digest(version: str) -> str:
    """Digest of everything that determines one engine version's IR: the
    version module, the shared library layers, and the top-level spec."""
    from repro.engine import control
    from repro.engine.gopy import nameops, nodestack, respops
    from repro.spec import toplevel

    version_module = control.ENGINE_VERSIONS[version]
    return digest_text(
        version,
        source_digest(nameops),
        source_digest(nodestack),
        source_digest(respops),
        source_digest(version_module),
        source_digest(toplevel),
    )


def layers_digest() -> str:
    """Digest of the interface configuration (the layer table source)."""
    from repro.core import layers

    return source_digest(layers)


# ---------------------------------------------------------------------------
# Zone digests
# ---------------------------------------------------------------------------


def record_digest(record: ResourceRecord) -> str:
    """Digest of one resource record (owner, type, rdata and TTL)."""
    return digest_text(record.to_text())


def records_digest(records: Iterable[ResourceRecord]) -> str:
    """Order-insensitive digest of a record multiset."""
    return digest_text(*sorted(rec.to_text() for rec in records))


def zone_digest(zone: Zone) -> str:
    """Digest of a whole zone: origin plus its record multiset."""
    return digest_text(zone.origin.to_text(), records_digest(zone.records))


def top_label_of(zone: Zone, name: DnsName) -> Optional[str]:
    """The first label below the apex on the path to ``name`` (the subtree
    the name belongs to), or None when ``name`` is the apex itself or lies
    outside the zone."""
    if not name.is_proper_subdomain_of(zone.origin):
        return None
    return name.relativize(zone.origin)[-1]


def subtree_records(zone: Zone, top_label: str) -> List[ResourceRecord]:
    """All records in the subtree rooted at ``<top_label>.<origin>``
    (including the subtree root itself)."""
    root = zone.origin.prepend(top_label)
    return [rec for rec in zone.records if rec.rname.is_subdomain_of(root)]


def subtree_digest(zone: Zone, top_label: str) -> str:
    """Digest of one apex-child subtree slice."""
    return digest_text(top_label, records_digest(subtree_records(zone, top_label)))


def apex_records(zone: Zone) -> List[ResourceRecord]:
    """Records whose owner is the zone apex."""
    return [rec for rec in zone.records if rec.rname == zone.origin]


def top_labels(zone: Zone) -> List[str]:
    """Sorted first-below-apex labels that exist in the zone (every owner
    name contributes the subtree it lives in). The apex wildcard label
    ``*`` is included when present — callers that partition the query
    space treat it separately, since queries cannot spell ``*`` as an
    ordinary label match."""
    tops = set()
    for rec in zone.records:
        top = top_label_of(zone, rec.rname)
        if top is not None:
            tops.add(top)
    return sorted(tops)

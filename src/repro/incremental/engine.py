"""Delta-driven verification: re-verify only what a zone change invalidates.

:class:`IncrementalVerifier` holds the current zone snapshot and a
content-addressed cache of *partition verdicts*. A verification run splits
the symbolic query space into the partitions of
:func:`repro.incremental.delta.zone_partitions`, verifies each in a
restricted session (the partition's constraints are conjoined onto the
global preconditions), and merges per-partition verdicts into one ordinary
:class:`~repro.core.pipeline.VerificationResult`. Verdicts are cached; a
subsequent run — typically after :meth:`IncrementalVerifier.apply` applied
a :class:`~repro.incremental.delta.ZoneDelta` — replays every partition
whose dependency closure is unchanged and re-runs only the rest.

Witness stability (why replayed results are bit-identical)
----------------------------------------------------------

A cached verdict stores the *decoded* bug reports of its original run.
Replaying them must reproduce exactly what a fresh run would report, so the
cache key pins everything the restricted run can observe: the engine and
layer-config digests, the partition's dependency closure, the encoding
depth, **and the zone's full label universe plus top-label set**. The last
two look redundant but are not: interner codes are assigned by global label
rank, and the walk's first branch compares against every apex child, so
path conditions (and hence the solver's witness models) depend on them.
With all of it pinned, the restricted session's constraint set is
reproduced exactly and the deterministic solver returns the same models.
The cost is honest: a delta that adds or removes a *label* invalidates all
partitions, while rdata-only churn — the dominant production update — keeps
the universe stable and replays everything untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import (
    BugReport,
    LayerResult,
    VerificationResult,
    VerificationSession,
)
from repro.dns.zone import Zone
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import (
    Partition,
    ZoneDelta,
    partition_digest,
    zone_partitions,
)
from repro.incremental.digest import (
    engine_digest,
    layers_digest,
    top_labels,
    zone_digest,
)
from repro.incremental.serialize import (
    SerializationError,
    bug_from_json,
    bug_to_json,
)
from repro.resilience import verdicts as verdicts_mod
from repro.incremental import delta as delta_mod


def bug_sort_key(bug: BugReport) -> Tuple:
    """Canonical order for merged bug lists (partition merge order is not
    the monolithic session's discovery order)."""
    return (
        bug.version,
        bug.categories,
        bug.qname_codes,
        bug.qtype_code,
        bug.description,
    )


@dataclass
class ReuseStats:
    """How much of one incremental run was replayed from the cache."""

    partitions_total: int = 0
    partitions_reused: int = 0
    partitions_recomputed: int = 0
    reused_keys: Tuple[str, ...] = ()
    recomputed_keys: Tuple[str, ...] = ()
    records_changed: int = 0
    reused_checks: int = 0  # solver checks the replayed verdicts originally cost
    fresh_checks: int = 0
    cache: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "partitions_total": self.partitions_total,
            "partitions_reused": self.partitions_reused,
            "partitions_recomputed": self.partitions_recomputed,
            "reused_keys": list(self.reused_keys),
            "recomputed_keys": list(self.recomputed_keys),
            "records_changed": self.records_changed,
            "reused_checks": self.reused_checks,
            "fresh_checks": self.fresh_checks,
            "cache": dict(self.cache),
        }

    def describe(self) -> str:
        return (
            f"reused {self.partitions_reused}/{self.partitions_total} "
            f"partition(s), recomputed "
            f"[{', '.join(self.recomputed_keys) or '-'}]; "
            f"{self.fresh_checks} fresh solver checks "
            f"(+{self.reused_checks} replayed)"
        )


@dataclass
class IncrementalOutcome:
    """A normal verification result plus reuse statistics."""

    result: VerificationResult
    reuse: ReuseStats

    def describe(self) -> str:
        return self.result.describe() + "\n  " + self.reuse.describe()


class IncrementalVerifier:
    """Verifies one engine version against an evolving zone.

    ``cache`` defaults to an in-memory store; pass a
    :class:`~repro.incremental.cache.SummaryCache` with a directory for
    persistence across processes (the watch daemon does).
    """

    def __init__(
        self,
        zone: Zone,
        version: str = "verified",
        cache: Optional[SummaryCache] = None,
        depth: Optional[int] = None,
        **session_kwargs,
    ) -> None:
        self.zone = zone
        self.version = version
        self.cache = cache if cache is not None else SummaryCache(memory_only=True)
        self.depth = depth
        self.session_kwargs = session_kwargs

    # -- the delta entry point -----------------------------------------------

    def apply(self, delta: ZoneDelta) -> IncrementalOutcome:
        """Apply a delta to the current snapshot and re-verify; only
        partitions the delta invalidates are recomputed."""
        self.zone = delta.apply(self.zone)
        return self.verify_current(records_changed=len(delta))

    def diff_to(self, new_zone: Zone) -> IncrementalOutcome:
        """Adopt ``new_zone`` (diffing against the current snapshot for the
        change count) and re-verify. The watch daemon's entry point."""
        delta = delta_mod.diff_zones(self.zone, new_zone)
        self.zone = new_zone
        return self.verify_current(records_changed=len(delta))

    # -- verification ----------------------------------------------------------

    def verify_current(self, records_changed: int = 0) -> IncrementalOutcome:
        started = time.perf_counter()
        merged = VerificationResult(
            self.version, self.zone.origin.to_text(), True
        )
        stats = ReuseStats(records_changed=records_changed)
        reused: List[str] = []
        recomputed: List[str] = []

        for part in self._partitions():
            key = self._verdict_key(part)
            verdict = self.cache.get("partition", key)
            if verdict is not None:
                replayed_bugs = self._replay_bugs(verdict)
                if replayed_bugs is not None:
                    reused.append(part.key)
                    stats.reused_checks += verdict.get("solver_checks", 0)
                    self._merge(merged, part.key, verdict, replayed_bugs,
                                cached=True)
                    continue
            result = self._verify_partition(part)
            verdict = self._verdict_of(result)
            cacheable = verdict is not None and result.verdict in (
                verdicts_mod.VERIFIED, verdicts_mod.BUG
            )
            if cacheable:
                # UNKNOWN/ERROR verdicts reflect a budget or environment,
                # not zone content — never pin them in the cache.
                self.cache.put("partition", key, verdict)
            if verdict is None:
                verdict = self._verdict_of(result, with_bugs=False)
            recomputed.append(part.key)
            merged.solver_checks += result.solver_checks
            self._merge(merged, part.key, verdict, result.bugs, cached=False)

        merged.bugs.sort(key=bug_sort_key)
        merged.verified = merged.verified and not merged.bugs
        if any(bug.validated for bug in merged.bugs):
            merged.verdict = verdicts_mod.BUG
        elif merged.unknown_reason is not None:
            merged.verdict = verdicts_mod.UNKNOWN
        elif not merged.verified:
            merged.verdict = verdicts_mod.UNKNOWN
            merged.unknown_reason = verdicts_mod.REASON_UNVALIDATED
        else:
            merged.verdict = verdicts_mod.VERIFIED
        merged.elapsed_seconds = time.perf_counter() - started
        stats.partitions_total = len(reused) + len(recomputed)
        stats.partitions_reused = len(reused)
        stats.partitions_recomputed = len(recomputed)
        stats.reused_keys = tuple(reused)
        stats.recomputed_keys = tuple(recomputed)
        stats.fresh_checks = merged.solver_checks
        stats.cache = self.cache.stats()
        return IncrementalOutcome(merged, stats)

    # -- internals -------------------------------------------------------------

    def _partitions(self) -> List[Partition]:
        origin_depth = len(self.zone.origin)
        if origin_depth == 0 or self._encoding_depth() <= origin_depth:
            # The query space cannot be split below this origin; fall back
            # to one unrestricted pseudo-partition.
            return [Partition("full")]
        return zone_partitions(self.zone)

    def _encoding_depth(self) -> int:
        from repro.dns.name import MAX_NAME_DEPTH

        base = self.depth if self.depth is not None else self.zone.max_name_depth() + 2
        return min(base, MAX_NAME_DEPTH)

    def _verdict_key(self, part: Partition) -> Dict:
        if part.key == "full":
            closure = zone_digest(self.zone)
        else:
            closure = partition_digest(self.zone, part.key)
        return {
            "engine": engine_digest(self.version),
            "layers": layers_digest(),
            "origin": self.zone.origin.to_text(),
            "depth": self._encoding_depth(),
            "universe": self.zone.label_universe(),
            "tops": top_labels(self.zone),
            "partition": part.key,
            "closure": closure,
        }

    def _verify_partition(self, part: Partition) -> VerificationResult:
        session = VerificationSession(
            self.zone,
            self.version,
            depth=self.depth,
            cache=self.cache,
            **self.session_kwargs,
        )
        if part.key != "full":
            session.restrict(part.preconditions(session.query_encoding))
        return session.verify()

    @staticmethod
    def _verdict_of(result: VerificationResult,
                    with_bugs: bool = True) -> Optional[Dict]:
        """The JSON-safe cacheable form of a partition result, or None when
        its bugs do not serialize (the run stays live, the cache untouched)."""
        verdict = {
            "verified": result.verified,
            "verdict": result.verdict,
            "unknown_reason": result.unknown_reason,
            "solver_checks": result.solver_checks,
            "spurious_mismatches": result.spurious_mismatches,
            "elapsed_seconds": result.elapsed_seconds,
            "layers": [
                {
                    "name": layer.name,
                    "route": layer.route,
                    "elapsed_seconds": layer.elapsed_seconds,
                    "paths": layer.paths,
                    "cases": layer.cases,
                    "verified": layer.verified,
                }
                for layer in result.layers
            ],
            "bugs": [],
        }
        if with_bugs:
            try:
                verdict["bugs"] = [bug_to_json(b) for b in result.bugs]
            except SerializationError:
                return None
        return verdict

    @staticmethod
    def _replay_bugs(verdict: Dict) -> Optional[List[BugReport]]:
        try:
            return [bug_from_json(b) for b in verdict["bugs"]]
        except (SerializationError, KeyError, TypeError, ValueError):
            return None

    def _merge(self, merged: VerificationResult, part_key: str, verdict: Dict,
               bugs: List[BugReport], cached: bool) -> None:
        merged.bugs.extend(bugs)
        merged.verified = merged.verified and verdict["verified"]
        if (
            verdict.get("verdict") == verdicts_mod.UNKNOWN
            and merged.unknown_reason is None
        ):
            merged.unknown_reason = verdict.get("unknown_reason")
        merged.spurious_mismatches += verdict.get("spurious_mismatches", 0)
        for layer in verdict.get("layers", ()):
            merged.layers.append(
                LayerResult(
                    f"{part_key}:{layer['name']}",
                    "replay" if cached else layer["route"],
                    0.0 if cached else layer["elapsed_seconds"],
                    layer["paths"],
                    layer["cases"],
                    layer["verified"],
                )
            )

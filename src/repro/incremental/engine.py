"""Delta-driven verification: re-verify only what a zone change invalidates.

:class:`IncrementalVerifier` holds the current zone snapshot and a
content-addressed cache of *partition verdicts*. A verification run splits
the symbolic query space into the partitions of
:func:`repro.incremental.delta.zone_partitions`, verifies each in a
restricted session (the partition's constraints are conjoined onto the
global preconditions), and merges per-partition verdicts into one ordinary
:class:`~repro.core.pipeline.VerificationResult`. Verdicts are cached; a
subsequent run — typically after :meth:`IncrementalVerifier.apply` applied
a :class:`~repro.incremental.delta.ZoneDelta` — replays every partition
whose dependency closure is unchanged and re-runs only the rest.

Witness stability (why replayed results are bit-identical)
----------------------------------------------------------

A cached verdict stores the *decoded* bug reports of its original run.
Replaying them must reproduce exactly what a fresh run would report, so the
cache key pins everything the restricted run can observe: the engine and
layer-config digests, the partition's dependency closure, the encoding
depth, **and the zone's full label universe plus top-label set**. The last
two look redundant but are not: interner codes are assigned by global label
rank, and the walk's first branch compares against every apex child, so
path conditions (and hence the solver's witness models) depend on them.
With all of it pinned, the restricted session's constraint set is
reproduced exactly and the deterministic solver returns the same models.
The cost is honest: a delta that adds or removes a *label* invalidates all
partitions, while rdata-only churn — the dominant production update — keeps
the universe stable and replays everything untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import (
    BugReport,
    LayerResult,
    VerificationResult,
    VerificationSession,
)
from repro.dns.zone import Zone
from repro.incremental.cache import SummaryCache
from repro.incremental.delta import ZoneDelta, partition_digest
from repro.incremental.planner.protocol import (
    KIND_PARTITION,
    KIND_SUB,
    PlanUnit,
    make_planner,
    unit_preconditions,
)
from repro.incremental.digest import (
    engine_digest,
    layers_digest,
    top_labels,
    zone_digest,
)
from repro.incremental.serialize import (
    SerializationError,
    bug_from_json,
    bug_to_json,
)
from repro.resilience import verdicts as verdicts_mod
from repro.incremental import delta as delta_mod


def bug_sort_key(bug: BugReport) -> Tuple:
    """Canonical order for merged bug lists (partition merge order is not
    the monolithic session's discovery order)."""
    return (
        bug.version,
        bug.categories,
        bug.qname_codes,
        bug.qtype_code,
        bug.description,
    )


# ---------------------------------------------------------------------------
# Partition verdicts: the serializable unit the cache stores and the
# parallel workers ship. Module-level so pool workers can build and the
# parent can merge them without instantiating a verifier.
# ---------------------------------------------------------------------------


def verdict_of(result: VerificationResult,
               with_bugs: bool = True) -> Optional[Dict]:
    """The JSON-safe cacheable form of a partition result, or None when
    its bugs do not serialize (the run stays live, the cache untouched)."""
    verdict = {
        "verified": result.verified,
        "verdict": result.verdict,
        "unknown_reason": result.unknown_reason,
        "solver_checks": result.solver_checks,
        "spurious_mismatches": result.spurious_mismatches,
        "elapsed_seconds": result.elapsed_seconds,
        "analysis": result.analysis,
        "layers": [
            {
                "name": layer.name,
                "route": layer.route,
                "elapsed_seconds": layer.elapsed_seconds,
                "paths": layer.paths,
                "cases": layer.cases,
                "verified": layer.verified,
            }
            for layer in result.layers
        ],
        "bugs": [],
    }
    if with_bugs:
        try:
            verdict["bugs"] = [bug_to_json(b) for b in result.bugs]
        except SerializationError:
            return None
    return verdict


def replay_bugs(verdict: Dict) -> Optional[List[BugReport]]:
    try:
        return [bug_from_json(b) for b in verdict["bugs"]]
    except (SerializationError, KeyError, TypeError, ValueError):
        return None


def merge_partition(merged: VerificationResult, part_key: str, verdict: Dict,
                    bugs: List[BugReport], cached: bool) -> None:
    """Fold one partition verdict into the merged result. Called in the
    stable :meth:`IncrementalVerifier._plan_units` order regardless of
    how (or where) the verdicts were computed."""
    merged.bugs.extend(bugs)
    merged.verified = merged.verified and verdict["verified"]
    if (
        verdict.get("verdict") == verdicts_mod.UNKNOWN
        and merged.unknown_reason is None
    ):
        merged.unknown_reason = verdict.get("unknown_reason")
    merged.spurious_mismatches += verdict.get("spurious_mismatches", 0)
    # Analysis counters are live-execution telemetry: freshly computed
    # partitions contribute theirs; replayed partitions did no symbolic
    # execution this run, so their counters stay out of the merged totals
    # (mirroring how solver_checks is only summed for fresh partitions).
    part_analysis = verdict.get("analysis")
    if not cached and isinstance(part_analysis, dict):
        if merged.analysis is None:
            merged.analysis = dict(part_analysis)
        else:
            merged.analysis["enabled"] = bool(
                merged.analysis.get("enabled") or part_analysis.get("enabled")
            )
            # Execution counters sum across partitions; the prune-pass
            # statics (guards_total/guards_pruned/...) describe the one
            # shared compilation and are identical in every partition, so
            # the first copy stands.
            for key in ("panic_guard_checks", "pruned_guard_hits",
                        "solver_checks_avoided"):
                if key in part_analysis:
                    merged.analysis[key] = (
                        merged.analysis.get(key, 0) + part_analysis[key]
                    )
    for layer in verdict.get("layers", ()):
        merged.layers.append(
            LayerResult(
                f"{part_key}:{layer['name']}",
                "replay" if cached else layer["route"],
                0.0 if cached else layer["elapsed_seconds"],
                layer["paths"],
                layer["cases"],
                layer["verified"],
            )
        )


def finalize_merged(merged: VerificationResult) -> None:
    """Canonical bug order and the overall typed verdict of a merged
    (partitioned) result."""
    merged.bugs.sort(key=bug_sort_key)
    merged.verified = merged.verified and not merged.bugs
    if any(bug.validated for bug in merged.bugs):
        merged.verdict = verdicts_mod.BUG
    elif merged.unknown_reason is not None:
        merged.verdict = verdicts_mod.UNKNOWN
    elif not merged.verified:
        merged.verdict = verdicts_mod.UNKNOWN
        merged.unknown_reason = verdicts_mod.REASON_UNVALIDATED
    else:
        merged.verdict = verdicts_mod.VERIFIED


def deadline_verdict() -> Dict:
    """The synthetic verdict of a partition whose worker stalled past the
    pool's grace period: coverage lost, typed as UNKNOWN — never cached."""
    return {
        "verified": False,
        "verdict": verdicts_mod.UNKNOWN,
        "unknown_reason": verdicts_mod.REASON_DEADLINE,
        "solver_checks": 0,
        "spurious_mismatches": 0,
        "elapsed_seconds": 0.0,
        "layers": [],
        "bugs": [],
    }


@dataclass
class ReuseStats:
    """How much of one incremental run was replayed from the cache."""

    partitions_total: int = 0
    partitions_reused: int = 0
    partitions_recomputed: int = 0
    reused_keys: Tuple[str, ...] = ()
    recomputed_keys: Tuple[str, ...] = ()
    records_changed: int = 0
    reused_checks: int = 0  # solver checks the replayed verdicts originally cost
    fresh_checks: int = 0
    cache: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "partitions_total": self.partitions_total,
            "partitions_reused": self.partitions_reused,
            "partitions_recomputed": self.partitions_recomputed,
            "reused_keys": list(self.reused_keys),
            "recomputed_keys": list(self.recomputed_keys),
            "records_changed": self.records_changed,
            "reused_checks": self.reused_checks,
            "fresh_checks": self.fresh_checks,
            "cache": dict(self.cache),
        }

    def describe(self) -> str:
        return (
            f"reused {self.partitions_reused}/{self.partitions_total} "
            f"partition(s), recomputed "
            f"[{', '.join(self.recomputed_keys) or '-'}]; "
            f"{self.fresh_checks} fresh solver checks "
            f"(+{self.reused_checks} replayed)"
        )


@dataclass
class IncrementalOutcome:
    """A normal verification result plus reuse statistics."""

    result: VerificationResult
    reuse: ReuseStats

    def describe(self) -> str:
        return self.result.describe() + "\n  " + self.reuse.describe()


class IncrementalVerifier:
    """Verifies one engine version against an evolving zone.

    ``cache`` defaults to an in-memory store; pass a
    :class:`~repro.incremental.cache.SummaryCache` with a directory for
    persistence across processes (the watch daemon does).
    """

    def __init__(
        self,
        zone: Zone,
        version: str = "verified",
        cache: Optional[SummaryCache] = None,
        depth: Optional[int] = None,
        workers: Optional[int] = None,
        options=None,
        planner=None,
        **session_kwargs,
    ) -> None:
        self.zone = zone
        self.version = version
        self.cache = cache if cache is not None else SummaryCache(memory_only=True)
        self.depth = depth
        #: None = recompute misses sequentially with live sessions (the
        #: historical path). Any integer routes misses through the
        #: :mod:`repro.parallel` pool — including 1, so worker counts are
        #: interchangeable (they all run the same worker code and the same
        #: JSON round-trip).
        self.workers = workers
        #: Plain-data knobs shipped to pool workers (live ``session_kwargs``
        #: objects such as a custom solver cannot cross the boundary and are
        #: only honoured on the sequential path).
        self.options = options
        self.session_kwargs = session_kwargs
        #: The query planner: an explicit instance/name wins, then
        #: ``options.planner``, then the by-label default.
        if planner is None and options is not None:
            planner = getattr(options, "planner", None)
        self.planner = make_planner(planner)

    # -- the delta entry point -----------------------------------------------

    def apply(self, delta: ZoneDelta) -> IncrementalOutcome:
        """Apply a delta to the current snapshot and re-verify; only
        units the delta invalidates are recomputed."""
        return self.adopt(delta.apply(self.zone), delta)

    def diff_to(self, new_zone: Zone) -> IncrementalOutcome:
        """Adopt ``new_zone`` (diffing against the current snapshot for the
        change count) and re-verify. The watch daemon's entry point."""
        return self.adopt(new_zone)

    def adopt(self, new_zone: Zone, delta: Optional[ZoneDelta] = None) -> IncrementalOutcome:
        """Adopt a pre-built zone snapshot (with the delta that produced
        it, when the caller has one) and re-verify.

        This is the flat-cost entry point for large zones: when ``delta``
        is given, no O(records) diff runs here, and a delta-maintaining
        planner advances its plan in O(affected) — the benchmark drives
        this path to show per-delta cost independent of zone size."""
        if delta is None:
            delta = delta_mod.diff_zones(self.zone, new_zone)
        self.zone = new_zone
        self.planner.notify_delta(delta)
        return self.verify_current(records_changed=len(delta))

    # -- verification ----------------------------------------------------------

    def verify_current(self, records_changed: int = 0) -> IncrementalOutcome:
        started = time.perf_counter()
        merged = VerificationResult(
            self.version, self.zone.origin.to_text(), True
        )
        stats = ReuseStats(records_changed=records_changed)
        reused: List[str] = []
        recomputed: List[str] = []

        # Plan first: units in stable order, each with its cache verdict
        # (when replayable). Misses are then recomputed — live and in
        # order on the sequential path, pooled when ``workers`` is set —
        # and everything merges back in plan order, so the merged result
        # is independent of where or in what order misses were computed.
        plan = [(unit, self._verdict_key(unit)) for unit in self._plan_units()]
        cached: Dict[int, Tuple[Dict, List[BugReport]]] = {}
        for position, (unit, key) in enumerate(plan):
            verdict = self.cache.get("partition", key)
            if verdict is not None:
                replayed = replay_bugs(verdict)
                if replayed is not None:
                    cached[position] = (verdict, replayed)
        misses = [p for p in range(len(plan)) if p not in cached]
        if self.workers is None:
            fresh = {p: self._recompute_live(*plan[p]) for p in misses}
        else:
            fresh = self._recompute_pooled(plan, misses)

        phase_totals: Dict[str, float] = {}
        for position, (unit, key) in enumerate(plan):
            if position in cached:
                verdict, bugs = cached[position]
                reused.append(unit.id)
                stats.reused_checks += verdict.get("solver_checks", 0)
                verdict, bugs, extra = self._expand_unit(unit, verdict, bugs)
                merged.solver_checks += extra
                merge_partition(merged, unit.id, verdict, bugs, cached=True)
                continue
            verdict, bugs, checks, phases = fresh[position]
            recomputed.append(unit.id)
            merged.solver_checks += checks
            for phase, seconds in (phases or {}).items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
            verdict, bugs, extra = self._expand_unit(unit, verdict, bugs)
            merged.solver_checks += extra
            merge_partition(merged, unit.id, verdict, bugs, cached=False)

        finalize_merged(merged)
        merged.elapsed_seconds = time.perf_counter() - started
        if phase_totals:
            merged.phase_seconds = {
                phase: round(seconds, 6)
                for phase, seconds in sorted(phase_totals.items())
            }
        stats.partitions_total = len(reused) + len(recomputed)
        stats.partitions_reused = len(reused)
        stats.partitions_recomputed = len(recomputed)
        stats.reused_keys = tuple(reused)
        stats.recomputed_keys = tuple(recomputed)
        stats.fresh_checks = merged.solver_checks
        stats.cache = self.cache.stats()
        return IncrementalOutcome(merged, stats)

    # -- miss recomputation ----------------------------------------------------

    def _recompute_live(
        self, unit: PlanUnit, key: Dict
    ) -> Tuple[Dict, List[BugReport], int, Dict[str, float]]:
        """One cache miss, computed in-process with a live session (the
        sequential path; also the fallback when a pool worker's bugs do
        not serialize — live objects never cross a process boundary)."""
        result = self._verify_unit(unit)
        verdict = verdict_of(result)
        cacheable = verdict is not None and result.verdict in (
            verdicts_mod.VERIFIED, verdicts_mod.BUG
        )
        if cacheable:
            # UNKNOWN/ERROR verdicts reflect a budget or environment,
            # not zone content — never pin them in the cache.
            self.cache.put("partition", key, verdict)
        if verdict is None:
            verdict = verdict_of(result, with_bugs=False)
        return verdict, result.bugs, result.solver_checks, result.phase_seconds

    def _recompute_pooled(
        self, plan: List[Tuple[PlanUnit, Dict]], misses: List[int]
    ) -> Dict[int, Tuple[Dict, List[BugReport], int, Dict[str, float]]]:
        """Cache misses through the process pool (``workers`` set).

        Cache writes stay in the parent (one writer per run; workers only
        write summary/refinement entries through their own handles). A
        worker death falls back to a live in-parent recompute — same
        inputs, same deterministic outcome; a stall degrades the
        unit to ``UNKNOWN(wall-clock-deadline)``.

        Partition units ship the full zone (pickled once, shared);
        equivalence-class units ship their small projected zones — at
        million-record scale the full zone never crosses the pool
        boundary at all.
        """
        import pickle

        from repro.parallel.counters import perf_phases
        from repro.parallel.pool import OK, TIMEOUT, run_units
        from repro.parallel.worker import partition_worker

        options = self._worker_options()
        zone_blob = None
        payloads = []
        for p in misses:
            unit = plan[p][0]
            if unit.kind == KIND_PARTITION:
                if zone_blob is None:
                    zone_blob = pickle.dumps(self.zone)
                blob = zone_blob
                unit_options = options
            else:
                blob = pickle.dumps(self.planner.projected_zone(unit))
                # Pin the projected session to the full zone's encoding
                # depth so gap decoding and witness codes line up with the
                # cache key.
                unit_options = options.with_(depth=self._encoding_depth())
            payloads.append(
                {
                    "index": p,  # stable plan position → deterministic fault plan
                    "zone_pickle": blob,
                    "part_key": unit.part_key,
                    "gap_code": unit.gap_code,
                    "version": self.version,
                    "options": unit_options.to_json(),
                }
            )
        grace = None
        if options.budget_seconds is not None:
            grace = 3.0 * options.budget_seconds + 30.0
        fresh: Dict[int, Tuple[Dict, List[BugReport], int, Dict[str, float]]] = {}
        for pos, status, value in run_units(
            partition_worker, payloads, self.workers, grace
        ):
            position = misses[pos]
            part, key = plan[position]
            if status == OK and value is not None and value["verdict"] is not None:
                verdict = value["verdict"]
                bugs = replay_bugs(verdict)
                if bugs is not None:
                    if verdict.get("verdict") in (
                        verdicts_mod.VERIFIED, verdicts_mod.BUG
                    ):
                        self.cache.put("partition", key, verdict)
                    fresh[position] = (
                        verdict,
                        bugs,
                        verdict.get("solver_checks", 0),
                        perf_phases(value.get("perf")),
                    )
                    continue
            if status == TIMEOUT:
                fresh[position] = (deadline_verdict(), [], 0, {})
                continue
            # Worker died, its bugs did not serialize, or the replay
            # failed: recompute live in the parent.
            fresh[position] = self._recompute_live(part, key)
        return fresh

    def _worker_options(self):
        """The plain-data options shipped to partition workers."""
        from repro.core.options import VerifyOptions

        base = self.options if self.options is not None else VerifyOptions()
        cache_dir = None
        if not self.cache.memory_only:
            cache_dir = str(self.cache.cache_dir)
        changes: Dict[str, object] = {"depth": self.depth, "cache_dir": cache_dir}
        for knob in ("max_paths", "max_steps", "analysis", "analysis_check"):
            if knob in self.session_kwargs:
                changes[knob] = self.session_kwargs[knob]
        return base.with_(**changes)

    def _analysis_enabled(self) -> bool:
        if "analysis" in self.session_kwargs:
            return bool(self.session_kwargs["analysis"])
        if self.options is not None:
            return bool(self.options.analysis)
        return True

    # -- internals -------------------------------------------------------------

    def _plan_units(self) -> List[PlanUnit]:
        origin_depth = len(self.zone.origin)
        if origin_depth == 0 or self._encoding_depth() <= origin_depth:
            # The query space cannot be split below this origin; fall back
            # to one unrestricted pseudo-unit regardless of planner.
            return [
                PlanUnit(
                    id="full",
                    kind=KIND_PARTITION,
                    part_key="full",
                    members=("full",),
                )
            ]
        return self.planner.plan(self.zone)

    def _encoding_depth(self) -> int:
        from repro.dns.name import MAX_NAME_DEPTH

        base = self.depth if self.depth is not None else self.zone.max_name_depth() + 2
        return min(base, MAX_NAME_DEPTH)

    def _verdict_key(self, unit: PlanUnit) -> Dict:
        if unit.kind == KIND_PARTITION:
            # The historical by-label key, byte for byte: the restricted
            # run observes the full zone, so the full label universe and
            # top set are pinned (see the module docstring).
            if unit.part_key == "full":
                closure = zone_digest(self.zone)
            else:
                closure = partition_digest(self.zone, unit.part_key)
            return {
                "engine": engine_digest(self.version),
                "layers": layers_digest(),
                "origin": self.zone.origin.to_text(),
                "depth": self._encoding_depth(),
                "universe": self.zone.label_universe(),
                "tops": top_labels(self.zone),
                "partition": unit.part_key,
                "closure": closure,
                # Verdicts are bit-identical with pruning on or off, but the
                # counters a cached verdict replays (solver_checks, analysis
                # telemetry) are not — keep the two populations apart.
                "analysis": self._analysis_enabled(),
            }
        # Equivalence-class keys deliberately omit the zone-wide universe
        # and top set — the whole point of the planner. What they pin
        # instead fully determines the projected session: the unit's
        # α-abstracted content digest, the concrete representative label
        # (α⁻¹), and the concrete gap code the miss unit's witness uses.
        return {
            "planner": self.planner.name,
            "engine": engine_digest(self.version),
            "layers": layers_digest(),
            "origin": self.zone.origin.to_text(),
            "depth": self._encoding_depth(),
            "unit": unit.id,
            "kind": unit.kind,
            "digest": unit.digest,
            "representative": unit.representative,
            "gap_code": unit.gap_code,
            "analysis": self._analysis_enabled(),
        }

    def _session_kwargs_with_budget(self) -> Dict:
        kwargs = dict(self.session_kwargs)
        if self.options is not None and "budget" not in kwargs:
            # Same rule as the pool workers: a fresh budget per unit, so
            # the in-parent fallback is indistinguishable from a worker.
            kwargs["budget"] = self.options.make_budget()
        return kwargs

    def _use_summaries(self) -> bool:
        return self.options.use_summaries if self.options is not None else True

    def _verify_unit(self, unit: PlanUnit) -> VerificationResult:
        if unit.kind == KIND_PARTITION:
            zone, depth = self.zone, self.depth
        else:
            # Equivalence-class units verify against their projected zone
            # — the representative's dependency closure — with the depth
            # pinned to the full zone's so query encodings stay aligned.
            zone, depth = self.planner.projected_zone(unit), self._encoding_depth()
        session = VerificationSession(
            zone,
            self.version,
            depth=depth,
            cache=self.cache,
            **self._session_kwargs_with_budget(),
        )
        pre = unit_preconditions(
            unit.part_key, unit.gap_code, session.query_encoding
        )
        if pre:
            session.restrict(pre)
        return session.verify(use_summaries=self._use_summaries())

    # -- class-member expansion ------------------------------------------------

    def _expand_unit(
        self, unit: PlanUnit, verdict: Dict, bugs: List[BugReport]
    ) -> Tuple[Dict, List[BugReport], int]:
        """Expand a class unit's representative verdict to its members.

        Always live, never cached: the cache stores only the
        representative's verdict, and translation re-validates every
        member natively against its own closure (with symbolic fallback
        when the collapse hypothesis fails). Non-class units pass through
        untouched."""
        if unit.kind != KIND_SUB or len(unit.members) == 0:
            return verdict, bugs, 0
        from repro.incremental import expand

        if verdict.get("verdict") == verdicts_mod.BUG or bugs:
            member_bugs, checks, reason = expand.expand_bugs(
                self.planner, unit, self.version, self.zone.origin, bugs,
                self._member_fallback,
            )
            bugs = []  # superseded by the per-member re-validated reports
        elif verdict.get("verdict") == verdicts_mod.VERIFIED:
            member_bugs, checks, reason = expand.expand_verified(
                self.planner, unit, self.version, self.zone.origin,
                self._member_fallback,
            )
        else:
            # UNKNOWN/ERROR: the unit-level verdict already covers every
            # member; expansion has nothing sound to add.
            return verdict, bugs, 0
        if member_bugs or reason is not None or not bugs:
            verdict = dict(verdict)
            verdict["verified"] = bool(verdict.get("verified")) and not any(
                b.validated for b in member_bugs
            )
            if reason is not None and verdict.get("unknown_reason") is None:
                verdict["verdict"] = verdicts_mod.UNKNOWN
                verdict["unknown_reason"] = reason
            elif any(b.validated for b in member_bugs):
                verdict["verdict"] = verdicts_mod.BUG
        return verdict, bugs + member_bugs, checks

    def _member_fallback(self, member: str) -> VerificationResult:
        """Full symbolic verify of one class member (hypothesis-violation
        escape hatch), restricted to the member's own subtree."""
        session = VerificationSession(
            self.planner.member_zone(member),
            self.version,
            depth=self._encoding_depth(),
            cache=self.cache,
            **self._session_kwargs_with_budget(),
        )
        session.restrict(
            unit_preconditions(
                delta_mod.SUB_PREFIX + member, None, session.query_encoding
            )
        )
        return session.verify(use_summaries=self._use_summaries())

    # Kept as aliases for backward compatibility; the logic moved to the
    # module level so pool workers can share it.
    _verdict_of = staticmethod(verdict_of)
    _replay_bugs = staticmethod(replay_bugs)

    def _merge(self, merged: VerificationResult, part_key: str, verdict: Dict,
               bugs: List[BugReport], cached: bool) -> None:
        merge_partition(merged, part_key, verdict, bugs, cached)

"""Class-member expansion: from one representative verdict to every member.

The equivalence-class planner verifies one representative per class
symbolically. This module translates that verdict to the remaining members
— and, crucially, *checks* the translation instead of trusting it:

- a representative **bug** is translated member by member (the
  representative's label is substituted in the witness qname) and then
  re-executed natively — real engine, real spec, concrete query — against
  the member's own dependency-closure zone. The member's report carries
  the categories, diffs and summaries of *its* native run, so payload
  differences between members are reported faithfully. A translated bug
  that does not reproduce natively is a violation of the collapse
  hypothesis: the member is handed back for a full symbolic verify.
- a representative **VERIFIED** verdict is spot-checked with bounded
  native probes on a deterministic sample of members (existing-name,
  TXT-type and below-member queries). Any probe divergence likewise
  escalates that member to a symbolic verify.

Native re-execution costs no solver checks — the whole point of the
planner — so expansion keeps the solver budget O(classes) while the
reported bug list stays O(members), exactly like the by-label oracle's.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    RUNTIME_ERROR,
    BugReport,
    VerificationResult,
    _summarise_response,
    classify_divergence,
)
from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.engine.gopy.structs import Response as GoResponse
from repro.incremental.planner.ec import translate_name
from repro.resilience import verdicts as verdicts_mod
from repro.spec import toplevel

#: A symbolic fallback verifier for one class member (engine-provided).
MemberFallback = Callable[[str], VerificationResult]


class NativeRunner:
    """One member zone compiled for repeated concrete engine/spec runs."""

    def __init__(self, zone: Zone, version: str,
                 queries: Sequence[Tuple[DnsName, int]]):
        extra = sorted(
            {lab for qname, _ in queries for lab in qname.labels}
            - set(zone.label_universe())
            - {"*"}
        )
        self._encoder = ZoneEncoder(zone, extra_labels=extra)
        self._tree = control.build_domain_tree(self._encoder)
        self._flat = control.build_flat_zone(self._encoder)
        self._module = control.ENGINE_VERSIONS[version]

    def codes(self, qname: DnsName) -> Tuple[int, ...]:
        return tuple(
            self._encoder.interner.code(lab) for lab in qname.reversed_labels
        )

    def divergence(self, qname: DnsName, qtype_code: int):
        """Run engine and spec on one concrete query.

        Returns ``(codes, categories, diffs, engine_summary,
        expected_summary)``; empty categories mean agreement. An engine
        crash is the RUNTIME_ERROR category, mirroring
        :meth:`VerificationSession._decode_mismatch`.
        """
        codes = self.codes(qname)
        spec = GoResponse()
        toplevel.rrlookup(self._flat, list(codes), int(qtype_code), spec)
        try:
            engine = control.run_engine_concrete(
                self._module, self._tree, list(codes), int(qtype_code)
            )
        except (IndexError, AttributeError, TypeError) as exc:
            crash = f"{type(exc).__name__}: {exc}"
            return (
                codes,
                [RUNTIME_ERROR],
                [f"engine crashed natively: {crash}"],
                "",
                _summarise_response(spec),
            )
        categories, diffs = classify_divergence(engine, spec)
        return (
            codes,
            categories,
            diffs,
            _summarise_response(engine),
            _summarise_response(spec),
        )


def _merge_fallback(result: VerificationResult, out: List[BugReport],
                    reason: Optional[str]) -> Tuple[int, Optional[str]]:
    out.extend(result.bugs)
    if reason is None and result.verdict == verdicts_mod.UNKNOWN:
        reason = result.unknown_reason or verdicts_mod.REASON_UNVALIDATED
    return result.solver_checks, reason


def expand_bugs(
    planner,
    unit,
    version: str,
    origin: DnsName,
    rep_bugs: Sequence[BugReport],
    fallback: MemberFallback,
) -> Tuple[List[BugReport], int, Optional[str]]:
    """Translate a representative's bugs to every class member.

    Returns ``(bugs, extra_solver_checks, unknown_reason)``. The returned
    bug list covers *all* members, the representative included — its bugs
    are re-executed too, which both refreshes payload summaries after
    α-equivalent churn and re-checks the cached verdict against today's
    engine build.
    """
    rep = unit.representative
    out: List[BugReport] = []
    checks = 0
    reason: Optional[str] = None
    for member in unit.members:
        translated: List[Tuple[BugReport, DnsName]] = []
        need_fallback = False
        for bug in rep_bugs:
            if bug.query is None:
                # No concrete witness to translate (solver returned
                # unknown). The representative keeps its unvalidated
                # report; other members get the full symbolic treatment.
                if member == rep:
                    out.append(bug)
                else:
                    need_fallback = True
                continue
            translated.append(
                (bug, translate_name(bug.query.qname, rep, member, origin))
            )
        if not need_fallback and translated:
            member_zone = planner.member_zone(member)
            runner = NativeRunner(
                member_zone,
                version,
                [(qname, bug.qtype_code) for bug, qname in translated],
            )
            for bug, qname in translated:
                codes, cats, diffs, esum, ssum = runner.divergence(
                    qname, bug.qtype_code
                )
                if not cats:
                    # The representative's bug does not reproduce on this
                    # member: the collapse hypothesis failed here. Discard
                    # the translations and verify the member symbolically.
                    need_fallback = True
                    break
                out.append(
                    BugReport(
                        version,
                        tuple(cats),
                        Query(qname, bug.query.qtype),
                        codes,
                        bug.qtype_code,
                        "; ".join(diffs[:4]),
                        validated=True,
                        engine_summary=esum,
                        expected_summary=ssum,
                    )
                )
        if need_fallback:
            fresh, reason = _merge_fallback(fallback(member), out, reason)
            checks += fresh
    return out, checks, reason


#: Native probe shapes per sampled member: the member name itself at two
#: types, plus a below-member name (NXDOMAIN or member-wildcard space).
def _probe_queries(member: str, origin: DnsName) -> List[Tuple[DnsName, int]]:
    mname = DnsName((member,) + tuple(origin.labels))
    return [
        (mname, int(RRType.A)),
        (mname, int(RRType.TXT)),
        (mname.prepend("zz"), int(RRType.A)),
    ]


def expand_verified(
    planner,
    unit,
    version: str,
    origin: DnsName,
    fallback: MemberFallback,
    sample: int = 3,
) -> Tuple[List[BugReport], int, Optional[str]]:
    """Spot-check a VERIFIED representative verdict on sampled members.

    A deterministic sample (first, middle and last non-representative
    members) is probed natively; a diverging probe escalates that member
    to a symbolic verify. Returns ``(bugs, extra_checks, unknown_reason)``
    — all empty/None in the overwhelmingly common clean case.
    """
    others = [m for m in unit.members if m != unit.representative]
    if not others:
        return [], 0, None
    picks = sorted({others[0], others[len(others) // 2], others[-1]})[:sample]
    out: List[BugReport] = []
    checks = 0
    reason: Optional[str] = None
    for member in picks:
        probes = _probe_queries(member, origin)
        runner = NativeRunner(planner.member_zone(member), version, probes)
        if any(runner.divergence(q, t)[1] for q, t in probes):
            fresh, reason = _merge_fallback(fallback(member), out, reason)
            checks += fresh
    return out, checks, reason

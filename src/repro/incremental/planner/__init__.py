"""Query planners: how a verification run splits the query space.

See :mod:`repro.incremental.planner.protocol` for the abstraction,
:mod:`~repro.incremental.planner.by_label` for the historical default and
:mod:`~repro.incremental.planner.ec` for the equivalence-class planner
that makes million-record zones tractable.
"""

from repro.incremental.planner.by_label import ByLabelPlanner
from repro.incremental.planner.ec import ECPlanner, member_signature, translate_name
from repro.incremental.planner.label_graph import LabelGraph
from repro.incremental.planner.protocol import (
    BY_LABEL,
    EQUIVALENCE_CLASS,
    KIND_APEX,
    KIND_MISS,
    KIND_OUTSIDE,
    KIND_PARTITION,
    KIND_STAR,
    KIND_SUB,
    PLANNERS,
    PlanUnit,
    QueryPlanner,
    make_planner,
    unit_preconditions,
)

__all__ = [
    "BY_LABEL",
    "EQUIVALENCE_CLASS",
    "KIND_APEX",
    "KIND_MISS",
    "KIND_OUTSIDE",
    "KIND_PARTITION",
    "KIND_STAR",
    "KIND_SUB",
    "PLANNERS",
    "ByLabelPlanner",
    "ECPlanner",
    "LabelGraph",
    "PlanUnit",
    "QueryPlanner",
    "make_planner",
    "member_signature",
    "translate_name",
    "unit_preconditions",
]

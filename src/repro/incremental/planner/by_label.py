"""The historical query planner: one unit per below-apex subtree.

This is the behaviour PRs 1–8 shipped, lifted verbatim behind the
:class:`~repro.incremental.planner.protocol.QueryPlanner` protocol: the
plan is exactly :func:`repro.incremental.delta.zone_partitions`, unit
digests are exactly :func:`repro.incremental.delta.partition_digest`, and
a delta's affected set is exactly the digest diff the incremental engine
has always replayed against. It stays the default planner and the
reference oracle the equivalence-class planner is bit-identity-tested
against.
"""

from __future__ import annotations

from typing import List, Optional

from repro.incremental.planner.protocol import (
    BY_LABEL,
    KIND_PARTITION,
    PlanUnit,
    QueryPlanner,
)


class ByLabelPlanner(QueryPlanner):
    """One verification unit per query-space partition (PR-1 behaviour)."""

    name = BY_LABEL

    def __init__(self) -> None:
        self._zone = None

    # -- protocol ----------------------------------------------------------

    def plan(self, zone) -> List[PlanUnit]:
        from repro.incremental import delta as delta_mod

        self._zone = zone
        return [
            PlanUnit(
                id=part.key,
                kind=KIND_PARTITION,
                part_key=part.key,
                members=(part.key,),
            )
            for part in delta_mod._zone_partitions_impl(zone)
        ]

    def affected(self, delta) -> List[str]:
        from repro.incremental import delta as delta_mod

        if self._zone is None:
            raise ValueError("affected() requires a prior plan() call")
        new_zone = delta.apply(self._zone)
        changed = delta_mod._affected_partitions_impl(self._zone, new_zone)
        self._zone = new_zone
        return changed

    def unit_digest(self, zone, unit: PlanUnit) -> str:
        from repro.incremental import delta as delta_mod

        return delta_mod.partition_digest(zone, unit.part_key)

    def notify_delta(self, delta) -> None:
        # Stateless with respect to verification: the incremental engine
        # re-digests every partition each run, so the only state worth
        # advancing is the snapshot affected() diffs against.
        if self._zone is not None:
            self._zone = delta.apply(self._zone)

    def unit_of_name(self, zone, name) -> Optional[str]:
        from repro.incremental import delta as delta_mod

        return delta_mod._partition_of_name_impl(zone, name)

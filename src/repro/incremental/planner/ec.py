"""The equivalence-class query planner: O(behaviours) units, not O(records).

The by-label planner emits one verification unit per below-apex subtree,
which is linear in zone size — the open ROADMAP bottleneck for
million-record zones. Groot's observation is that most of those units are
*behaviourally identical*: a TLD-shaped zone has hundreds of thousands of
delegations that differ only in the delegated label and the glue payload,
and the engine resolves all of them with the same code paths. This module
collapses them.

Equivalence is computed per top label as an **α-abstracted signature**:

- every occurrence of the top's own label (in owner names and in
  rdata-embedded names under the origin) is rewritten to the placeholder
  ``@T``, so two delegations ``foo`` and ``bar`` with isomorphic subtrees
  produce identical slice text;
- opaque payloads (A/AAAA/TXT rdata) are rewritten to ``@P<k>`` tokens
  assigned by first appearance, preserving the *equality pattern* but not
  the values — address churn, the dominant real-world delta, keeps the
  signature (and therefore the cached verdict) stable;
- everything the slice can *observe* stays concrete: the digests of the
  apex records, of every chased environment slice, and of the apex's own
  environment. Labels other than the member's own, TTLs and record
  multiplicity also stay concrete.

Tops with equal signatures form one class; the planner emits a single unit
per class, verified on the smallest (canonical) member as representative
against a **projected zone** — the dependency closure of that member, not
the full zone — which is what makes the symbolic run independent of zone
size. Four singleton units cover the rest of the query space:

- ``ec:apex``: queries naming the origin;
- ``ec:outside``: queries out of bailiwick;
- ``ec:miss``: queries whose first below-apex label matches no subtree
  (NXDOMAIN or wildcard synthesis), verified with the query label pinned
  to one concrete interner-gap representative — one concrete BST descent
  instead of the by-label planner's O(tops) exclusion constraint, and,
  crucially, a digest that does **not** mention the set of existing tops,
  so subtree churn never invalidates it;
- ``ec:star``: queries naming the wildcard label literally.

Soundness rests on the hypothesis that the engines distinguish labels only
through ordered BST navigation, never through their concrete values — true
of every seeded defect — and is defended in depth: the randomized
bit-identity suite compares EC verdicts against the by-label oracle, and
the incremental engine re-validates every class verdict natively on each
member (with symbolic fallback on translation failure or divergence).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.dns.interner import LABEL_SPACING, LabelInterner
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone
from repro.incremental.digest import digest_json
from repro.incremental.planner.label_graph import (
    WILDCARD_TOP,
    LabelGraph,
    _top_of,
)
from repro.incremental.planner.protocol import (
    EQUIVALENCE_CLASS,
    KIND_APEX,
    KIND_MISS,
    KIND_OUTSIDE,
    KIND_STAR,
    KIND_SUB,
    PlanUnit,
    QueryPlanner,
)

#: RR types whose rdata carries no resolution-relevant structure; their
#: payloads are abstracted to ``@P<k>`` equality tokens in signatures.
PAYLOAD_TYPES = frozenset((RRType.A, RRType.AAAA, RRType.TXT))

#: Placeholder for the member's own top label in abstracted text.
TOP_TOKEN = "@T"

#: Placeholder for the zone origin in abstracted owner/rdata names.
ORIGIN_TOKEN = "@Z"


# ---------------------------------------------------------------------------
# α-abstraction


def _abstract_name(name: DnsName, origin: DnsName, top: str) -> str:
    """Render ``name`` with the member's own label α-abstracted.

    Names under the origin render relatively with every occurrence of
    ``top`` replaced by ``@T`` and the origin by ``@Z`` (so the rendering
    is origin-independent); names out of bailiwick render verbatim — they
    are opaque referral text to the engine.
    """
    if not name.is_subdomain_of(origin):
        return name.to_text()
    rel = name.relativize(origin)
    if not rel:
        return ORIGIN_TOKEN
    labels = [TOP_TOKEN if lab == top else lab for lab in rel]
    return ".".join(labels) + "." + ORIGIN_TOKEN


def _abstract_rdata(rdata, origin: DnsName, top: str) -> str:
    """Rdata text with embedded in-bailiwick names α-abstracted."""
    text = rdata.to_text()
    # Longest-first so a name that is a suffix of another cannot clobber
    # the longer one's occurrence mid-replacement.
    for name in sorted(set(rdata.names()), key=lambda n: -len(n.to_text())):
        abstracted = _abstract_name(name, origin, top)
        concrete = name.to_text()
        if abstracted != concrete:
            text = text.replace(concrete, abstracted)
    return text


def slice_lines(graph: LabelGraph, top: str) -> List[str]:
    """The α-abstracted rendering of one top's slice — the expensive part
    of its signature, depending only on the slice's own records (cacheable
    across env-digest churn)."""
    origin = graph.origin
    keyed = []
    for rec in graph.slice_of(top):
        owner = _abstract_name(rec.rname, origin, top)
        if rec.rtype in PAYLOAD_TYPES:
            keyed.append((owner, int(rec.rtype), rec.rdata.to_text(), True,
                          rec.ttl))
        else:
            keyed.append((owner, int(rec.rtype),
                          _abstract_rdata(rec.rdata, origin, top), False,
                          rec.ttl))
    # Canonical order: abstract owner, type, then concrete payload text as
    # the tie-break. Token numbering follows this order, so isomorphic
    # slices tokenise identically (up to payload-order ties, which only
    # ever split classes — conservative, never unsound).
    keyed.sort()
    tokens: Dict[Tuple[int, str], str] = {}
    lines = []
    for owner, rtype, rdata_text, is_payload, ttl in keyed:
        if is_payload:
            token = tokens.setdefault((rtype, rdata_text),
                                      f"@P{len(tokens)}")
            rdata_text = token
        lines.append(f"{owner} {ttl} {rtype} {rdata_text}")
    return lines


def member_signature(graph: LabelGraph, top: str,
                     lines: Optional[List[str]] = None) -> dict:
    """The behavioural signature of one top label's subtree.

    Two tops with equal signatures resolve identically up to renaming the
    top label and the opaque payloads — the class-collapse criterion.
    """
    return {
        "slice": slice_lines(graph, top) if lines is None else lines,
        "env": sorted((t, graph.slice_digest(t)) for t in graph.env_of(top)),
        "apex": graph.apex_digest(),
        "apexenv": sorted(
            (t, graph.slice_digest(t)) for t in graph.apex_env
        ),
        # The apex wildcard is in every projection (buggy engines consult
        # it where correct semantics would not), so every signature pins it.
        "wild": (
            graph.slice_digest(WILDCARD_TOP) if graph.has_wildcard() else None
        ),
        "wildenv": sorted(
            (t, graph.slice_digest(t)) for t in graph.env_of(WILDCARD_TOP)
        ),
    }


def translate_name(name: DnsName, rep: str, member: str,
                   origin: DnsName) -> DnsName:
    """Rewrite a representative-space name into member space.

    The inverse of the α-abstraction: every below-apex occurrence of the
    representative's label becomes the member's. Out-of-bailiwick names
    pass through untouched.
    """
    if not name.is_subdomain_of(origin):
        return name
    rel = name.relativize(origin)
    if not rel:
        return name
    labels = tuple(member if lab == rep else lab for lab in rel)
    return DnsName(labels + origin.labels)


# ---------------------------------------------------------------------------
# The planner


class ECPlanner(QueryPlanner):
    """One verification unit per equivalence class of query behaviours."""

    name = EQUIVALENCE_CLASS

    def __init__(self) -> None:
        self._zone: Optional[Zone] = None
        self._graph: Optional[LabelGraph] = None
        #: top label -> signature digest.
        self._sigs: Dict[str, str] = {}
        #: signature digest -> member top labels.
        self._class_members: Dict[str, Set[str]] = {}
        #: signature digest -> signature value (for unit digests).
        self._sig_values: Dict[str, dict] = {}
        #: top label -> cached α-abstracted slice rendering, invalidated
        #: only when the top's *own* records change — so re-signing a top
        #: whose environment digests moved costs O(env), not O(slice).
        self._lines: Dict[str, List[str]] = {}
        #: signature digest -> sorted member tuple, invalidated on
        #: membership change — a TLD-sized class holds hundreds of
        #: thousands of members, and re-sorting them per delta would put
        #: an O(members) term back into the flat-cost path.
        self._members_cache: Dict[str, Tuple[str, ...]] = {}
        self._units: Optional[List[PlanUnit]] = None
        self._units_by_id: Dict[str, PlanUnit] = {}
        #: Set after notify_delta: the next plan() call may adopt a zone
        #: object we have not seen, provided it matches the advanced graph.
        self._pending_adoption = False

    # -- protocol ----------------------------------------------------------

    def plan(self, zone: Zone) -> List[PlanUnit]:
        if self._graph is not None and self._matches_state(zone):
            self._zone = zone
            self._pending_adoption = False
            if self._units is None:
                self._refresh_units()
            return list(self._units)
        self._rebuild(zone)
        return list(self._units)

    def affected(self, delta) -> List[str]:
        if self._graph is None or self._zone is None:
            raise ValueError("affected() requires a prior plan() call")
        self._zone = delta.apply(self._zone)
        return self._advance(delta)

    def notify_delta(self, delta) -> None:
        if self._graph is None:
            return
        self._advance(delta)
        # The caller holds the post-delta zone object; accept it at the
        # next plan() call instead of rebuilding the graph from scratch.
        self._zone = None
        self._pending_adoption = True

    def unit_digest(self, zone: Zone, unit: PlanUnit) -> str:
        self.plan(zone)
        current = self._units_by_id.get(unit.id)
        return current.digest if current is not None else unit.digest

    def unit_of_name(self, zone: Zone, name: DnsName) -> Optional[str]:
        self.plan(zone)
        origin = self._graph.origin
        if not name.is_subdomain_of(origin):
            return "ec:outside"
        if name == origin:
            return "ec:apex"
        top = name.relativize(origin)[-1]
        if top == WILDCARD_TOP:
            return "ec:star"
        digest = self._sigs.get(top)
        if digest is None:
            return "ec:miss"
        return f"ec:sub:{digest[:12]}"

    # -- projection (engine-facing) ----------------------------------------

    def projected_zone(self, unit: PlanUnit) -> Zone:
        """The smallest zone that reproduces the unit's behaviour: the
        dependency closure of its representative. Verifying against it
        instead of the full zone is what decouples per-unit symbolic cost
        from zone size."""
        self._require_plan()
        graph = self._graph
        if unit.kind in (KIND_APEX, KIND_OUTSIDE):
            records = graph.environment_records(None)
        elif unit.kind in (KIND_MISS, KIND_STAR):
            wild = WILDCARD_TOP if graph.has_wildcard() else None
            records = graph.environment_records(wild)
        elif unit.kind == KIND_SUB:
            records = graph.environment_records(unit.representative)
        else:
            raise ValueError(f"cannot project unit kind {unit.kind!r}")
        return self._as_zone(records)

    def member_zone(self, member: str) -> Zone:
        """The dependency closure of one class member (for native
        re-validation of translated counterexamples)."""
        self._require_plan()
        return self._as_zone(self._graph.environment_records(member))

    def members_of(self, unit: PlanUnit) -> Tuple[str, ...]:
        return unit.members

    def _as_zone(self, records) -> Zone:
        return Zone(
            self._graph.origin,
            tuple(sorted(records, key=lambda r: r.sort_key())),
        )

    # -- state maintenance -------------------------------------------------

    def _require_plan(self) -> None:
        if self._graph is None:
            raise ValueError("planner has no plan; call plan(zone) first")

    def _matches_state(self, zone: Zone) -> bool:
        if zone is self._zone:
            return True
        # After notify_delta we only know the delta, not the caller's new
        # zone object; adopt it when it is plausibly the advanced zone.
        return (
            self._pending_adoption
            and zone.origin == self._graph.origin
            and len(zone.records) == self._graph.total_records()
        )

    def _rebuild(self, zone: Zone) -> None:
        self._graph = LabelGraph.build(zone)
        self._zone = zone
        self._pending_adoption = False
        self._sigs = {}
        self._class_members = {}
        self._sig_values = {}
        self._lines = {}
        self._members_cache = {}
        for top in self._graph.slices:
            if top != WILDCARD_TOP:
                self._assign_sig(top)
        self._refresh_units()

    def _advance(self, delta) -> List[str]:
        if self._units is None:
            self._refresh_units()
        before = {u.id: u.digest for u in self._units}
        origin = self._graph.origin
        touched = {
            top for change in delta.changes
            if (top := _top_of(origin, change.record.rname)) is not None
        }
        dirty, apex_changed = self._graph.advance(delta)
        # A touched slice's cached abstraction is stale; a merely-dirty
        # consumer's is not (only its observable env digests moved).
        for top in touched:
            self._lines.pop(top, None)
        if apex_changed or WILDCARD_TOP in dirty:
            # Every signature embeds the apex digest and the wildcard
            # slice/env digests; re-sign everything. Rare (apex or
            # wildcard edits), and exactly mirrors the by-label planner,
            # where an apex change invalidates every partition closure.
            resign = set(self._graph.slices)
        else:
            resign = {t for t in dirty if t in self._graph.slices}
        for top in resign:
            if top != WILDCARD_TOP:
                self._assign_sig(top)
        # Tops only vanish when touched — no O(tops) sweep needed.
        for gone in touched:
            if gone not in self._graph.slices:
                self._remove_sig(gone)
                self._lines.pop(gone, None)
        self._refresh_units()
        affected = [
            u.id for u in self._units if before.get(u.id) != u.digest
        ]
        current = self._units_by_id
        # A re-signed class reappears under a new id (ids embed the class
        # digest); report the vanished ids too so callers see the full
        # invalidation set.
        affected.extend(sorted(uid for uid in before if uid not in current))
        return affected

    def _assign_sig(self, top: str) -> None:
        lines = self._lines.get(top)
        if lines is None:
            lines = slice_lines(self._graph, top)
            self._lines[top] = lines
        sig = member_signature(self._graph, top, lines=lines)
        digest = digest_json(sig)
        old = self._sigs.get(top)
        if old == digest:
            return
        if old is not None:
            self._remove_sig(top)
        self._sigs[top] = digest
        self._class_members.setdefault(digest, set()).add(top)
        self._sig_values.setdefault(digest, sig)
        self._members_cache.pop(digest, None)

    def _remove_sig(self, top: str) -> None:
        digest = self._sigs.pop(top, None)
        if digest is None:
            return
        members = self._class_members.get(digest)
        if members is not None:
            members.discard(top)
            if not members:
                del self._class_members[digest]
                self._sig_values.pop(digest, None)
        self._members_cache.pop(digest, None)

    def _refresh_units(self) -> None:
        graph = self._graph
        apex_digest = graph.apex_digest()
        apexenv = sorted(
            (t, graph.slice_digest(t)) for t in graph.apex_env
        )
        wild_digest = (
            graph.slice_digest(WILDCARD_TOP) if graph.has_wildcard() else None
        )
        wildenv = sorted(
            (t, graph.slice_digest(t)) for t in graph.env_of(WILDCARD_TOP)
        )
        units = [
            PlanUnit(
                id="ec:apex",
                kind=KIND_APEX,
                part_key="apex",
                members=("@",),
                digest=digest_json(
                    {
                        "kind": "apex",
                        "apex": apex_digest,
                        "apexenv": apexenv,
                        "wild": wild_digest,
                        "wildenv": wildenv,
                    }
                ),
            ),
            PlanUnit(
                id="ec:outside",
                kind=KIND_OUTSIDE,
                part_key="outside",
                members=("@outside",),
                digest=digest_json(
                    {
                        "kind": "outside",
                        "apex": apex_digest,
                        "wild": wild_digest,
                    }
                ),
            ),
            # The miss digest deliberately omits the set of existing tops:
            # adding or removing an unrelated subtree must NOT invalidate
            # the NXDOMAIN/wildcard-synthesis verdict. That omission is the
            # planner's biggest single win over partition_closure, whose
            # miss closure enumerates every top label.
            PlanUnit(
                id="ec:miss",
                kind=KIND_MISS,
                part_key="gap",
                members=("@gap",),
                digest=digest_json(
                    {
                        "kind": "miss",
                        "apex": apex_digest,
                        "apexenv": apexenv,
                        "wild": wild_digest,
                        "wildenv": wildenv,
                    }
                ),
                gap_code=self._choose_gap_code(),
            ),
            PlanUnit(
                id="ec:star",
                kind=KIND_STAR,
                part_key="star",
                members=(WILDCARD_TOP,),
                digest=digest_json(
                    {
                        "kind": "star",
                        "apex": apex_digest,
                        "apexenv": apexenv,
                        "wild": wild_digest,
                        "wildenv": wildenv,
                    }
                ),
            ),
        ]
        for digest in sorted(self._class_members):
            members = self._members_cache.get(digest)
            if members is None:
                members = tuple(sorted(self._class_members[digest]))
                self._members_cache[digest] = members
            units.append(
                PlanUnit(
                    id=f"ec:sub:{digest[:12]}",
                    kind=KIND_SUB,
                    part_key=f"sub:{members[0]}",
                    members=members,
                    digest=digest,
                    representative=members[0],
                )
            )
        self._units = units
        self._units_by_id = {u.id: u for u in units}

    def _choose_gap_code(self) -> int:
        """A concrete query-label code for the miss unit.

        Chosen in the *projected* miss zone's interner space — identical to
        the interner the verification session will build over that zone —
        and constrained to decode to a label that exists nowhere among the
        full zone's tops, so the representative query is a genuine miss in
        both the projected and the full zone. Gap decoding depends only on
        the inter-label rank, so the mid-gap code is canonical.
        """
        graph = self._graph
        wild = WILDCARD_TOP if graph.has_wildcard() else None
        miss_zone = self._as_zone(graph.environment_records(wild))
        interner = LabelInterner.for_zone(miss_zone)
        for rank in range(len(interner) + 1):
            code = rank * LABEL_SPACING + LABEL_SPACING // 2
            label = interner.decode(code)
            if label is None or label in graph.slices:
                continue
            return code
        raise ValueError(
            "no interner gap decodes to a label absent from the zone; "
            "cannot pin a miss representative"
        )

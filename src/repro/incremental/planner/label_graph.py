"""A label graph over one zone: the substrate of equivalence-class planning.

Nodes are the below-apex top labels (the children of the apex, i.e. the
roots of the subtree slices the delta machinery already invalidates at);
edges are the rdata-embedded dependencies between them — CNAME/DNAME/ALIAS
chase targets and NS/MX/SRV additional-section glue, the same rules
:func:`repro.incremental.delta.partition_closure` chases. The graph keeps,
per top:

- the subtree slice (records) and its content digest;
- the *environment*: the transitively reachable set of other tops whose
  slices the top's resolution can observe (including absent targets, whose
  empty slices pin absence, and the apex wildcard when it would synthesize
  for an absent target);
- a reverse index (``consumed_by``) so a record-level delta dirties exactly
  the tops whose observable environment changed — O(affected), not
  O(records).

Records owned by the apex itself are tracked separately (``apex_records``)
together with the environment reachable from them (``apex_env``), because
every query observes the apex: a change there dirties the whole plan,
exactly as it invalidates every by-label partition today.

The graph is built in one O(records) pass and advanced per delta in
O(dirty region); it never touches the full record list again after
construction, which is what keeps per-delta planning cost flat in zone
size.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dns.records import ResourceRecord
from repro.dns.rtypes import RRType
from repro.dns.zone import Zone
from repro.incremental.digest import records_digest

#: Pseudo-node key for the apex wildcard subtree.
WILDCARD_TOP = "*"


def _top_of(origin, name) -> Optional[str]:
    """First below-apex label of ``name``, or None for the apex/outside."""
    if not name.is_proper_subdomain_of(origin):
        return None
    return name.relativize(origin)[-1]


class LabelGraph:
    """Per-top slices, chase edges and dirty tracking for one zone."""

    def __init__(self, origin) -> None:
        self.origin = origin
        self.apex_records: List[ResourceRecord] = []
        #: top label -> records of its subtree slice (unsorted multiset).
        self.slices: Dict[str, List[ResourceRecord]] = {}
        #: top label -> digest of its slice (lazily maintained).
        self._slice_digests: Dict[str, str] = {}
        #: top label -> the environment tops its slice transitively chases
        #: (None means empty — the overwhelmingly common, self-contained
        #: case; kept as None to stay lean at million-top scale).
        self._env: Dict[str, Optional[FrozenSet[str]]] = {}
        #: reverse index: top -> set of tops whose env consumes it.
        self._consumed_by: Dict[str, Set[str]] = {}
        #: environment reachable from the apex records themselves.
        self.apex_env: FrozenSet[str] = frozenset()
        self._apex_digest: Optional[str] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, zone: Zone) -> "LabelGraph":
        graph = cls(zone.origin)
        for rec in zone.records:
            graph._place(rec)
        graph._recompute_apex_env()
        for top in graph.slices:
            graph._recompute_env(top)
        return graph

    def _place(self, rec: ResourceRecord) -> None:
        top = _top_of(self.origin, rec.rname)
        if top is None:
            self.apex_records.append(rec)
        else:
            self.slices.setdefault(top, []).append(rec)

    # -- views -------------------------------------------------------------

    @property
    def tops(self) -> List[str]:
        """Sorted existing top labels (including ``*`` when present)."""
        return sorted(self.slices)

    def has_wildcard(self) -> bool:
        return WILDCARD_TOP in self.slices

    def slice_of(self, top: str) -> List[ResourceRecord]:
        return self.slices.get(top, [])

    def slice_digest(self, top: str) -> str:
        digest = self._slice_digests.get(top)
        if digest is None:
            digest = records_digest(self.slices.get(top, []))
            self._slice_digests[top] = digest
        return digest

    def apex_digest(self) -> str:
        if self._apex_digest is None:
            self._apex_digest = records_digest(self.apex_records)
        return self._apex_digest

    def env_of(self, top: str) -> FrozenSet[str]:
        env = self._env.get(top)
        return env if env is not None else frozenset()

    def total_records(self) -> int:
        return len(self.apex_records) + sum(len(s) for s in self.slices.values())

    def environment_records(self, top: Optional[str]) -> List[ResourceRecord]:
        """The closure slice for one top (or the apex when ``top`` is
        None): apex records, the apex environment, the apex wildcard (when
        present), the top's own slice and its chased environment.

        The wildcard slice rides along in *every* closure, not just the
        miss unit's: correct resolution never consults it for queries
        under an existing top, but a buggy engine may (v3.0 synthesizes
        the apex wildcard at empty non-terminals), and the projection must
        preserve buggy behaviour too — the whole point of verifying
        against it."""
        seen: Set[str] = set()
        records = list(self.apex_records)
        for t in self.apex_env:
            if t not in seen:
                seen.add(t)
                records += self.slices.get(t, [])
        if WILDCARD_TOP in self.slices and WILDCARD_TOP not in seen:
            seen.add(WILDCARD_TOP)
            records += self.slices[WILDCARD_TOP]
            for t in self.env_of(WILDCARD_TOP):
                if t not in seen:
                    seen.add(t)
                    records += self.slices.get(t, [])
        if top is not None and top not in seen:
            seen.add(top)
            records += self.slices.get(top, [])
        if top is not None:
            for t in self.env_of(top):
                if t not in seen:
                    seen.add(t)
                    records += self.slices.get(t, [])
        return records

    # -- chase edges -------------------------------------------------------

    def _chase_tops(self, records: List[ResourceRecord],
                    exclude: Optional[str]) -> Set[str]:
        """Direct chase-target tops of ``records`` (rdata-embedded in-zone
        names, SOA exempt), excluding ``exclude`` (the owner top itself)
        and the apex. Absent targets under a present apex wildcard also
        contribute the wildcard node, which would synthesize for them."""
        targets: Set[str] = set()
        wildcard = WILDCARD_TOP in self.slices
        for rec in records:
            if rec.rtype is RRType.SOA:
                continue
            for name in rec.rdata.names():
                top = _top_of(self.origin, name)
                if top is None or top == exclude:
                    continue
                targets.add(top)
                if top not in self.slices and wildcard:
                    targets.add(WILDCARD_TOP)
        return targets

    def _reachable(self, seed_records: List[ResourceRecord],
                   exclude: Optional[str]) -> FrozenSet[str]:
        """Transitive chase closure: every top whose slice the seed can
        observe (absent tops included — their empty slices pin absence)."""
        reached: Set[str] = set()
        frontier = self._chase_tops(seed_records, exclude)
        while frontier:
            top = frontier.pop()
            if top in reached:
                continue
            reached.add(top)
            slice_records = self.slices.get(top)
            if slice_records:
                for nxt in self._chase_tops(slice_records, exclude):
                    if nxt not in reached:
                        frontier.add(nxt)
        return frozenset(reached)

    # -- environment maintenance -------------------------------------------

    def _recompute_apex_env(self) -> None:
        self.apex_env = self._reachable(self.apex_records, exclude=None)

    def _recompute_env(self, top: str) -> None:
        old = self._env.get(top) or frozenset()
        slice_records = self.slices.get(top)
        new = (
            self._reachable(slice_records, exclude=top)
            if slice_records else frozenset()
        )
        for gone in old - new:
            consumers = self._consumed_by.get(gone)
            if consumers:
                consumers.discard(top)
                if not consumers:
                    del self._consumed_by[gone]
        for added in new - old:
            self._consumed_by.setdefault(added, set()).add(top)
        if new:
            self._env[top] = new
        else:
            self._env.pop(top, None)

    # -- delta advance -----------------------------------------------------

    def advance(self, delta) -> Tuple[Set[str], bool]:
        """Apply a record-level delta to the graph.

        Returns ``(dirty_tops, apex_changed)``: the set of existing or
        newly-created tops whose observable content changed (their own
        slice, or a slice in their environment), and whether the apex
        records — which every unit observes — changed. Environments of
        dirty tops are recomputed here; signatures are the planner's job.
        """
        touched: Set[str] = set()
        apex_changed = False
        for change in delta.changes:
            top = _top_of(self.origin, change.record.rname)
            if top is not None:
                touched.add(top)
        # Environments are *structural* (which tops a slice can reach), so
        # a consumer's env only changes when a touched slice's direct chase
        # edges changed — payload-only churn (the dominant delta) leaves
        # them intact. Snapshot edges before mutating to tell the two apart.
        pre_edges = {
            top: self._chase_tops(self.slices.get(top, []), exclude=top)
            for top in touched
        }
        for change in delta.changes:
            rec = change.record
            top = _top_of(self.origin, rec.rname)
            if top is None:
                apex_changed = True
                if change.op == "add":
                    self.apex_records.append(rec)
                else:
                    self.apex_records.remove(rec)
                continue
            if change.op == "add":
                self.slices.setdefault(top, []).append(rec)
            else:
                slice_records = self.slices.get(top, [])
                slice_records.remove(rec)
                if not slice_records:
                    self.slices.pop(top, None)
            self._slice_digests.pop(top, None)
        # A changed slice dirties every top that consumes it (including
        # consumers that chased it while absent), plus itself.
        dirty: Set[str] = set()
        for top in touched:
            dirty.add(top)
            dirty.update(self._consumed_by.get(top, ()))
        if WILDCARD_TOP in touched:
            # Wildcard churn can flip synthesis for *absent* chase targets,
            # which rewires environments of tops that never consumed "*"
            # before. Any such top has a non-empty env (the absent target
            # is in it), so dirtying every env-bearing top is exact enough
            # and small: envs are sparse even at TLD scale.
            dirty.update(self._env.keys())
        if apex_changed:
            self._apex_digest = None
        if apex_changed or WILDCARD_TOP in touched:
            self._recompute_apex_env()
        recompute = set(touched)
        for top in touched:
            post = self._chase_tops(self.slices.get(top, []), exclude=top)
            if post != pre_edges[top]:
                # Rewired edges ripple through every transitive consumer
                # (the reverse index is already transitive).
                recompute.update(self._consumed_by.get(top, ()))
        if WILDCARD_TOP in touched:
            recompute.update(self._env.keys())
        for top in sorted(recompute):
            # Recompute (or, for deleted tops, clear) the env + reverse
            # index entries.
            self._recompute_env(top)
        return dirty, apex_changed

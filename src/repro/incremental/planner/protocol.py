"""The query-planning protocol: how a verification run splits the query space.

Since PR 1 the query space of one verification run has been partitioned by
the first below-apex label (:func:`repro.incremental.delta.zone_partitions`),
which produces one verification unit per apex child — linear in zone size.
This module promotes that choice to a first-class, pluggable abstraction:

- a :class:`QueryPlanner` turns a zone into an ordered list of
  :class:`PlanUnit`\\ s, each describing one restricted symbolic run;
- :class:`~repro.incremental.planner.by_label.ByLabelPlanner` reproduces
  the historical per-subtree behaviour exactly (it is the default and the
  reference oracle);
- :class:`~repro.incremental.planner.ec.ECPlanner` collapses behaviourally
  identical subtrees into equivalence classes and verifies one
  representative per class (Groot's label-graph idea), which is what makes
  million-record zones tractable.

The planner choice travels in ``VerifyOptions.planner`` (``"by-label"`` or
``"equivalence-class"``) and threads through :class:`repro.Session`, the
:class:`~repro.incremental.engine.IncrementalVerifier`, the parallel
executor and the verdict-cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.solver import eq, ge

#: Canonical planner names (the ``VerifyOptions.planner`` vocabulary).
BY_LABEL = "by-label"
EQUIVALENCE_CLASS = "equivalence-class"
PLANNERS = (BY_LABEL, EQUIVALENCE_CLASS)

#: PlanUnit kinds. ``partition`` units are the by-label planner's (and the
#: ``full`` fallback's); the rest are equivalence-class kinds.
KIND_PARTITION = "partition"
KIND_APEX = "apex"
KIND_OUTSIDE = "outside"
KIND_MISS = "miss"
KIND_STAR = "star"
KIND_SUB = "sub"


@dataclass(frozen=True)
class PlanUnit:
    """One verification unit of a query plan.

    ``part_key`` names the *representative* restriction the symbolic run
    uses (a :class:`~repro.incremental.delta.Partition` key such as
    ``sub:www``, or the planner-level keys ``gap``/``star``);
    ``members`` lists everything the unit covers — for by-label units the
    single partition key, for equivalence classes every member top label.
    ``digest`` is the unit's content digest (what the verdict cache keys
    on); ``gap_code`` pins the query label of a ``gap`` unit to one
    concrete, decodable non-member code.
    """

    id: str
    kind: str
    part_key: str
    members: Tuple[str, ...]
    digest: str = ""
    representative: Optional[str] = None
    gap_code: Optional[int] = None

    def describe(self) -> str:
        extent = (
            f"{len(self.members)} member(s)" if len(self.members) != 1
            else self.members[0]
        )
        return f"{self.id} [{self.kind}] -> {self.part_key} ({extent})"


class QueryPlanner:
    """Protocol every query planner implements.

    A planner is stateful: :meth:`plan` computes (and caches) the unit
    list for a zone; :meth:`notify_delta` advances that state when the
    caller applies a :class:`~repro.incremental.delta.ZoneDelta` to the
    last-planned zone; :meth:`affected` reports which unit ids a delta
    invalidates (and advances, so a subsequent :meth:`plan` on the
    post-delta zone is incremental); :meth:`unit_digest` returns the
    content digest the verdict cache keys on.
    """

    #: Canonical planner name (``VerifyOptions.planner`` value).
    name: str = "abstract"

    def plan(self, zone) -> List[PlanUnit]:
        raise NotImplementedError

    def affected(self, delta) -> List[str]:
        raise NotImplementedError

    def unit_digest(self, zone, unit: PlanUnit) -> str:
        raise NotImplementedError

    def notify_delta(self, delta) -> None:
        """Advance internal plan state after the caller applied ``delta``
        to the last-planned zone. Default: stateless planners ignore it."""

    def unit_of_name(self, zone, name) -> Optional[str]:
        """The id of the unit whose query space contains ``name``, or
        None when the planner has no unit covering it (conformance-test
        hook; both implementations are total over concrete names)."""
        raise NotImplementedError


def unit_preconditions(part_key: str, gap_code: Optional[int], encoding):
    """Constraints confining a symbolic query to one plan unit.

    Delegates partition keys (``apex``/``outside``/``miss``/``sub:*``/
    ``full``) to :meth:`Partition.preconditions` — bit-identical to the
    historical restriction — and adds the two planner-level keys:

    - ``gap``: the query's first below-apex label is pinned to
      ``gap_code``, a concrete interner-gap value decoding to a label no
      zone subtree matches (one concrete NXDOMAIN/wildcard-synthesis
      representative instead of an O(tops) exclusion constraint);
    - ``star``: the first below-apex label is pinned to the wildcard
      code, covering queries that name ``*`` literally.
    """
    from repro.dns.interner import WILDCARD_CODE
    from repro.incremental.delta import Partition

    if part_key == "full":
        return []
    if part_key in ("gap", "star"):
        interner = encoding.encoder.interner
        origin = encoding.encoder.zone.origin
        origin_codes = list(interner.encode_name(origin))
        depth = len(origin_codes)
        if encoding.depth <= depth:
            raise ValueError(
                f"encoding depth {encoding.depth} cannot express queries "
                f"below a {depth}-label origin"
            )
        prefix = [eq(encoding.labels[i], origin_codes[i]) for i in range(depth)]
        pinned = WILDCARD_CODE if part_key == "star" else gap_code
        if pinned is None:
            raise ValueError("gap unit requires a gap_code")
        return prefix + [
            ge(encoding.name_len, depth + 1),
            eq(encoding.labels[depth], pinned),
        ]
    return Partition(part_key).preconditions(encoding)


def make_planner(spec) -> QueryPlanner:
    """A planner instance from a name (``by-label``/``equivalence-class``)
    or an existing :class:`QueryPlanner` (returned as-is)."""
    if isinstance(spec, QueryPlanner):
        return spec
    if spec in (None, BY_LABEL):
        from repro.incremental.planner.by_label import ByLabelPlanner

        return ByLabelPlanner()
    if spec == EQUIVALENCE_CLASS:
        from repro.incremental.planner.ec import ECPlanner

        return ECPlanner()
    raise ValueError(
        f"unknown planner {spec!r}; expected one of {', '.join(PLANNERS)}"
    )

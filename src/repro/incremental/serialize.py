"""JSON round-trips for verification artifacts.

Summaries, refinement reports and bug reports are in-memory objects built
from solver terms, heap pointers and effect records; this module gives each
a canonical JSON form so the content-addressed cache can persist them.

Portability contract (what makes reloading sound):

- solver **terms** serialize by structure (variable names, coefficients,
  atom kinds) and rebuild exactly;
- **pointers** serialize as ``(block_id, path)``. Heap construction is
  deterministic, so block ids are portable between two sessions built from
  the *same zone content* — which is precisely what the cache keys
  guarantee (summaries and refinement reports are keyed by exact zone
  digest; partition verdicts additionally pin the label universe);
- **summaries** store their cases and parameter symbols but *not* their
  parameter specs: specs hold session-local heap pointers, so the loader
  takes them from the current session's layer configuration;
- **mismatches** are trimmed to ``(kind, observation, model values)`` —
  exactly what counterexample decoding consumes — and replayed through the
  normal decode/validate path on load.

Anything outside the known vocabulary raises :class:`SerializationError`;
callers treat that as a cache miss, never an error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.pipeline import BugReport, LayerResult, VerificationResult
from repro.dns.message import Query
from repro.dns.name import DnsName
from repro.dns.rtypes import RRType
from repro.refine.checker import Mismatch, RefinementReport
from repro.solver.solver import Model
from repro.solver.terms import (
    And,
    Atom,
    BoolConst,
    BoolExpr,
    BoolLit,
    IntExpr,
    Or,
    bool_const,
)
from repro.summary.effects import Effect, FieldWrite, ListAppend, NewObject, NewTag
from repro.summary.summarize import Summary, SummaryCase, _ResultParamInfo
from repro.symex.executor import PanicInfo
from repro.symex.values import UNINIT, Pointer


class SerializationError(ValueError):
    """The artifact uses a vocabulary this format does not cover."""


# ---------------------------------------------------------------------------
# Solver terms
# ---------------------------------------------------------------------------


def term_to_json(term) -> Dict:
    if isinstance(term, IntExpr):
        return {"t": "int", "coeffs": [list(c) for c in term.coeffs], "const": term.const}
    if isinstance(term, BoolConst):
        return {"t": "bconst", "value": term.value}
    if isinstance(term, BoolLit):
        return {"t": "blit", "name": term.name, "positive": term.positive}
    if isinstance(term, Atom):
        return {"t": "atom", "kind": term.kind, "expr": term_to_json(term.expr)}
    if isinstance(term, (And, Or)):
        tag = "and" if isinstance(term, And) else "or"
        return {"t": tag, "args": [term_to_json(a) for a in term.args]}
    raise SerializationError(f"unsupported term {term!r}")


def term_from_json(data: Dict):
    tag = data["t"]
    if tag == "int":
        return IntExpr(tuple((name, coeff) for name, coeff in data["coeffs"]), data["const"])
    if tag == "bconst":
        return bool_const(data["value"])
    if tag == "blit":
        return BoolLit(data["name"], data["positive"])
    if tag == "atom":
        return Atom(data["kind"], term_from_json(data["expr"]))
    if tag == "and":
        return And(tuple(term_from_json(a) for a in data["args"]))
    if tag == "or":
        return Or(tuple(term_from_json(a) for a in data["args"]))
    raise SerializationError(f"unknown term tag {tag!r}")


# ---------------------------------------------------------------------------
# Effect values (terms, pointers, allocation tags, scalars)
# ---------------------------------------------------------------------------


def value_to_json(value) -> Dict:
    if value is None:
        return {"t": "none"}
    if value is UNINIT:
        return {"t": "uninit"}
    if isinstance(value, bool):
        return {"t": "bool", "value": value}
    if isinstance(value, int):
        return {"t": "scalar", "value": value}
    if isinstance(value, str):
        return {"t": "str", "value": value}
    if isinstance(value, NewTag):
        return {"t": "newtag", "index": value.index}
    if isinstance(value, Pointer):
        if any(not isinstance(p, int) for p in value.path):
            raise SerializationError(f"pointer with symbolic path {value!r}")
        return {"t": "ptr", "block": value.block_id, "path": list(value.path)}
    if isinstance(value, (IntExpr, BoolExpr)):
        return {"t": "term", "term": term_to_json(value)}
    if isinstance(value, tuple):
        return {"t": "tuple", "items": [value_to_json(v) for v in value]}
    raise SerializationError(f"unsupported effect value {value!r}")


def value_from_json(data: Dict):
    tag = data["t"]
    if tag == "none":
        return None
    if tag == "uninit":
        return UNINIT
    if tag == "bool":
        return data["value"]
    if tag == "scalar":
        return data["value"]
    if tag == "str":
        return data["value"]
    if tag == "newtag":
        return NewTag(data["index"])
    if tag == "ptr":
        return Pointer(data["block"], tuple(data["path"]))
    if tag == "term":
        return term_from_json(data["term"])
    if tag == "tuple":
        return tuple(value_from_json(v) for v in data["items"])
    raise SerializationError(f"unknown value tag {tag!r}")


def effect_to_json(effect: Effect) -> Dict:
    if isinstance(effect, FieldWrite):
        return {
            "t": "fieldwrite",
            "param": effect.param,
            "field_index": effect.field_index,
            "field_name": effect.field_name,
            "value": value_to_json(effect.value),
        }
    if isinstance(effect, ListAppend):
        return {
            "t": "listappend",
            "param": effect.param,
            "field_index": effect.field_index,
            "field_name": effect.field_name,
            "value": value_to_json(effect.value),
        }
    if isinstance(effect, NewObject):
        return {
            "t": "newobject",
            "tag": effect.tag.index,
            "struct": effect.struct_name,
            "fields": [value_to_json(v) for v in effect.field_values],
        }
    raise SerializationError(f"unsupported effect {effect!r}")


def effect_from_json(data: Dict) -> Effect:
    tag = data["t"]
    if tag == "fieldwrite":
        return FieldWrite(
            data["param"], data["field_index"], data["field_name"],
            value_from_json(data["value"]),
        )
    if tag == "listappend":
        return ListAppend(
            data["param"], data["field_index"], data["field_name"],
            value_from_json(data["value"]),
        )
    if tag == "newobject":
        return NewObject(
            NewTag(data["tag"]), data["struct"],
            tuple(value_from_json(v) for v in data["fields"]),
        )
    raise SerializationError(f"unknown effect tag {tag!r}")


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------


def _param_symbol_to_json(symbol) -> Dict:
    if symbol is None:
        return {"t": "none"}
    if isinstance(symbol, str):
        return {"t": "name", "name": symbol}
    if isinstance(symbol, _ResultParamInfo):
        return {
            "t": "result",
            "struct": symbol.struct_name,
            "block": symbol.block_id,
            "scalars": [list(f) for f in symbol.scalar_fields],
            "lists": [list(f) for f in symbol.list_fields],
            "fields": list(symbol.field_names),
        }
    raise SerializationError(f"unsupported param symbol {symbol!r}")


def _param_symbol_from_json(data: Dict):
    tag = data["t"]
    if tag == "none":
        return None
    if tag == "name":
        return data["name"]
    if tag == "result":
        return _ResultParamInfo(
            data["struct"],
            data["block"],
            [tuple(f) for f in data["scalars"]],
            [tuple(f) for f in data["lists"]],
            tuple(data["fields"]),
        )
    raise SerializationError(f"unknown param symbol tag {tag!r}")


def case_to_json(case: SummaryCase) -> Dict:
    return {
        "condition": term_to_json(case.condition),
        "effects": [effect_to_json(e) for e in case.effects],
        "ret": value_to_json(case.ret),
        "panic": (
            None
            if case.panic is None
            else {"kind": case.panic.kind, "message": case.panic.message,
                  "function": case.panic.function}
        ),
    }


def case_from_json(data: Dict) -> SummaryCase:
    panic = data["panic"]
    return SummaryCase(
        term_from_json(data["condition"]),
        tuple(effect_from_json(e) for e in data["effects"]),
        value_from_json(data["ret"]),
        None if panic is None else PanicInfo(panic["kind"], panic["message"], panic["function"]),
    )


def summary_to_json(summary: Summary) -> Dict:
    return {
        "name": summary.name,
        "param_symbols": [_param_symbol_to_json(s) for s in summary.param_symbols],
        "cases": [case_to_json(c) for c in summary.cases],
        "elapsed_seconds": summary.elapsed_seconds,
        "paths_explored": summary.paths_explored,
    }


def summary_from_json(data: Dict, param_specs) -> Summary:
    """Rebuild a summary; ``param_specs`` come from the *current* session's
    layer configuration (they carry session-local heap pointers)."""
    return Summary(
        data["name"],
        param_specs,
        [_param_symbol_from_json(s) for s in data["param_symbols"]],
        [case_from_json(c) for c in data["cases"]],
        data["elapsed_seconds"],
        data["paths_explored"],
    )


# ---------------------------------------------------------------------------
# Refinement reports (trimmed to what counterexample decoding consumes)
# ---------------------------------------------------------------------------


def report_to_json(report: RefinementReport) -> Dict:
    mismatches = []
    for mismatch in report.mismatches:
        mismatches.append(
            {
                "kind": mismatch.kind,
                "observation": mismatch.observation,
                "model": None if mismatch.model is None else mismatch.model.as_dict(),
            }
        )
    return {
        "code_name": report.code_name,
        "spec_name": report.spec_name,
        "verified": report.verified,
        "mismatches": mismatches,
        "code_paths": report.code_paths,
        "spec_paths": report.spec_paths,
        "pairs_checked": report.pairs_checked,
        "elapsed_seconds": report.elapsed_seconds,
        "unknowns": report.unknowns,
    }


def report_from_json(data: Dict) -> RefinementReport:
    mismatches = [
        Mismatch(
            m["kind"],
            None if m["model"] is None else Model(m["model"]),
            None,
            None,
            m["observation"],
        )
        for m in data["mismatches"]
    ]
    return RefinementReport(
        data["code_name"],
        data["spec_name"],
        data["verified"],
        mismatches,
        data["code_paths"],
        data["spec_paths"],
        data["pairs_checked"],
        data["elapsed_seconds"],
        data["unknowns"],
    )


# ---------------------------------------------------------------------------
# Bug reports and verification results (CLI --json, partition verdicts)
# ---------------------------------------------------------------------------


def bug_to_json(bug: BugReport) -> Dict:
    return {
        "version": bug.version,
        "categories": list(bug.categories),
        "query": (
            None
            if bug.query is None
            else {"qname": list(bug.query.qname.labels), "qtype": int(bug.query.qtype)}
        ),
        "qname_codes": list(bug.qname_codes),
        "qtype_code": bug.qtype_code,
        "description": bug.description,
        "validated": bug.validated,
        "engine_summary": bug.engine_summary,
        "expected_summary": bug.expected_summary,
    }


def bug_from_json(data: Dict) -> BugReport:
    query: Optional[Query] = None
    if data["query"] is not None:
        query = Query(
            DnsName(tuple(data["query"]["qname"])), RRType(data["query"]["qtype"])
        )
    return BugReport(
        data["version"],
        tuple(data["categories"]),
        query,
        tuple(data["qname_codes"]),
        data["qtype_code"],
        data["description"],
        data["validated"],
        data["engine_summary"],
        data["expected_summary"],
    )


def result_to_json(result: VerificationResult, cache_stats: Optional[Dict] = None,
                   reuse: Optional[Dict] = None) -> Dict:
    """Machine-readable form of a verification outcome (the ``--json`` CLI
    contract; the watch daemon logs a subset of this)."""
    payload = {
        "version": result.version,
        "zone_origin": result.zone_origin,
        "verified": result.verified,
        "bugs": [bug_to_json(b) for b in result.bugs],
        "bug_categories": result.bug_categories(),
        "layers": [
            {
                "name": layer.name,
                "route": layer.route,
                "elapsed_seconds": layer.elapsed_seconds,
                "paths": layer.paths,
                "cases": layer.cases,
                "verified": layer.verified,
            }
            for layer in result.layers
        ],
        "elapsed_seconds": result.elapsed_seconds,
        "solver_checks": result.solver_checks,
        "spurious_mismatches": result.spurious_mismatches,
        "verdict": result.verdict,
        "unknown_reason": result.unknown_reason,
        "error_class": result.error_class,
        "error_detail": result.error_detail,
        "partial": None if result.partial is None else dict(result.partial),
        "phase_seconds": dict(result.phase_seconds),
        "analysis": None if result.analysis is None else dict(result.analysis),
    }
    if cache_stats is not None:
        payload["cache"] = dict(cache_stats)
    if reuse is not None:
        payload["reuse"] = dict(reuse)
    return payload


def result_from_json(data: Dict) -> VerificationResult:
    result = VerificationResult(
        version=data["version"],
        zone_origin=data["zone_origin"],
        verified=data["verified"],
        bugs=[bug_from_json(b) for b in data["bugs"]],
        layers=[
            LayerResult(
                layer["name"], layer["route"], layer["elapsed_seconds"],
                layer["paths"], layer["cases"], layer["verified"],
            )
            for layer in data["layers"]
        ],
        refinement=None,
        elapsed_seconds=data["elapsed_seconds"],
        solver_checks=data["solver_checks"],
        spurious_mismatches=data["spurious_mismatches"],
    )
    # Verdict fields postdate the original format; their absence means a
    # pre-taxonomy artifact whose verdict is implied by ``verified``.
    result.verdict = data.get(
        "verdict", "VERIFIED" if result.verified else "BUG"
    )
    result.unknown_reason = data.get("unknown_reason")
    result.error_class = data.get("error_class")
    result.error_detail = data.get("error_detail", "")
    partial = data.get("partial")
    result.partial = dict(partial) if partial is not None else None
    result.phase_seconds = dict(data.get("phase_seconds") or {})
    analysis = data.get("analysis")
    result.analysis = dict(analysis) if analysis is not None else None
    return result

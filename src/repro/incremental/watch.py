"""A long-running daemon that re-verifies a zone file as it changes.

``WatchDaemon`` polls one zone file's mtime; when the file changes it
reparses, diffs against the running snapshot, re-verifies incrementally via
:class:`~repro.incremental.engine.IncrementalVerifier` and emits one JSON
log line per update (latency, partitions reused/recomputed, solver checks,
verdict). The CLI front end is ``python -m repro watch --zone ... --version
...``; tests drive :meth:`poll_once` directly.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dns.zonefile import parse_zone_text
from repro.incremental.cache import SummaryCache
from repro.incremental.engine import IncrementalOutcome, IncrementalVerifier


@dataclass
class WatchEvent:
    """One processed update (or the initial verification)."""

    sequence: int
    reason: str  # "initial" | "change"
    outcome: Optional[IncrementalOutcome]
    error: Optional[str]
    latency_seconds: float

    def to_json(self) -> dict:
        payload = {
            "sequence": self.sequence,
            "reason": self.reason,
            "latency_seconds": round(self.latency_seconds, 6),
        }
        if self.error is not None:
            payload["error"] = self.error
            return payload
        result = self.outcome.result
        payload.update(
            {
                "verified": result.verified,
                "bugs": len(result.bugs),
                "bug_categories": result.bug_categories(),
                "solver_checks": result.solver_checks,
                "reuse": self.outcome.reuse.as_dict(),
            }
        )
        return payload


class WatchDaemon:
    """Tail one zone file and keep its verification verdict current."""

    def __init__(
        self,
        zone_path: os.PathLike,
        version: str = "verified",
        cache: Optional[SummaryCache] = None,
        interval: float = 1.0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.zone_path = os.fspath(zone_path)
        self.version = version
        self.cache = cache if cache is not None else SummaryCache(memory_only=True)
        self.interval = interval
        self.log = log if log is not None else self._default_log
        self.verifier: Optional[IncrementalVerifier] = None
        self.sequence = 0
        self._last_mtime: Optional[float] = None
        self._last_size: Optional[int] = None
        self._last_stat_error: Optional[str] = None

    @staticmethod
    def _default_log(line: str) -> None:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()

    # -- polling ---------------------------------------------------------------

    def _stat(self):
        st = os.stat(self.zone_path)
        return st.st_mtime, st.st_size

    def poll_once(self) -> Optional[WatchEvent]:
        """Process at most one update; None when the file is unchanged."""
        try:
            mtime, size = self._stat()
        except OSError as exc:
            # Report a vanished file once, not on every poll while absent.
            error = f"stat failed: {exc}"
            if error == self._last_stat_error:
                return None
            self._last_stat_error = error
            return self._emit("change", None, error, 0.0)
        self._last_stat_error = None
        if (mtime, size) == (self._last_mtime, self._last_size):
            return None
        self._last_mtime, self._last_size = mtime, size

        started = time.perf_counter()
        try:
            with open(self.zone_path, "r", encoding="utf-8") as handle:
                zone = parse_zone_text(handle.read())
        except (OSError, ValueError) as exc:
            return self._emit(
                "change" if self.verifier else "initial",
                None,
                f"zone parse failed: {exc}",
                time.perf_counter() - started,
            )

        if self.verifier is None:
            self.verifier = IncrementalVerifier(zone, self.version, cache=self.cache)
            outcome = self.verifier.verify_current()
            reason = "initial"
        else:
            outcome = self.verifier.diff_to(zone)
            reason = "change"
        return self._emit(reason, outcome, None, time.perf_counter() - started)

    def _emit(self, reason, outcome, error, latency) -> WatchEvent:
        self.sequence += 1
        event = WatchEvent(self.sequence, reason, outcome, error, latency)
        self.log(json.dumps(event.to_json(), sort_keys=True))
        return event

    def run(self, max_updates: Optional[int] = None) -> int:
        """Poll until interrupted (or until ``max_updates`` events were
        processed); returns the number of events."""
        processed = 0
        try:
            while max_updates is None or processed < max_updates:
                event = self.poll_once()
                if event is not None:
                    processed += 1
                    if max_updates is not None and processed >= max_updates:
                        break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return processed

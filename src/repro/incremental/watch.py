"""A long-running daemon that re-verifies a zone file as it changes.

``WatchDaemon`` polls one zone file's mtime; when the file changes it
reparses, diffs against the running snapshot, re-verifies incrementally via
:class:`~repro.incremental.engine.IncrementalVerifier` and emits one JSON
log line per update (latency, partitions reused/recomputed, solver checks,
verdict). The CLI front end is ``python -m repro watch --zone ... --version
...``; tests drive :meth:`poll_once` directly.

Supervision (the daemon must outlive its environment):

- transient IO on the zone file (``stat``/read races while an editor or
  zone transfer rewrites it) is retried with exponential backoff plus
  deterministic jitter (:class:`~repro.resilience.RetryPolicy`);
- consecutive failing polls trip a circuit breaker
  (:class:`~repro.resilience.CircuitBreaker`); when it opens the daemon
  emits a final ``breaker: open`` record and :meth:`run` exits instead of
  spinning on a permanently broken input;
- every emitted event carries a ``health`` record (attempt counts,
  consecutive failures, breaker state) so the JSON stream doubles as a
  liveness feed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.dns.zonefile import parse_zone_text
from repro.incremental.cache import SummaryCache
from repro.incremental.engine import IncrementalOutcome, IncrementalVerifier
from repro.resilience import faults
from repro.resilience.supervise import CircuitBreaker, RetryPolicy, retry_call


@dataclass
class WatchEvent:
    """One processed update (or the initial verification)."""

    sequence: int
    reason: str  # "initial" | "change"
    outcome: Optional[IncrementalOutcome]
    error: Optional[str]
    latency_seconds: float
    health: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = {
            "sequence": self.sequence,
            "reason": self.reason,
            "latency_seconds": round(self.latency_seconds, 6),
            "health": dict(self.health),
        }
        if self.error is not None:
            payload["error"] = self.error
            return payload
        result = self.outcome.result
        payload.update(
            {
                "verified": result.verified,
                "verdict": result.verdict,
                "bugs": len(result.bugs),
                "bug_categories": result.bug_categories(),
                "solver_checks": result.solver_checks,
                "reuse": self.outcome.reuse.as_dict(),
            }
        )
        return payload


class WatchDaemon:
    """Tail one zone file and keep its verification verdict current."""

    def __init__(
        self,
        zone_path: os.PathLike,
        version: str = "verified",
        cache: Optional[SummaryCache] = None,
        interval: float = 1.0,
        log: Optional[Callable[[str], None]] = None,
        retry: Optional[RetryPolicy] = None,
        max_failures: int = 5,
        sleep: Callable[[float], None] = time.sleep,
        workers: Optional[int] = None,
        options=None,
    ) -> None:
        self.zone_path = os.fspath(zone_path)
        self.version = version
        self.cache = cache if cache is not None else SummaryCache(memory_only=True)
        #: Forwarded to :class:`IncrementalVerifier`: ``workers`` routes
        #: partition recomputes through the process pool, ``options``
        #: (a :class:`~repro.core.options.VerifyOptions`) carries the
        #: per-partition budget and executor knobs.
        self.workers = workers
        self.options = options
        self.interval = interval
        self.log = log if log is not None else self._default_log
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = CircuitBreaker(max_failures=max_failures)
        self.verifier: Optional[IncrementalVerifier] = None
        self.sequence = 0
        self._sleep = sleep
        self._last_mtime: Optional[float] = None
        self._last_size: Optional[int] = None
        self._last_stat_error: Optional[str] = None
        self._last_attempts = 1

    @staticmethod
    def _default_log(line: str) -> None:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()

    # -- polling ---------------------------------------------------------------

    def _stat_once(self):
        faults.maybe_raise(faults.SITE_WATCH_STAT)
        st = os.stat(self.zone_path)
        return st.st_mtime, st.st_size

    def _read_once(self) -> str:
        faults.maybe_raise(faults.SITE_WATCH_READ)
        with open(self.zone_path, "r", encoding="utf-8") as handle:
            return handle.read()

    def poll_once(self) -> Optional[WatchEvent]:
        """Process at most one update; None when the file is unchanged
        (or the circuit breaker is open)."""
        if self.breaker.is_open:
            return None
        self._last_attempts = 1
        try:
            (mtime, size), attempts = retry_call(
                self._stat_once, self.retry, sleep=self._sleep
            )
            self._last_attempts = attempts
        except OSError as exc:
            return self._failure(f"stat failed: {exc}", 0.0, dedup=True)
        self._last_stat_error = None
        if (mtime, size) == (self._last_mtime, self._last_size):
            self.breaker.record_success()
            return None
        self._last_mtime, self._last_size = mtime, size

        started = time.perf_counter()
        try:
            text, read_attempts = retry_call(
                self._read_once, self.retry, sleep=self._sleep
            )
            self._last_attempts += read_attempts - 1
            zone = parse_zone_text(text)
        except (OSError, ValueError) as exc:
            return self._failure(
                f"zone parse failed: {exc}",
                time.perf_counter() - started,
                reason="change" if self.verifier else "initial",
            )

        if self.verifier is None:
            self.verifier = IncrementalVerifier(
                zone, self.version, cache=self.cache,
                workers=self.workers, options=self.options,
            )
            outcome = self.verifier.verify_current()
            reason = "initial"
        else:
            outcome = self.verifier.diff_to(zone)
            reason = "change"
        self.breaker.record_success()
        return self._emit(reason, outcome, None, time.perf_counter() - started)

    def _failure(self, error: str, latency: float, reason: str = "change",
                 dedup: bool = False) -> Optional[WatchEvent]:
        self.breaker.record_failure()
        if dedup and error == self._last_stat_error and not self.breaker.is_open:
            # A vanished file is reported once, not on every poll while
            # absent — but the failing polls still feed the breaker.
            return None
        if dedup:
            self._last_stat_error = error
        return self._emit(reason, None, error, latency)

    def _health(self) -> Dict[str, object]:
        return {
            "attempts": self._last_attempts,
            "consecutive_failures": self.breaker.consecutive_failures,
            "breaker": self.breaker.state,
        }

    def _emit(self, reason, outcome, error, latency) -> WatchEvent:
        self.sequence += 1
        event = WatchEvent(
            self.sequence, reason, outcome, error, latency, self._health()
        )
        self.log(json.dumps(event.to_json(), sort_keys=True))
        return event

    def run(self, max_updates: Optional[int] = None) -> int:
        """Poll until interrupted, the circuit breaker opens, or
        ``max_updates`` events were processed; returns the event count."""
        processed = 0
        try:
            while max_updates is None or processed < max_updates:
                event = self.poll_once()
                if event is not None:
                    processed += 1
                    if max_updates is not None and processed >= max_updates:
                        break
                if self.breaker.is_open:
                    break
                time.sleep(self.interval)
        except KeyboardInterrupt:
            pass
        return processed

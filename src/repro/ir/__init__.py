"""AbsLLVM: the intermediate representation DNS-V verifies.

Reproduces the language of the paper's Figures 7 and 8: an LLVM-flavoured,
register-based IR extended with an abstract domain —

- the type system carries LLVM-style ints, bools, pointers and structs plus
  the abstract ``List[T]`` that has no concrete LLVM counterpart;
- safety checks appear as explicit *panic blocks* (section 4.1): the
  frontend emits a conditional branch to a ``panic`` terminator before every
  memory access that could trap, so verifying safety reduces to proving
  panic blocks unreachable;
- locals live in ``alloca`` slots with explicit ``load``/``store`` (the
  clang ``-O0`` discipline), which avoids phi nodes while keeping reference
  semantics faithful.

The IR is produced by :mod:`repro.frontend` (the GoLLVM stand-in) and by the
specification frontend in :mod:`repro.spec`; it is consumed by
:mod:`repro.symex`.
"""

from repro.ir.types import (
    Type,
    IntType,
    BoolType,
    PointerType,
    StructType,
    ListType,
    NamedType,
    INT,
    BOOL,
    VOID,
    VoidType,
    TypeRegistry,
)
from repro.ir.values import Value, Register, ConstInt, ConstBool, ConstNull
from repro.ir.instructions import (
    Instruction,
    BinOp,
    ICmp,
    Alloca,
    Load,
    Store,
    GEP,
    Call,
    Terminator,
    Br,
    CondBr,
    ElidedGuardBr,
    Ret,
    Panic,
    INTRINSICS,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.module import Module
from repro.ir.printer import print_function, print_module
from repro.ir.validate import validate_function, validate_module, IRValidationError

__all__ = [
    "Type",
    "IntType",
    "BoolType",
    "PointerType",
    "StructType",
    "ListType",
    "NamedType",
    "VoidType",
    "INT",
    "BOOL",
    "VOID",
    "TypeRegistry",
    "Value",
    "Register",
    "ConstInt",
    "ConstBool",
    "ConstNull",
    "Instruction",
    "BinOp",
    "ICmp",
    "Alloca",
    "Load",
    "Store",
    "GEP",
    "Call",
    "Terminator",
    "Br",
    "CondBr",
    "ElidedGuardBr",
    "Ret",
    "Panic",
    "INTRINSICS",
    "BasicBlock",
    "Function",
    "Module",
    "print_function",
    "print_module",
    "validate_function",
    "validate_module",
    "IRValidationError",
]

"""Basic blocks and functions."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction, Terminator
from repro.ir.types import Type


class BasicBlock:
    """A label, a straight-line instruction list, and one terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[Instruction] = []
        self.terminator: Optional[Terminator] = None
        #: GoPy source line this block was opened at (filled by the
        #: frontend; hand-built IR leaves it None). Diagnostics only —
        #: never part of execution semantics.
        self.source_line: Optional[int] = None

    def append(self, instruction: Instruction) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.instructions.append(instruction)

    def terminate(self, terminator: Terminator) -> None:
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.terminator = terminator

    @property
    def terminated(self) -> bool:
        return self.terminator is not None

    def __repr__(self):
        return f"BasicBlock({self.label}, {len(self.instructions)} insns)"


class Function:
    """An AbsLLVM function: typed parameters, a return type, and a CFG."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]],
        return_type: Type,
    ):
        self.name = name
        self.params: Tuple[Tuple[str, Type], ...] = tuple(params)
        self.return_type = return_type
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry_label: Optional[str] = None
        self._label_counter = 0

    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{self._label_counter}"
        self._label_counter += 1
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry_label is None:
            self.entry_label = label
        return block

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[self.entry_label]

    def param_names(self) -> List[str]:
        return [name for name, _ in self.params]

    def __repr__(self):
        return f"Function({self.name}/{len(self.params)}, {len(self.blocks)} blocks)"

"""AbsLLVM instructions.

The instruction set follows Figure 8: arithmetic and comparison, memory
operations (``alloca``/``load``/``store``/``getelementptr``), calls, and the
control terminators. Two deliberate extensions over stock LLVM:

- **Panic terminators** make Go runtime safety checks explicit blocks
  (section 4.1); the frontend emits a guarded branch to one before any
  indexing or nil dereference.
- **List intrinsics** (``list.new``/``list.len``/``list.append`` and
  ``newobject``) realise the abstract-domain builtins of section 5.3; the
  symbolic executor implements them natively, and summaries reuse the same
  ``newobject``/``append`` vocabulary for effects.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.ir.types import Type
from repro.ir.values import Register, Value

#: Builtin function names the executor interprets natively.
INTRINSICS = (
    "list.new",
    "list.len",
    "list.append",
    "newobject",
    "assume",
)

BINOPS = ("add", "sub", "mul", "and", "or", "xor")
ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")


class Instruction:
    """Base class. ``dest`` is None for pure side-effect instructions."""

    __slots__ = ()
    dest: Optional[Register] = None

    def operands(self) -> Tuple[Value, ...]:
        return ()


class BinOp(Instruction):
    """``dest = op lhs, rhs`` — arithmetic on ints, logic on bools."""

    __slots__ = ("dest", "op", "lhs", "rhs")

    def __init__(self, dest: Register, op: str, lhs: Value, rhs: Value):
        if op not in BINOPS:
            raise ValueError(f"unknown binop {op!r}")
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return f"{self.dest!r} = {self.op} {self.lhs!r}, {self.rhs!r}"


class ICmp(Instruction):
    """``dest = icmp pred lhs, rhs``."""

    __slots__ = ("dest", "pred", "lhs", "rhs")

    def __init__(self, dest: Register, pred: str, lhs: Value, rhs: Value):
        if pred not in ICMP_PREDS:
            raise ValueError(f"unknown icmp predicate {pred!r}")
        self.dest = dest
        self.pred = pred
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return (self.lhs, self.rhs)

    def __repr__(self):
        return f"{self.dest!r} = icmp {self.pred} {self.lhs!r}, {self.rhs!r}"


class Alloca(Instruction):
    """``dest = alloca T`` — a fresh stack slot, freed at function exit."""

    __slots__ = ("dest", "allocated_type")

    def __init__(self, dest: Register, allocated_type: Type):
        self.dest = dest
        self.allocated_type = allocated_type

    def __repr__(self):
        return f"{self.dest!r} = alloca {self.allocated_type!r}"


class Load(Instruction):
    """``dest = load ptr``."""

    __slots__ = ("dest", "ptr")

    def __init__(self, dest: Register, ptr: Value):
        self.dest = dest
        self.ptr = ptr

    def operands(self):
        return (self.ptr,)

    def __repr__(self):
        return f"{self.dest!r} = load {self.ptr!r}"


class Store(Instruction):
    """``store value, ptr``."""

    __slots__ = ("value", "ptr")
    dest = None

    def __init__(self, value: Value, ptr: Value):
        self.value = value
        self.ptr = ptr

    def operands(self):
        return (self.value, self.ptr)

    def __repr__(self):
        return f"store {self.value!r}, {self.ptr!r}"


class GEP(Instruction):
    """``dest = getelementptr base, idx...``.

    Indices navigate *within* the block ``base`` points into: a constant int
    selects a struct field by position, a register (or constant) indexes an
    abstract list. Unlike stock LLVM there is no leading pointer-arithmetic
    index — the flexible memory model (section 5.1) identifies a pointer
    with (block, index path), which is exactly what GEP extends.
    """

    __slots__ = ("dest", "base", "indices")

    def __init__(self, dest: Register, base: Value, indices: Sequence[Value]):
        if not indices:
            raise ValueError("GEP requires at least one index")
        self.dest = dest
        self.base = base
        self.indices = tuple(indices)

    def operands(self):
        return (self.base,) + self.indices

    def __repr__(self):
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.dest!r} = getelementptr {self.base!r}, {idx}"


class Call(Instruction):
    """``dest = call callee(args...)`` — ``dest`` may be None for void.

    ``callee`` is a function name resolved by the executor against the
    module, a registered abstract specification, a summary, or an intrinsic
    — the dispatch at the heart of layered verification (section 4.3).
    """

    __slots__ = ("dest", "callee", "args", "type_hint")

    def __init__(
        self,
        dest: Optional[Register],
        callee: str,
        args: Sequence[Value],
        type_hint: Optional[Type] = None,
    ):
        self.dest = dest
        self.callee = callee
        self.args = tuple(args)
        self.type_hint = type_hint

    def operands(self):
        return self.args

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.args)
        prefix = f"{self.dest!r} = " if self.dest is not None else ""
        return f"{prefix}call {self.callee}({args})"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class Terminator:
    """Ends a basic block."""

    __slots__ = ()

    def successors(self) -> Tuple[str, ...]:
        return ()


class Br(Terminator):
    __slots__ = ("target",)

    def __init__(self, target: str):
        self.target = target

    def successors(self):
        return (self.target,)

    def __repr__(self):
        return f"br label %{self.target}"


class CondBr(Terminator):
    __slots__ = ("cond", "then_label", "else_label")

    def __init__(self, cond: Value, then_label: str, else_label: str):
        self.cond = cond
        self.then_label = then_label
        self.else_label = else_label

    def successors(self):
        return (self.then_label, self.else_label)

    def __repr__(self):
        return f"br {self.cond!r}, label %{self.then_label}, label %{self.else_label}"


class ElidedGuardBr(Terminator):
    """An unconditional branch standing where a panic guard used to be.

    The static analysis pass (:mod:`repro.analysis.prune`) rewrites a
    ``CondBr`` whose panic side it proved unreachable into this terminator.
    It keeps the guard condition alive so the executor can (a) account an
    avoided solver query whenever the condition is symbolic at runtime,
    (b) assume the surviving side's condition — keeping path conditions
    bit-identical to the unpruned execution — and (c) cross-check the
    proof against the solver in debug mode.

    ``panic_on_true`` records which side of the original branch panicked;
    ``kind``/``message`` preserve the elided panic terminator verbatim (if
    the condition ever folds concretely onto the panic side — possible
    only on an infeasible path, e.g. under fault injection — the executor
    reproduces the exact outcome the unpruned run would have); ``site`` is
    a stable ``function:block`` identifier for debug sampling and
    diagnostics.
    """

    __slots__ = ("target", "cond", "panic_on_true", "kind", "message", "site")

    def __init__(self, target: str, cond: Value, panic_on_true: bool,
                 kind: str = "", message: str = "", site: str = ""):
        self.target = target
        self.cond = cond
        self.panic_on_true = panic_on_true
        self.kind = kind
        self.message = message
        self.site = site

    def successors(self):
        return (self.target,)

    def __repr__(self):
        side = "true" if self.panic_on_true else "false"
        return (
            f"br label %{self.target} "
            f"; elided {self.kind or 'panic'} guard ({side} side) on {self.cond!r}"
        )


class Ret(Terminator):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Value] = None):
        self.value = value

    def __repr__(self):
        return f"ret {self.value!r}" if self.value is not None else "ret void"


class Panic(Terminator):
    """A GoLLVM-style panic block terminator.

    ``kind`` distinguishes the runtime error class (``index-out-of-bounds``,
    ``nil-dereference``, ``explicit``); safety verification proves every
    ``Panic`` unreachable (section 6.1's safety property).
    """

    __slots__ = ("kind", "message")

    def __init__(self, kind: str, message: str = ""):
        self.kind = kind
        self.message = message

    def __repr__(self):
        return f"panic {self.kind} {self.message!r}".rstrip()

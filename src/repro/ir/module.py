"""IR modules: a set of functions plus the struct type registry."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.types import TypeRegistry


class Module:
    """Container for functions compiled from one source module.

    The executor resolves ``call`` instructions against the module first,
    then against registered specifications and summaries — the module
    therefore defines the "concrete code" side of each layer.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.types = TypeRegistry()

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"function {function.name!r} already defined")
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no function {name!r}") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def function_names(self) -> List[str]:
        return list(self.functions)

    def merge(self, other: "Module") -> None:
        """Import all functions and struct types from ``other`` (shared
        names must agree by identity of definition order)."""
        for struct in other.types.structs():
            if struct.name not in self.types:
                self.types.define(struct.name, struct.fields)
        for function in other.functions.values():
            if function.name not in self.functions:
                self.add_function(function)

    def __repr__(self):
        return f"Module({self.name}, {len(self.functions)} functions)"

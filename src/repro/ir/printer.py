"""LLVM-flavoured textual rendering of AbsLLVM, for debugging and docs."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.function import Function
from repro.ir.module import Module


def _predecessors(function: Function) -> Dict[str, List[str]]:
    preds: Dict[str, List[str]] = {label: [] for label in function.blocks}
    for label, block in function.blocks.items():
        if block.terminator is None:
            continue
        for target in block.terminator.successors():
            if target in preds:
                preds[target].append(label)
    return preds


def print_function(function: Function) -> str:
    params = ", ".join(f"{ty!r} %{name}" for name, ty in function.params)
    lines: List[str] = [
        f"define {function.return_type!r} @{function.name}({params}) {{"
    ]
    preds = _predecessors(function)
    # Entry block first, the rest in insertion order.
    labels = list(function.blocks)
    if function.entry_label in labels:
        labels.remove(function.entry_label)
        labels.insert(0, function.entry_label)
    for label in labels:
        block = function.blocks[label]
        header = f"{label}:"
        if preds[label]:
            header += "  ; preds: " + ", ".join(
                f"%{p}" for p in preds[label]
            )
        lines.append(header)
        for insn in block.instructions:
            lines.append(f"  {insn!r}")
        if block.terminator is not None:
            lines.append(f"  {block.terminator!r}")
        else:
            lines.append("  <unterminated>")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for struct in module.types.structs():
        parts.append(struct.describe())
    for function in module.functions.values():
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts)

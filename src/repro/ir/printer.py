"""LLVM-flavoured textual rendering of AbsLLVM, for debugging and docs."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module


def print_function(function: Function) -> str:
    params = ", ".join(f"{ty!r} %{name}" for name, ty in function.params)
    lines: List[str] = [
        f"define {function.return_type!r} @{function.name}({params}) {{"
    ]
    # Entry block first, the rest in insertion order.
    labels = list(function.blocks)
    if function.entry_label in labels:
        labels.remove(function.entry_label)
        labels.insert(0, function.entry_label)
    for label in labels:
        block = function.blocks[label]
        lines.append(f"{label}:")
        for insn in block.instructions:
            lines.append(f"  {insn!r}")
        if block.terminator is not None:
            lines.append(f"  {block.terminator!r}")
        else:
            lines.append("  <unterminated>")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for struct in module.types.structs():
        parts.append(struct.describe())
    for function in module.functions.values():
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts)

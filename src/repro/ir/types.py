"""AbsLLVM types (paper Figure 7).

``Int``/``Bool`` are the scalar types; ``Pointer`` references a memory
block; ``Struct`` is a named record whose fields are accessed by index (the
LLVM convention the paper keeps for its flexible memory model); ``List[T]``
is the abstract list that has no LLVM counterpart but backs both Go slices
and specification-level lists.

Recursive structures (the domain tree's ``TreeNode`` pointing at child
``TreeNode``\\ s, called out in section 5.1 as a required pattern) are
expressed with :class:`NamedType` forward references resolved through a
:class:`TypeRegistry`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class Type:
    """Base class; subclasses are immutable and hashable."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


class IntType(Type):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")

    def __repr__(self):
        return "Int"


class BoolType(Type):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, BoolType)

    def __hash__(self):
        return hash("bool")

    def __repr__(self):
        return "Bool"


class VoidType(Type):
    __slots__ = ()

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")

    def __repr__(self):
        return "Void"


INT = IntType()
BOOL = BoolType()
VOID = VoidType()


class PointerType(Type):
    """Pointer to a value of ``pointee`` type (``Ptr[T]``)."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __eq__(self, other):
        return isinstance(other, PointerType) and self.pointee == other.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __repr__(self):
        return f"Ptr[{self.pointee!r}]"


class ListType(Type):
    """Abstract variable-length list of ``element`` values."""

    __slots__ = ("element",)

    def __init__(self, element: Type):
        self.element = element

    def __eq__(self, other):
        return isinstance(other, ListType) and self.element == other.element

    def __hash__(self):
        return hash(("list", self.element))

    def __repr__(self):
        return f"List[{self.element!r}]"


class NamedType(Type):
    """Forward reference to a struct registered in a :class:`TypeRegistry`;
    enables circular types like ``TreeNode``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return (isinstance(other, NamedType) and self.name == other.name) or (
            isinstance(other, StructType) and self.name == other.name
        )

    def __hash__(self):
        return hash(("named", self.name))

    def __repr__(self):
        return f"%{self.name}"


class StructType(Type):
    """A named record with ordered fields accessed by index."""

    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        self.name = name
        self.fields: Tuple[Tuple[str, Type], ...] = tuple(fields)

    def field_index(self, field_name: str) -> int:
        for index, (name, _) in enumerate(self.fields):
            if name == field_name:
                return index
        raise KeyError(f"struct {self.name} has no field {field_name!r}")

    def field_type(self, index: int) -> Type:
        return self.fields[index][1]

    def field_name(self, index: int) -> str:
        return self.fields[index][0]

    def __eq__(self, other):
        if isinstance(other, NamedType):
            return other.name == self.name
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self):
        return hash(("named", self.name))

    def __repr__(self):
        return f"%{self.name}"

    def describe(self) -> str:
        inner = ", ".join(f"{name}: {ty!r}" for name, ty in self.fields)
        return f"%{self.name} = {{ {inner} }}"


class TypeRegistry:
    """Name -> struct mapping; resolves :class:`NamedType` references."""

    def __init__(self):
        self._structs: Dict[str, StructType] = {}

    def define(self, name: str, fields: Sequence[Tuple[str, Type]]) -> StructType:
        if name in self._structs:
            raise ValueError(f"struct {name!r} already defined")
        struct = StructType(name, fields)
        self._structs[name] = struct
        return struct

    def get(self, name: str) -> StructType:
        try:
            return self._structs[name]
        except KeyError:
            raise KeyError(f"unknown struct type {name!r}") from None

    def resolve(self, ty: Type) -> Type:
        """Collapse a NamedType reference to its StructType (one level)."""
        if isinstance(ty, NamedType):
            return self.get(ty.name)
        return ty

    def structs(self) -> List[StructType]:
        return list(self._structs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._structs

"""Structural well-formedness checks for AbsLLVM.

Run by the frontend after compilation and available to tests: every block
terminated, every branch target defined, registers defined before any use
along every path (conservatively: dominance approximated by requiring the
definition to appear in the same block earlier, or in every predecessor
path — we check the simpler global single-assignment discipline plus
reachability of definitions).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import Call, CondBr, Ret
from repro.ir.module import Module
from repro.ir.values import Register as RegisterValue


class IRValidationError(ValueError):
    """Raised when a function violates IR structural rules."""


def validate_function(function: Function) -> None:
    if not function.blocks:
        raise IRValidationError(f"{function.name}: no blocks")
    if function.entry_label not in function.blocks:
        raise IRValidationError(f"{function.name}: missing entry block")

    defined: Set[str] = set(function.param_names())
    for block in function.blocks.values():
        if block.terminator is None:
            raise IRValidationError(
                f"{function.name}: block {block.label} is unterminated"
            )
        for target in block.terminator.successors():
            if target not in function.blocks:
                raise IRValidationError(
                    f"{function.name}: branch to unknown block {target!r}"
                )
        for insn in block.instructions:
            dest = insn.dest
            if dest is not None:
                if dest.name in defined:
                    raise IRValidationError(
                        f"{function.name}: register %{dest.name} assigned twice"
                    )
                defined.add(dest.name)

    # Uses must reference some definition (parameters count).
    for block in function.blocks.values():
        for insn in block.instructions:
            for operand in insn.operands():
                if isinstance(operand, RegisterValue) and operand.name not in defined:
                    raise IRValidationError(
                        f"{function.name}: use of undefined register %{operand.name} "
                        f"in {block.label}: {insn!r}"
                    )
        term = block.terminator
        if isinstance(term, CondBr) and isinstance(term.cond, RegisterValue):
            if term.cond.name not in defined:
                raise IRValidationError(
                    f"{function.name}: use of undefined register %{term.cond.name} "
                    f"in terminator of {block.label}"
                )
        if isinstance(term, Ret) and isinstance(term.value, RegisterValue):
            if term.value.name not in defined:
                raise IRValidationError(
                    f"{function.name}: return of undefined register %{term.value.name}"
                )


def validate_module(module: Module) -> None:
    for function in module.functions.values():
        validate_function(function)
        for block in function.blocks.values():
            for insn in block.instructions:
                if isinstance(insn, Call):
                    _check_callee(module, function, insn)


def _check_callee(module: Module, function: Function, call: Call) -> None:
    from repro.ir.instructions import INTRINSICS

    if call.callee in INTRINSICS:
        return
    # Non-module callees may be bound later (specs/summaries); only flag
    # calls that look like typos of intrinsics.
    if call.callee.startswith("list.") and call.callee not in INTRINSICS:
        raise IRValidationError(
            f"{function.name}: unknown list intrinsic {call.callee!r}"
        )

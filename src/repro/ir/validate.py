"""Structural well-formedness checks for AbsLLVM.

Run by the frontend after compilation and available to tests: every block
terminated, every branch target defined, registers defined before any use
along every path (conservatively: dominance approximated by requiring the
definition to appear in the same block earlier, or in every predecessor
path — we check the simpler global single-assignment discipline plus
reachability of definitions).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function
from repro.ir.instructions import Call, CondBr, ElidedGuardBr, Panic, Ret
from repro.ir.module import Module
from repro.ir.values import Register as RegisterValue


class IRValidationError(ValueError):
    """Raised when a function violates IR structural rules."""


def reachable_blocks(function: Function) -> Set[str]:
    """Labels reachable from the entry block along terminator edges."""
    seen: Set[str] = set()
    stack: List[str] = [function.entry_label] if function.entry_label else []
    while stack:
        label = stack.pop()
        if label in seen or label not in function.blocks:
            continue
        seen.add(label)
        term = function.blocks[label].terminator
        if term is not None:
            stack.extend(term.successors())
    return seen


def _check_panic_blocks(function: Function) -> None:
    """Panic blocks must be terminated branch targets: every ``Panic``
    block other than the frontend's fall-off-the-end block must have at
    least one predecessor (the guard that jumps to it), and guards must
    point at existing blocks. A predecessor-less panic block is the
    signature of a broken rewrite (e.g. a pruning pass that disconnected
    a guard but forgot to delete its panic target)."""
    preds: Dict[str, int] = {label: 0 for label in function.blocks}
    for block in function.blocks.values():
        if block.terminator is None:
            continue
        for target in block.terminator.successors():
            if target in preds:
                preds[target] += 1
    for label, block in function.blocks.items():
        term = block.terminator
        if not isinstance(term, Panic):
            continue
        if label == function.entry_label:
            continue
        # ``missing-return`` guards the structural fallthrough; it is
        # legitimately unreferenced when every path returns explicitly.
        if term.kind == "missing-return":
            continue
        if preds[label] == 0:
            raise IRValidationError(
                f"{function.name}: panic block {label} ({term.kind}) has no "
                f"predecessors"
            )


def validate_function(function: Function) -> None:
    if not function.blocks:
        raise IRValidationError(f"{function.name}: no blocks")
    if function.entry_label not in function.blocks:
        raise IRValidationError(f"{function.name}: missing entry block")

    defined: Set[str] = set(function.param_names())
    for block in function.blocks.values():
        if block.terminator is None:
            raise IRValidationError(
                f"{function.name}: block {block.label} is unterminated"
            )
        for target in block.terminator.successors():
            if target not in function.blocks:
                raise IRValidationError(
                    f"{function.name}: branch to unknown block {target!r}"
                )
        for insn in block.instructions:
            dest = insn.dest
            if dest is not None:
                if dest.name in defined:
                    raise IRValidationError(
                        f"{function.name}: register %{dest.name} assigned twice"
                    )
                defined.add(dest.name)

    # Uses must reference some definition (parameters count).
    for block in function.blocks.values():
        for insn in block.instructions:
            for operand in insn.operands():
                if isinstance(operand, RegisterValue) and operand.name not in defined:
                    raise IRValidationError(
                        f"{function.name}: use of undefined register %{operand.name} "
                        f"in {block.label}: {insn!r}"
                    )
        term = block.terminator
        if isinstance(term, (CondBr, ElidedGuardBr)) and isinstance(
            term.cond, RegisterValue
        ):
            if term.cond.name not in defined:
                raise IRValidationError(
                    f"{function.name}: use of undefined register %{term.cond.name} "
                    f"in terminator of {block.label}"
                )
        if isinstance(term, Ret) and isinstance(term.value, RegisterValue):
            if term.value.name not in defined:
                raise IRValidationError(
                    f"{function.name}: return of undefined register %{term.value.name}"
                )

    _check_panic_blocks(function)
    # Reachable-from-entry consistency: a definition feeding a reachable
    # use must itself sit in a reachable block, otherwise execution would
    # read an unset register.
    reachable = reachable_blocks(function)
    defined_reachable: Set[str] = set(function.param_names())
    for label in reachable:
        for insn in function.blocks[label].instructions:
            if insn.dest is not None:
                defined_reachable.add(insn.dest.name)
    for label in reachable:
        block = function.blocks[label]
        used = [
            op
            for insn in block.instructions
            for op in insn.operands()
            if isinstance(op, RegisterValue)
        ]
        term = block.terminator
        if isinstance(term, (CondBr, ElidedGuardBr)) and isinstance(
            term.cond, RegisterValue
        ):
            used.append(term.cond)
        if isinstance(term, Ret) and isinstance(term.value, RegisterValue):
            used.append(term.value)
        for op in used:
            if op.name not in defined_reachable:
                raise IRValidationError(
                    f"{function.name}: reachable block {label} uses "
                    f"%{op.name}, defined only in unreachable code"
                )


def validate_module(module: Module) -> None:
    for function in module.functions.values():
        validate_function(function)
        for block in function.blocks.values():
            for insn in block.instructions:
                if isinstance(insn, Call):
                    _check_callee(module, function, insn)


def _check_callee(module: Module, function: Function, call: Call) -> None:
    from repro.ir.instructions import INTRINSICS

    if call.callee in INTRINSICS:
        return
    # Non-module callees may be bound later (specs/summaries); only flag
    # calls that look like typos of intrinsics.
    if call.callee.startswith("list.") and call.callee not in INTRINSICS:
        raise IRValidationError(
            f"{function.name}: unknown list intrinsic {call.callee!r}"
        )

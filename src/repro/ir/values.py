"""IR values: virtual registers and constants."""

from __future__ import annotations

from typing import Optional

from repro.ir.types import Type


class Value:
    """Base of everything an instruction operand can be."""

    __slots__ = ()


class Register(Value):
    """A virtual register (``%name``); assigned exactly once per dynamic
    execution by the instruction that names it as its destination."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Register) and self.name == other.name

    def __hash__(self):
        return hash(("reg", self.name))

    def __repr__(self):
        return f"%{self.name}"


class ConstInt(Value):
    __slots__ = ("value",)

    def __init__(self, value: int):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"ConstInt expects int, got {value!r}")
        self.value = value

    def __eq__(self, other):
        return isinstance(other, ConstInt) and self.value == other.value

    def __hash__(self):
        return hash(("cint", self.value))

    def __repr__(self):
        return str(self.value)


class ConstBool(Value):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def __eq__(self, other):
        return isinstance(other, ConstBool) and self.value == other.value

    def __hash__(self):
        return hash(("cbool", self.value))

    def __repr__(self):
        return "true" if self.value else "false"


class ConstNull(Value):
    """The nil pointer. ``type_hint`` is informational only."""

    __slots__ = ("type_hint",)

    def __init__(self, type_hint: Optional[Type] = None):
        self.type_hint = type_hint

    def __eq__(self, other):
        return isinstance(other, ConstNull)

    def __hash__(self):
        return hash("cnull")

    def __repr__(self):
        return "null"

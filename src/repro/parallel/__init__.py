"""Process-pool verification executor.

Fans campaign units (zone × engine version) and, within one verify, the
query-space partitions across worker processes; merges typed verdicts
deterministically so the canonical report of a pooled run is
bit-identical to the sequential one's for any worker count. See
``docs/api.md`` for the execution model.
"""

from repro.parallel.counters import PerfCounters, perf_phases, unit_perf
from repro.parallel.executor import run_campaign_parallel, verify_partitioned
from repro.parallel.pool import DIED, OK, TIMEOUT, run_units
from repro.parallel.worker import campaign_unit_worker, partition_worker

__all__ = [
    "PerfCounters",
    "perf_phases",
    "unit_perf",
    "run_campaign_parallel",
    "verify_partitioned",
    "run_units",
    "campaign_unit_worker",
    "partition_worker",
    "OK",
    "DIED",
    "TIMEOUT",
]

"""Per-phase performance counters for pooled verification runs.

Workers report a small timing/cache dictionary per completed unit (built
by :func:`unit_perf` from the unit's :class:`VerificationResult`); the
parent folds them into one :class:`PerfCounters` that the ``--json`` CLI
output and the worker-scaling benchmark consume. Everything in here is
timing/throughput telemetry — none of it participates in a canonical
report, so two runs may disagree on every counter while being
bit-identical where it matters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


def unit_perf(result, cache=None) -> Dict[str, float]:
    """The per-unit perf record a worker ships back to the parent."""
    perf: Dict[str, float] = {
        "compile_seconds": 0.0,
        "summarize_seconds": 0.0,
        "solve_seconds": 0.0,
        "elapsed_seconds": 0.0,
        "cache_hits": 0,
        "cache_misses": 0,
        "solver_checks_avoided": 0,
        "pruned_guard_hits": 0,
        "guards_pruned": 0,
        "guard_prepass_checks": 0,
        "guard_prepass_unsat": 0,
    }
    if result is not None:
        phases = result.phase_seconds or {}
        perf["compile_seconds"] = phases.get("compile", 0.0)
        perf["summarize_seconds"] = phases.get("summarize", 0.0)
        perf["solve_seconds"] = phases.get("solve", 0.0)
        perf["elapsed_seconds"] = result.elapsed_seconds
        stats = result.cache_stats or {}
        perf["cache_hits"] = stats.get("hits", 0)
        perf["cache_misses"] = stats.get("misses", 0)
        analysis = getattr(result, "analysis", None) or {}
        perf["solver_checks_avoided"] = analysis.get("solver_checks_avoided", 0)
        perf["pruned_guard_hits"] = analysis.get("pruned_guard_hits", 0)
        perf["guards_pruned"] = analysis.get("guards_pruned", 0)
        perf["guard_prepass_checks"] = analysis.get("guard_prepass_checks", 0)
        perf["guard_prepass_unsat"] = analysis.get("guard_prepass_unsat", 0)
    if cache is not None:
        stats = cache.stats()
        perf["cache_hits"] = stats.get("hits", 0)
        perf["cache_misses"] = stats.get("misses", 0)
    return perf


def perf_phases(perf: Optional[Dict]) -> Dict[str, float]:
    """A worker perf record reshaped as ``phase_seconds`` keys."""
    if not perf:
        return {}
    return {
        "compile": perf.get("compile_seconds", 0.0),
        "summarize": perf.get("summarize_seconds", 0.0),
        "solve": perf.get("solve_seconds", 0.0),
    }


@dataclass
class PerfCounters:
    """Aggregate across one pooled run (campaign or partitioned verify)."""

    workers: int = 1
    units_total: int = 0
    units_completed: int = 0
    units_replayed: int = 0  # resumed from a checkpoint, no perf recorded
    units_fallback: int = 0  # recomputed in-parent after a worker died
    units_timed_out: int = 0
    compile_seconds: float = 0.0
    summarize_seconds: float = 0.0
    solve_seconds: float = 0.0
    busy_seconds: float = 0.0  # sum of per-unit wall time across workers
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    # Static-analysis telemetry (the panic-pruning pass): solver queries
    # the executors never issued, elided-guard crossings, and how many
    # guards the pass discharged statically.
    solver_checks_avoided: int = 0
    pruned_guard_hits: int = 0
    guards_pruned: int = 0
    # The solver-side prepass: residual guard checks answered by the
    # relational domain alone, without building a formula.
    guard_prepass_checks: int = 0
    guard_prepass_unsat: int = 0
    _started: float = field(default_factory=time.perf_counter, repr=False)

    def absorb(self, perf: Optional[Dict]) -> None:
        """Fold one worker's per-unit record into the aggregate."""
        self.units_completed += 1
        if not perf:
            return
        self.compile_seconds += perf.get("compile_seconds", 0.0)
        self.summarize_seconds += perf.get("summarize_seconds", 0.0)
        self.solve_seconds += perf.get("solve_seconds", 0.0)
        self.busy_seconds += perf.get("elapsed_seconds", 0.0)
        self.cache_hits += int(perf.get("cache_hits", 0))
        self.cache_misses += int(perf.get("cache_misses", 0))
        self.solver_checks_avoided += int(perf.get("solver_checks_avoided", 0))
        self.pruned_guard_hits += int(perf.get("pruned_guard_hits", 0))
        self.guard_prepass_checks += int(perf.get("guard_prepass_checks", 0))
        self.guard_prepass_unsat += int(perf.get("guard_prepass_unsat", 0))
        # Every unit compiles the same modules, so the prune-pass static
        # is a per-run property, not a per-unit one: max, not sum.
        self.guards_pruned = max(
            self.guards_pruned, int(perf.get("guards_pruned", 0))
        )

    def finish(self) -> "PerfCounters":
        self.wall_seconds = time.perf_counter() - self._started
        return self

    # -- derived -------------------------------------------------------------

    @property
    def units_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.units_completed / self.wall_seconds

    @property
    def cache_hit_rate(self) -> Optional[float]:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return None
        return self.cache_hits / lookups

    @property
    def parallel_efficiency(self) -> Optional[float]:
        """busy/(wall*workers): 1.0 means every worker was saturated."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return None
        return self.busy_seconds / (self.wall_seconds * self.workers)

    def to_json(self) -> Dict:
        hit_rate = self.cache_hit_rate
        efficiency = self.parallel_efficiency
        return {
            "workers": self.workers,
            "units_total": self.units_total,
            "units_completed": self.units_completed,
            "units_replayed": self.units_replayed,
            "units_fallback": self.units_fallback,
            "units_timed_out": self.units_timed_out,
            "compile_seconds": round(self.compile_seconds, 6),
            "summarize_seconds": round(self.summarize_seconds, 6),
            "solve_seconds": round(self.solve_seconds, 6),
            "busy_seconds": round(self.busy_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "units_per_second": round(self.units_per_second, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solver_checks_avoided": self.solver_checks_avoided,
            "pruned_guard_hits": self.pruned_guard_hits,
            "guards_pruned": self.guards_pruned,
            "guard_prepass_checks": self.guard_prepass_checks,
            "guard_prepass_unsat": self.guard_prepass_unsat,
            "cache_hit_rate": None if hit_rate is None else round(hit_rate, 4),
            "parallel_efficiency": (
                None if efficiency is None else round(efficiency, 4)
            ),
        }

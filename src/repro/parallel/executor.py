"""The parallel verification executor: campaigns and partitioned verifies.

Two fan-out granularities, one pool primitive:

- :func:`run_campaign_parallel` fans a campaign's units (zone × engine
  version) across worker processes and merges their typed verdicts into
  a :class:`~repro.core.campaign.CampaignReport` whose *canonical*
  projection is bit-identical to the sequential loop's — for any worker
  count, under resume, and under per-unit fault injection;
- :func:`verify_partitioned` fans the query-space partitions of a
  *single* verify across the pool via
  :class:`~repro.incremental.engine.IncrementalVerifier` and returns the
  deterministically merged :class:`VerificationResult`.

Determinism is structural, not accidental: units are indexed before
anything runs, every worker executes the exact function the sequential
path runs on plain-data inputs derived only from ``(options, unit id)``,
and the parent assembles results by index — completion order can only
affect timings. The parent is also the **only checkpoint writer**:
workers return verdicts, the parent appends them to the campaign's JSONL
checkpoint as they complete, so ``--resume`` after a SIGKILL (of the
parent or any worker) replays exactly as in sequential mode — the two
modes share header and unit-key material and can resume each other's
checkpoints.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional

from repro.core.campaign import Campaign, CampaignReport, ZoneVerdict
from repro.dns.zone import Zone
from repro.parallel.counters import PerfCounters
from repro.parallel.pool import DIED, OK, TIMEOUT, run_units
from repro.parallel.worker import campaign_unit_worker
from repro.resilience import verdicts as verdicts_mod
from repro.resilience.checkpoint import unit_address
from repro.zonegen import GeneratorConfig, ZoneGenerator


def _grace_seconds(options) -> Optional[float]:
    """Pool stall watchdog, sized from the per-unit budget: generous
    enough that a cooperative deadline always fires first, tight enough
    that a wedged worker cannot hang the run. None (no watchdog) when
    the run is unbudgeted — then nothing bounds a unit by design."""
    if options.budget_seconds is None:
        return None
    return 3.0 * options.budget_seconds + 30.0


def _timeout_verdict(index: int, zone: Zone) -> ZoneVerdict:
    """A unit whose worker stalled past the grace period: its coverage is
    lost, typed as UNKNOWN(wall-clock-deadline) — the campaign analogue of
    a cooperative budget expiry, just enforced from outside."""
    return ZoneVerdict(
        zone_index=index,
        zone_origin=zone.origin.to_text(),
        records=len(zone),
        verified=False,
        bug_categories=(),
        elapsed_seconds=0.0,
        solver_checks=0,
        differential_divergences=0,
        verdict=verdicts_mod.UNKNOWN,
        unknown_reason=verdicts_mod.REASON_DEADLINE,
    )


def run_campaign_parallel(
    version: str,
    num_zones: int = 10,
    seed: int = 2023,
    zones: Optional[List[Zone]] = None,
    options=None,
    generator_config: Optional[GeneratorConfig] = None,
    checkpoint=None,
    resume: bool = False,
    **config_overrides,
) -> CampaignReport:
    """Run one campaign across ``options.workers`` processes.

    Zones come from an explicit ``zones`` list or are generated in the
    parent from ``(seed, config)`` — workers always receive pickled
    zones, never re-generate, so both sources behave identically. The
    checkpoint protocol, unit keys and header digests are
    :class:`Campaign`'s own; a parallel run can resume a sequential
    checkpoint and vice versa.
    """
    from repro.core.options import VerifyOptions

    if options is None:
        options = VerifyOptions(workers=1)
    workers = options.workers if options.workers is not None else 1

    if zones is None:
        config = generator_config or GeneratorConfig(seed=seed, **config_overrides)
        zones = list(ZoneGenerator(config).stream(num_zones))
    campaign = Campaign(zones=zones)

    report = CampaignReport(version)
    started = time.perf_counter()
    perf = PerfCounters(workers=workers, units_total=len(zones))
    writer, completed = campaign._open_checkpoint(
        checkpoint, version, options.smoke_first, resume
    )

    unit_keys = [
        campaign._unit_key(index, zone, version)
        for index, zone in enumerate(zones)
    ]
    verdicts: Dict[int, ZoneVerdict] = {}
    pending: List[int] = []
    for index, key in enumerate(unit_keys):
        cached = completed.get(unit_address(key)) if writer is not None else None
        if cached is not None:
            verdicts[index] = ZoneVerdict.from_json(cached)
            perf.units_replayed += 1
        else:
            pending.append(index)

    payloads = [
        {
            "index": index,
            "zone_pickle": pickle.dumps(zones[index]),
            "version": version,
            "options": options.to_json(),
        }
        for index in pending
    ]
    for pos, status, value in run_units(
        campaign_unit_worker, payloads, workers, _grace_seconds(options)
    ):
        index = pending[pos]
        if status == DIED:
            # The worker process vanished mid-unit; the unit itself is
            # deterministic, so recomputing it in the parent yields
            # exactly what the lost worker would have returned.
            value = campaign_unit_worker(payloads[pos])
            perf.units_fallback += 1
            status = OK
        if status == OK:
            verdict = ZoneVerdict.from_json(value["verdict"])
            perf.absorb(value.get("perf"))
        else:  # TIMEOUT
            verdict = _timeout_verdict(index, zones[index])
            perf.units_timed_out += 1
        verdicts[index] = verdict
        if writer is not None:
            # Single-writer funnel: workers never touch the checkpoint.
            # Records land in completion order; the file is a map keyed
            # by unit address, so replay order is irrelevant.
            writer.append(unit_keys[index], verdict.to_json())

    report.verdicts = [verdicts[index] for index in range(len(zones))]
    report.elapsed_seconds = time.perf_counter() - started
    report.perf = perf.finish().to_json()
    return report


def verify_partitioned(zone: Zone, version: str = "verified", options=None,
                       cache=None):
    """One verify, its query-space partitions fanned across the pool.

    Routes through :class:`~repro.incremental.engine.IncrementalVerifier`
    (partition split, verdict cache, deterministic merge) with its
    pooled miss-recompute path enabled; the merged
    :class:`~repro.core.pipeline.VerificationResult` is identical for
    any worker count because every count — including 1 — runs the same
    worker function and the same JSON round-trip per partition.
    """
    from repro.core.options import VerifyOptions
    from repro.incremental.engine import IncrementalVerifier

    if options is None:
        options = VerifyOptions(workers=1)
    if cache is None:
        cache = options.make_cache()
    verifier = IncrementalVerifier(
        zone,
        version,
        cache=cache,
        depth=options.depth,
        workers=options.workers if options.workers is not None else 1,
        options=options,
        max_paths=options.max_paths,
        max_steps=options.max_steps,
    )
    outcome = verifier.verify_current()
    result = outcome.result
    if result.cache_stats is None:
        result.cache_stats = outcome.reuse.cache
    return result

"""A small, failure-aware process pool for verification units.

:func:`run_units` fans payloads out to a ``ProcessPoolExecutor`` and
yields ``(payload_index, status, value)`` tuples in *completion* order.
Callers are responsible for deterministic assembly (they know each
payload's stable index); this module is responsible for the three ways a
pool can go wrong:

- a **worker exception** that is a real bug propagates to the parent
  (exactly what the sequential loop would do);
- a **worker process death** (OOM kill, segfault) breaks the pool;
  every unit still in flight is yielded with status ``"died"`` so the
  caller can recompute it in-process — one lost worker never loses the
  run;
- a **stall** (no unit completes within ``grace_seconds``) terminates
  the pool's processes and yields the outstanding units with status
  ``"timeout"`` so the caller can degrade them to
  ``UNKNOWN(partial-coverage)`` instead of hanging forever. Budgets are
  cooperative, so a stall can only mean a worker wedged outside any
  charge point; the grace period is sized from the unit budget.

``workers <= 1`` (or a single payload) runs everything in-process with
identical semantics and no pool overhead — worker functions are
deterministic pure-ish functions of their payload, so in-process and
pooled execution produce the same values.

Start method: ``fork`` when the platform offers it (inherits the
parent's compiled-IR cache; cheap on Linux), else ``spawn`` — worker
functions and payloads are top-level/picklable either way. Override
with ``REPRO_MP_START=fork|spawn|forkserver``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Statuses a unit can come back with.
OK = "ok"
DIED = "died"
TIMEOUT = "timeout"

_ENV_START = "REPRO_MP_START"


def mp_context():
    """The multiprocessing context pooled runs use."""
    methods = multiprocessing.get_all_start_methods()
    chosen = os.environ.get(_ENV_START)
    if chosen is None:
        chosen = "fork" if "fork" in methods else "spawn"
    elif chosen not in methods:
        raise ValueError(
            f"{_ENV_START}={chosen!r} not available here (have {methods})"
        )
    return multiprocessing.get_context(chosen)


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a stalled pool's workers so neither shutdown nor
    interpreter exit blocks on a wedged process. ``_processes`` is
    private API; guarded so a stdlib change degrades to a plain
    (possibly blocking) shutdown rather than an error."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except (OSError, AttributeError):
            pass


def run_units(
    worker: Callable[[Dict], Dict],
    payloads: List[Dict],
    workers: int,
    grace_seconds: Optional[float] = None,
) -> Iterator[Tuple[int, str, Optional[Dict]]]:
    """Yield ``(payload_index, status, value)`` in completion order.

    ``status`` is ``"ok"`` (value is the worker's return), ``"died"``
    (worker process vanished; value None) or ``"timeout"`` (stall past
    ``grace_seconds``; value None). Ordinary exceptions raised *by* the
    worker function propagate.
    """
    if workers <= 1 or len(payloads) <= 1:
        for index, payload in enumerate(payloads):
            yield index, OK, worker(payload)
        return

    with ProcessPoolExecutor(
        max_workers=min(workers, len(payloads)), mp_context=mp_context()
    ) as pool:
        futures = {
            pool.submit(worker, payload): index
            for index, payload in enumerate(payloads)
        }
        pending = set(futures)
        last_completion = time.monotonic()
        broken = False
        while pending:
            poll = 0.25
            if grace_seconds is not None:
                poll = min(poll, max(0.01, grace_seconds / 10))
            done, pending = wait(pending, timeout=poll,
                                 return_when=FIRST_COMPLETED)
            if done:
                last_completion = time.monotonic()
                for future in done:
                    index = futures[future]
                    try:
                        yield index, OK, future.result()
                    except BrokenProcessPool:
                        broken = True
                        yield index, DIED, None
                if broken:
                    # The pool cannot run anything further; surrender the
                    # in-flight units to the caller's fallback path.
                    for future in pending:
                        yield futures[future], DIED, None
                    return
                continue
            if (
                grace_seconds is not None
                and time.monotonic() - last_completion > grace_seconds
            ):
                for future in pending:
                    future.cancel()
                _kill_pool_processes(pool)
                for future in pending:
                    yield futures[future], TIMEOUT, None
                return

"""Top-level worker functions the process pool executes.

Both workers take one JSON/pickle-safe payload dict and return a
JSON-safe dict — the contract :func:`repro.parallel.pool.run_units`
needs for any start method. They are deliberately thin: each one
reconstructs its inputs, delegates to the *same* code the sequential
paths run (:func:`repro.core.campaign.run_unit` for campaign units, a
restricted :class:`~repro.core.pipeline.VerificationSession` for
query-space partitions), and serializes the outcome. Determinism across
worker counts follows from that sharing plus three per-unit rules:

- every unit builds a **fresh budget** from the options (the bound is
  per unit, not per run, so completion order cannot move a deadline);
- every unit derives its **own fault plan** from the spec and its stable
  unit id (:func:`repro.resilience.faults.unit_plan`) — global consult
  order would be scheduler-dependent;
- every unit opens its **own cache handle** on the shared directory
  (entry publication is atomic; keys of distinct units are disjoint).
"""

from __future__ import annotations

import pickle
from contextlib import nullcontext
from typing import Dict

from repro.resilience import faults as faults_mod


def _options_of(payload: Dict):
    from repro.core.options import VerifyOptions

    return VerifyOptions.from_json(payload["options"])


def campaign_unit_worker(payload: Dict) -> Dict:
    """Verify one campaign unit (zone × version) and ship its verdict.

    Payload: ``index`` (stable unit id), ``zone_pickle`` (the parent
    already generated/loaded the zone — workers never re-generate, so
    explicit zone lists and generated streams behave identically),
    ``version``, ``options`` (:meth:`VerifyOptions.to_json`).

    The unsoundness cross-check (differential refutes, proof passes)
    raises here exactly as it does sequentially; the pool propagates it
    to the parent, which aborts the campaign.
    """
    from repro.core.campaign import run_unit
    from repro.parallel.counters import unit_perf

    index = payload["index"]
    zone = pickle.loads(payload["zone_pickle"])
    options = _options_of(payload)
    cache = options.make_cache()
    plan = faults_mod.unit_plan(options.faults, index)
    scope = faults_mod.active(plan) if plan is not None else nullcontext()
    with scope:
        verdict, result = run_unit(
            index,
            zone,
            payload["version"],
            smoke_first=options.smoke_first,
            cache=cache,
            budget_seconds=options.budget_seconds,
            budget_fuel=options.fuel,
        )
    return {
        "index": index,
        "verdict": verdict.to_json(),
        "perf": unit_perf(result, cache),
    }


def mutation_unit_worker(payload: Dict) -> Dict:
    """Verify one campaign *mutation* unit through the incremental path.

    Payload: ``index`` (stable unit id), ``zone_pickle`` (the mutated
    zone), ``base_zone_pickle`` (its predecessor), ``version``,
    ``options``. The worker verifies the base with
    :class:`~repro.incremental.engine.IncrementalVerifier` (warming the
    partition cache), then adopts the mutant via :meth:`diff_to` — so the
    unit exercises exactly the delta-invalidation machinery the watch
    daemon and the serve-plane gate rely on, with real partition reuse.
    The unit's verdict is the *mutant's*; reuse statistics ride along as
    telemetry (they depend on cache warmth and are never canonical).

    The unsoundness cross-check matches :func:`repro.core.campaign.run_unit`:
    a differential-refuted mutant whose incremental proof passes raises.
    """
    import time

    from repro.core.campaign import UNIT_ERRORS
    from repro.incremental.engine import IncrementalVerifier
    from repro.parallel.counters import unit_perf
    from repro.resilience import verdicts as verdicts_mod
    from repro.testing import differential_test

    index = payload["index"]
    zone = pickle.loads(payload["zone_pickle"])
    base_zone = pickle.loads(payload["base_zone_pickle"])
    options = _options_of(payload)
    cache = options.make_cache()
    if cache is None:
        from repro.incremental.cache import SummaryCache

        cache = SummaryCache(memory_only=True)
    plan = faults_mod.unit_plan(options.faults, index)
    scope = faults_mod.active(plan) if plan is not None else nullcontext()
    version = payload["version"]
    started = time.perf_counter()
    divergences = 0
    incremental = None
    with scope:
        try:
            if options.smoke_first:
                smoke = differential_test(zone, version, check_reference=False)
                divergences = len(smoke.divergences)
            verifier = IncrementalVerifier(
                base_zone, version, cache=cache, options=options,
                **options.session_kwargs(),
            )
            verifier.verify_current()  # warm the base's partition verdicts
            outcome = verifier.diff_to(zone)
            result = outcome.result
            incremental = {
                "records_changed": outcome.reuse.records_changed,
                "partitions_total": outcome.reuse.partitions_total,
                "partitions_reused": outcome.reuse.partitions_reused,
                "partitions_recomputed": outcome.reuse.partitions_recomputed,
            }
        except UNIT_ERRORS as exc:
            error_class, detail = verdicts_mod.classify_error(exc)
            verdict = {
                "zone_index": index,
                "zone_origin": zone.origin.to_text(),
                "records": len(zone),
                "verified": False,
                "bug_categories": [],
                "elapsed_seconds": time.perf_counter() - started,
                "solver_checks": 0,
                "differential_divergences": divergences,
                "verdict": verdicts_mod.ERROR,
                "unknown_reason": None,
                "error_class": error_class,
                "error_detail": detail,
            }
            return {"index": index, "verdict": verdict, "perf": None,
                    "incremental": None}
    if (
        divergences
        and result.verified
        and result.verdict == verdicts_mod.VERIFIED
    ):
        raise RuntimeError(
            f"unsound: differential refuted mutation unit {index} but the "
            f"incremental proof passed ({version})"
        )
    verdict = {
        "zone_index": index,
        "zone_origin": zone.origin.to_text(),
        "records": len(zone),
        "verified": result.verified,
        "bug_categories": list(result.bug_categories()),
        "elapsed_seconds": time.perf_counter() - started,
        "solver_checks": result.solver_checks,
        "differential_divergences": divergences,
        "verdict": result.verdict,
        "unknown_reason": result.unknown_reason,
        "error_class": result.error_class,
        "error_detail": result.error_detail or "",
    }
    return {
        "index": index,
        "verdict": verdict,
        "perf": unit_perf(result, cache),
        "incremental": incremental,
    }


def campaign_service_worker(payload: Dict) -> Dict:
    """The campaign service's pool entry point: dispatch by unit shape.

    ``run_units`` fans one worker function over a whole batch; a service
    batch mixes from-scratch units (generated/regression zones) with
    incremental mutation units, so this thin dispatcher routes each
    payload to the right specialist. Presence of ``base_zone_pickle`` is
    the discriminator — only mutation units carry a predecessor.
    """
    if payload.get("base_zone_pickle") is not None:
        return mutation_unit_worker(payload)
    value = campaign_unit_worker(payload)
    value.setdefault("incremental", None)
    return value


def partition_worker(payload: Dict) -> Dict:
    """Verify one query-plan unit of one zone.

    Payload: ``zone_pickle`` (the full zone for by-label partitions, a
    projected closure zone for equivalence-class units), ``part_key``
    (either a :class:`~repro.incremental.delta.Partition` key string or
    one of the planner-level ``gap``/``star`` keys), the optional
    ``gap_code`` pinning a gap unit's query label, ``version``,
    ``options``, and optionally ``index`` (the unit's stable plan
    position, seeding its per-unit fault plan).

    Returns the unit's cacheable verdict dict (the same shape
    :class:`~repro.incremental.engine.IncrementalVerifier` stores) plus
    perf. ``verdict`` is None when the unit's bugs do not serialize; the
    parent then recomputes that unit in-process to keep the live bug
    objects, exactly as the sequential path would.
    """
    from repro.core.pipeline import VerificationSession
    from repro.incremental.engine import verdict_of
    from repro.incremental.planner.protocol import unit_preconditions
    from repro.parallel.counters import unit_perf

    zone = pickle.loads(payload["zone_pickle"])
    part_key = payload["part_key"]
    options = _options_of(payload)
    cache = options.make_cache()
    if cache is None:
        from repro.incremental.cache import SummaryCache

        cache = SummaryCache(memory_only=True)
    plan = faults_mod.unit_plan(options.faults, payload.get("index", 0))
    scope = faults_mod.active(plan) if plan is not None else nullcontext()
    with scope:
        session = VerificationSession(
            zone,
            payload["version"],
            cache=cache,
            budget=options.make_budget(),
            **options.session_kwargs(),
        )
        pre = unit_preconditions(
            part_key, payload.get("gap_code"), session.query_encoding
        )
        if pre:
            session.restrict(pre)
        result = session.verify(use_summaries=options.use_summaries)
    return {
        "part_key": part_key,
        "verdict": verdict_of(result),
        "solver_checks": result.solver_checks,
        "perf": unit_perf(result, cache),
    }

"""Top-level worker functions the process pool executes.

Both workers take one JSON/pickle-safe payload dict and return a
JSON-safe dict — the contract :func:`repro.parallel.pool.run_units`
needs for any start method. They are deliberately thin: each one
reconstructs its inputs, delegates to the *same* code the sequential
paths run (:func:`repro.core.campaign.run_unit` for campaign units, a
restricted :class:`~repro.core.pipeline.VerificationSession` for
query-space partitions), and serializes the outcome. Determinism across
worker counts follows from that sharing plus three per-unit rules:

- every unit builds a **fresh budget** from the options (the bound is
  per unit, not per run, so completion order cannot move a deadline);
- every unit derives its **own fault plan** from the spec and its stable
  unit id (:func:`repro.resilience.faults.unit_plan`) — global consult
  order would be scheduler-dependent;
- every unit opens its **own cache handle** on the shared directory
  (entry publication is atomic; keys of distinct units are disjoint).
"""

from __future__ import annotations

import pickle
from contextlib import nullcontext
from typing import Dict

from repro.resilience import faults as faults_mod


def _options_of(payload: Dict):
    from repro.core.options import VerifyOptions

    return VerifyOptions.from_json(payload["options"])


def campaign_unit_worker(payload: Dict) -> Dict:
    """Verify one campaign unit (zone × version) and ship its verdict.

    Payload: ``index`` (stable unit id), ``zone_pickle`` (the parent
    already generated/loaded the zone — workers never re-generate, so
    explicit zone lists and generated streams behave identically),
    ``version``, ``options`` (:meth:`VerifyOptions.to_json`).

    The unsoundness cross-check (differential refutes, proof passes)
    raises here exactly as it does sequentially; the pool propagates it
    to the parent, which aborts the campaign.
    """
    from repro.core.campaign import run_unit
    from repro.parallel.counters import unit_perf

    index = payload["index"]
    zone = pickle.loads(payload["zone_pickle"])
    options = _options_of(payload)
    cache = options.make_cache()
    plan = faults_mod.unit_plan(options.faults, index)
    scope = faults_mod.active(plan) if plan is not None else nullcontext()
    with scope:
        verdict, result = run_unit(
            index,
            zone,
            payload["version"],
            smoke_first=options.smoke_first,
            cache=cache,
            budget_seconds=options.budget_seconds,
            budget_fuel=options.fuel,
        )
    return {
        "index": index,
        "verdict": verdict.to_json(),
        "perf": unit_perf(result, cache),
    }


def partition_worker(payload: Dict) -> Dict:
    """Verify one query-space partition of one zone.

    Payload: ``zone_pickle``, ``part_key`` (a
    :class:`~repro.incremental.delta.Partition` key string — the
    partition is reconstructed from it alone), ``version``, ``options``,
    and optionally ``index`` (the partition's stable plan position,
    seeding its per-unit fault plan).

    Returns the partition's cacheable verdict dict (the same shape
    :class:`~repro.incremental.engine.IncrementalVerifier` stores) plus
    perf. ``verdict`` is None when the partition's bugs do not
    serialize; the parent then recomputes that partition in-process to
    keep the live bug objects, exactly as the sequential path would.
    """
    from repro.core.pipeline import VerificationSession
    from repro.incremental.delta import Partition
    from repro.incremental.engine import verdict_of
    from repro.parallel.counters import unit_perf

    zone = pickle.loads(payload["zone_pickle"])
    part = Partition(payload["part_key"])
    options = _options_of(payload)
    cache = options.make_cache()
    if cache is None:
        from repro.incremental.cache import SummaryCache

        cache = SummaryCache(memory_only=True)
    plan = faults_mod.unit_plan(options.faults, payload.get("index", 0))
    scope = faults_mod.active(plan) if plan is not None else nullcontext()
    with scope:
        session = VerificationSession(
            zone,
            payload["version"],
            cache=cache,
            budget=options.make_budget(),
            **options.session_kwargs(),
        )
        if part.key != "full":
            session.restrict(part.preconditions(session.query_encoding))
        result = session.verify(use_summaries=options.use_summaries)
    return {
        "part_key": part.key,
        "verdict": verdict_of(result),
        "solver_checks": result.solver_checks,
        "perf": unit_perf(result, cache),
    }

"""Refinement-based verification (paper section 5.2, Figure 1).

Given a code function and its abstract specification (both AbsLLVM), the
checker runs full-path symbolic execution on both, then for every feasible
pair of (code path, spec path) asks the solver whether the outputs can
differ while both path conditions and the interface-relation axioms hold.
UNSAT everywhere proves the refinement; a SAT verdict yields a model that is
decoded into a concrete counterexample.

The *interface configuration* of the paper — the simulation relation R
associating concrete with abstract state — appears here as a list of
relation axioms (boolean formulas linking the two input encodings), plus
the choice of output observations to compare.
"""

from repro.refine.diff import value_diff_formula
from repro.refine.checker import (
    RefinementReport,
    Mismatch,
    check_refinement,
    check_refinement_nested,
    check_safety,
    SafetyReport,
)

__all__ = [
    "value_diff_formula",
    "RefinementReport",
    "Mismatch",
    "check_refinement",
    "check_refinement_nested",
    "check_safety",
    "SafetyReport",
]

"""Pairwise path-product refinement checking and safety checking."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.solver import SolveResult
from repro.solver.solver import Model
from repro.solver.terms import BoolExpr, and_
from repro.refine.diff import value_diff_formula
from repro.symex.errors import SymexError
from repro.symex.executor import Executor, Outcome, PanicInfo
from repro.symex.state import PathState


@dataclass
class Mismatch:
    """A refinement counterexample: a model under which a code path and a
    spec path are simultaneously feasible yet observably differ."""

    kind: str  # "output-differs" | "code-panic" | "spec-panic"
    model: Optional[Model]
    code_outcome: Optional[Outcome]
    spec_outcome: Optional[Outcome]
    observation: str = ""

    def describe(self) -> str:
        parts = [f"mismatch[{self.kind}]"]
        if self.observation:
            parts.append(self.observation)
        if self.model is not None:
            parts.append(f"model: {self.model!r}")
        return " ".join(parts)


@dataclass
class RefinementReport:
    """Outcome of one refinement check."""

    code_name: str
    spec_name: str
    verified: bool
    mismatches: List[Mismatch] = field(default_factory=list)
    code_paths: int = 0
    spec_paths: int = 0
    pairs_checked: int = 0
    elapsed_seconds: float = 0.0
    unknowns: int = 0

    def describe(self) -> str:
        status = "VERIFIED" if self.verified else "FAILED"
        lines = [
            f"refinement {self.code_name} ⊑ {self.spec_name}: {status} "
            f"({self.code_paths} code paths × {self.spec_paths} spec paths, "
            f"{self.pairs_checked} feasible pairs, {self.elapsed_seconds:.2f}s)"
        ]
        for mismatch in self.mismatches:
            lines.append("  " + mismatch.describe())
        return "\n".join(lines)


@dataclass
class SafetyReport:
    """Panic reachability for one function (section 6.1's safety)."""

    function: str
    safe: bool
    reachable_panics: List[Tuple[PanicInfo, Optional[Model]]] = field(
        default_factory=list
    )
    paths: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        status = "SAFE" if self.safe else "UNSAFE"
        lines = [f"safety {self.function}: {status} ({self.paths} paths)"]
        for info, model in self.reachable_panics:
            lines.append(f"  {info} | model: {model!r}")
        return "\n".join(lines)


Observation = Callable[[Outcome], Dict[str, object]]


def _default_observation(outcome: Outcome) -> Dict[str, object]:
    return {"ret": outcome.value}


def check_refinement(
    executor: Executor,
    code_name: str,
    spec_name: str,
    code_args: Sequence[object],
    spec_args: Sequence[object],
    state: Optional[PathState] = None,
    pre: Sequence[BoolExpr] = (),
    relation: Sequence[BoolExpr] = (),
    observe: Observation = _default_observation,
    stop_at_first: bool = False,
) -> RefinementReport:
    """Prove that ``code_name`` refines ``spec_name``.

    Both functions run from (forks of) the same initial ``state`` under
    ``pre``; ``relation`` holds the interface-configuration axioms linking
    the two input encodings; ``observe`` picks the outputs compared (the
    return value by default).
    """
    base = state.fork() if state is not None else PathState()
    started = time.perf_counter()

    code_outcomes = executor.run(code_name, list(code_args), state=base.fork(), pre=pre)
    spec_outcomes = executor.run(spec_name, list(spec_args), state=base.fork(), pre=pre)

    report = RefinementReport(
        code_name,
        spec_name,
        verified=True,
        code_paths=len(code_outcomes),
        spec_paths=len(spec_outcomes),
    )
    solver = executor.solver
    relation_list = list(relation)

    for code_out in code_outcomes:
        if code_out.is_panic:
            verdict = solver.check(*(code_out.state.pc + relation_list))
            if verdict is not SolveResult.UNSAT:
                model = solver.model() if verdict is SolveResult.SAT else None
                report.mismatches.append(
                    Mismatch("code-panic", model, code_out, None, str(code_out.panic))
                )
                report.verified = False
                if stop_at_first:
                    break
    if not (stop_at_first and not report.verified):
        for spec_out in spec_outcomes:
            if spec_out.is_panic:
                panic_verdict = solver.check(*spec_out.state.pc)
                if panic_verdict is SolveResult.UNSAT:
                    continue
                if panic_verdict is SolveResult.UNKNOWN:
                    # A degraded solver cannot prove the panic path
                    # infeasible: that is an unknown, not a crash.
                    report.unknowns += 1
                    report.verified = False
                    continue
                raise SymexError(
                    f"specification {spec_name} has a reachable panic: "
                    f"{spec_out.panic}"
                )

        code_normal = [o for o in code_outcomes if not o.is_panic]
        for code_out in code_normal:
            if stop_at_first and not report.verified:
                break
            for spec_out in spec_outcomes:
                if spec_out.is_panic:
                    continue
                joint = code_out.state.pc + spec_out.state.pc + relation_list
                verdict = solver.check(*joint)
                if verdict is SolveResult.UNSAT:
                    continue
                report.pairs_checked += 1
                code_obs = observe(code_out)
                spec_obs = observe(spec_out)
                if set(code_obs) != set(spec_obs):
                    raise SymexError("observation keys differ between code and spec")
                diff_parts = []
                for key in code_obs:
                    diff_parts.append(
                        value_diff_formula(
                            code_obs[key],
                            code_out.state.memory,
                            spec_obs[key],
                            spec_out.state.memory,
                        )
                    )
                from repro.solver.terms import or_

                differs = or_(*diff_parts)
                verdict = solver.check(*(joint + [differs]))
                if verdict is SolveResult.UNSAT:
                    continue
                model = solver.model() if verdict is SolveResult.SAT else None
                if verdict is SolveResult.UNKNOWN:
                    report.unknowns += 1
                report.mismatches.append(
                    Mismatch(
                        "output-differs",
                        model,
                        code_out,
                        spec_out,
                        f"outputs can diverge on keys {sorted(code_obs)}",
                    )
                )
                report.verified = False
                if stop_at_first:
                    break

    report.elapsed_seconds = time.perf_counter() - started
    return report


def check_refinement_nested(
    executor: Executor,
    code_name: str,
    spec_name: str,
    code_args: Sequence[object],
    spec_args: Sequence[object],
    state: PathState,
    pre: Sequence[BoolExpr] = (),
    observe_code: Optional[Callable[[Outcome], object]] = None,
    observe_spec: Optional[Callable[[Outcome], object]] = None,
    max_mismatches: int = 64,
) -> RefinementReport:
    """Refinement with the specification executed *under each code path*.

    Running the spec seeded with a code path's condition lets the solver
    prune almost every spec branch (the engine path pins the query's
    relationship to every zone name), avoiding the quadratic cross-product
    of :func:`check_refinement`. This is the mode the pipeline uses for
    ``Resolve`` against the top-level specification.

    ``observe_code``/``observe_spec`` return the value to compare (default:
    return value); both are read in the *final* memory of the spec run —
    valid because the spec never mutates the code's result blocks.
    """
    observe_code = observe_code or (lambda outcome: outcome.value)
    observe_spec = observe_spec or (lambda outcome: outcome.value)
    started = time.perf_counter()
    base = state.fork()
    code_outcomes = executor.run(code_name, list(code_args), state=base, pre=pre)
    report = RefinementReport(
        code_name, spec_name, verified=True, code_paths=len(code_outcomes)
    )
    solver = executor.solver

    for code_out in code_outcomes:
        if len(report.mismatches) >= max_mismatches:
            break
        if code_out.is_panic:
            verdict = solver.check(*code_out.state.pc)
            if verdict is not SolveResult.UNSAT:
                model = solver.model() if verdict is SolveResult.SAT else None
                report.mismatches.append(
                    Mismatch("code-panic", model, code_out, None, str(code_out.panic))
                )
                report.verified = False
            continue
        spec_outcomes = executor.run(
            spec_name, list(spec_args), state=code_out.state.fork()
        )
        report.spec_paths += len(spec_outcomes)
        code_value = observe_code(code_out)
        for spec_out in spec_outcomes:
            if spec_out.is_panic:
                panic_verdict = solver.check(*spec_out.state.pc)
                if panic_verdict is SolveResult.UNSAT:
                    continue
                if panic_verdict is SolveResult.UNKNOWN:
                    # A degraded solver cannot prove the panic path
                    # infeasible: that is an unknown, not a crash.
                    report.unknowns += 1
                    report.verified = False
                    continue
                raise SymexError(
                    f"specification {spec_name} has a reachable panic: "
                    f"{spec_out.panic}"
                )
            report.pairs_checked += 1
            memory = spec_out.state.memory
            differs = value_diff_formula(
                code_value, memory, observe_spec(spec_out), memory
            )
            verdict = solver.check(*(spec_out.state.pc + [differs]))
            if verdict is SolveResult.UNSAT:
                continue
            model = solver.model() if verdict is SolveResult.SAT else None
            if verdict is SolveResult.UNKNOWN:
                report.unknowns += 1
            report.mismatches.append(
                Mismatch(
                    "output-differs",
                    model,
                    code_out,
                    spec_out,
                    "responses can diverge",
                )
            )
            report.verified = False
            if len(report.mismatches) >= max_mismatches:
                break

    report.elapsed_seconds = time.perf_counter() - started
    return report


def check_safety(
    executor: Executor,
    function_name: str,
    args: Sequence[object],
    state: Optional[PathState] = None,
    pre: Sequence[BoolExpr] = (),
) -> SafetyReport:
    """Prove that no panic block of ``function_name`` is reachable."""
    base = state.fork() if state is not None else PathState()
    started = time.perf_counter()
    outcomes = executor.run(function_name, list(args), state=base, pre=pre)
    report = SafetyReport(function_name, safe=True, paths=len(outcomes))
    solver = executor.solver
    for outcome in outcomes:
        if not outcome.is_panic:
            continue
        verdict = solver.check(*outcome.state.pc)
        if verdict is SolveResult.UNSAT:
            continue
        model = solver.model() if verdict is SolveResult.SAT else None
        report.reachable_panics.append((outcome.panic, model))
        report.safe = False
    report.elapsed_seconds = time.perf_counter() - started
    return report

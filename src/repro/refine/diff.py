"""Structural difference formulas between executor values.

``value_diff_formula(a, mem_a, b, mem_b)`` builds a boolean formula that is
satisfiable exactly when the two values can be observed to differ: scalar
disequality, null/non-null mismatch, field-wise struct difference, or list
difference (length disequality, or some index below both lengths whose
elements differ). Aggregates are compared structurally through their
memories so the code's heap-allocated response and the specification's
response compare by content, not identity.
"""

from __future__ import annotations

from typing import Tuple

from repro.solver.terms import (
    BoolExpr,
    IntExpr,
    and_,
    beq,
    bfalse,
    btrue,
    iconst,
    lt,
    ne,
    not_,
    or_,
)
from repro.symex.errors import SymexError
from repro.symex.memory import Memory
from repro.symex.values import ListVal, Pointer, StructVal, UNINIT

#: Recursion bound; deep enough for any response structure, shallow enough
#: to cut accidental cycles loudly rather than loop.
MAX_DEPTH = 24


def value_diff_formula(a, mem_a: Memory, b, mem_b: Memory, depth: int = 0) -> BoolExpr:
    """Formula true iff ``a`` (in ``mem_a``) differs from ``b`` (in ``mem_b``)."""
    if depth > MAX_DEPTH:
        raise SymexError("value comparison exceeded depth bound (cyclic data?)")
    if a is UNINIT or b is UNINIT:
        return bfalse() if a is b else btrue()
    if isinstance(a, IntExpr) and isinstance(b, IntExpr):
        return ne(a, b)
    if isinstance(a, BoolExpr) and isinstance(b, BoolExpr):
        return not_(beq(a, b))
    if isinstance(a, Pointer) and isinstance(b, Pointer):
        return _pointer_diff(a, mem_a, b, mem_b, depth)
    return btrue()  # type mismatch is always a difference


def _pointer_diff(a: Pointer, mem_a, b: Pointer, mem_b, depth: int) -> BoolExpr:
    if a.is_null and b.is_null:
        return bfalse()
    if a.is_null or b.is_null:
        return btrue()
    if a.path or b.path:
        raise SymexError("cannot compare interior pointers structurally")
    content_a = mem_a.content(a.block_id)
    content_b = mem_b.content(b.block_id)
    if isinstance(content_a, StructVal) and isinstance(content_b, StructVal):
        if content_a.type_name != content_b.type_name or len(content_a.fields) != len(
            content_b.fields
        ):
            return btrue()
        parts = [
            value_diff_formula(fa, mem_a, fb, mem_b, depth + 1)
            for fa, fb in zip(content_a.fields, content_b.fields)
        ]
        return or_(*parts)
    if isinstance(content_a, ListVal) and isinstance(content_b, ListVal):
        return _list_diff(content_a, mem_a, content_b, mem_b, depth)
    if type(content_a) is not type(content_b):
        return btrue()
    # Scalar slots.
    return value_diff_formula(content_a, mem_a, content_b, mem_b, depth + 1)


def _list_diff(la: ListVal, mem_a, lb: ListVal, mem_b, depth: int) -> BoolExpr:
    parts = [ne(la.length, lb.length)]
    upper = min(len(la.items), len(lb.items))
    for k in range(upper):
        element_diff = value_diff_formula(
            la.items[k], mem_a, lb.items[k], mem_b, depth + 1
        )
        guard = and_(lt(iconst(k), la.length), lt(iconst(k), lb.length))
        parts.append(and_(guard, element_diff))
    # Physical slots beyond `upper` on either side are only observable when
    # that side's length exceeds `upper`, which the length-disequality part
    # covers unless both lengths agree and exceed physical capacity — which
    # the encoding's global bounds exclude.
    return or_(*parts)

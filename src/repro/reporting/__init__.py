"""Regeneration of the paper's tables and figures as text reports.

Each ``render_*`` function reproduces one evaluation artifact:

- :func:`render_table1` — Table 1 / Figure 11: every TreeSearch execution
  path over the section 6.4 example domain tree, with an example qname
  satisfying each path condition (solver models decoded through the
  interner).
- :func:`render_table2` — Table 2: the bug classes DNS-V finds per engine
  version, with validated concrete counterexamples.
- :func:`render_table3` — Table 3: porting cost per verification artifact.
- :func:`render_fig10` — the section 6.3 Name-layer refinement experiment
  (Figure 4's compare_raw against Figure 10's abstract spec).
- :func:`render_fig12` — Figure 12: per-layer verification time.
"""

from repro.reporting.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_fig10,
    render_fig12,
    table1_rows,
    table2_results,
    EXPECTED_TABLE2,
)

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_fig10",
    "render_fig12",
    "table1_rows",
    "table2_results",
    "EXPECTED_TABLE2",
]

"""Table and figure renderers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoding import QueryEncoding
from repro.core.layers import resolution_layers
from repro.core.pipeline import (
    VerificationResult,
    VerificationSession,
    RUNTIME_ERROR,
    WRONG_ADDITIONAL,
    WRONG_ANSWER,
    WRONG_AUTHORITY,
    WRONG_FLAG,
    WRONG_RCODE,
)
from repro.core.porting import porting_report
from repro.dns.name import DnsName
from repro.dns.zone import Zone
from repro.solver import SolveResult
from repro.summary.effects import FieldWrite
from repro.zonegen.corpus import evaluation_zone, paper_example_zone

_KIND_NAMES = {0: "MISS", 1: "EXACT", 2: "DELEGATION", 3: "WILDCARD"}


# ---------------------------------------------------------------------------
# Table 1 — TreeSearch paths on the example domain tree
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    path_id: str
    example_qname: str
    kind: str
    matched_node: str


def table1_rows(zone: Optional[Zone] = None) -> List[Table1Row]:
    """Summarize TreeSearch on the example tree and decode one example
    qname per path condition (the paper's Table 1)."""
    session = VerificationSession(zone or paper_example_zone())
    layer = resolution_layers()[0]
    summary = session.summarize_layer(layer)
    solver = session.executor.solver
    encoding = session.query_encoding
    # TreeSearch runs under Resolve's guarantee that the qname lies below
    # the apex; pin the apex labels the same way when picking examples.
    from repro.solver import eq, ge, ivar

    origin_codes = session.encoder.interner.encode_name(session.zone.origin)
    apex = [eq(ivar(f"n{i}"), code) for i, code in enumerate(origin_codes)]
    apex.append(ge(ivar("nameLen"), len(origin_codes)))
    rows: List[Table1Row] = []
    for index, case in enumerate(summary.cases):
        conditions = session.pre + apex + [case.condition]
        verdict = solver.check(*conditions)
        if verdict is not SolveResult.SAT:
            continue
        model = encoding.refine_model(solver, conditions, solver.model())
        if model is None:
            example = "<undecodable>"
        else:
            query = encoding.decode_query(model)
            example = query.qname.to_text() if query else "<undecodable>"
        kind, node = _search_result_of(session, case)
        rows.append(Table1Row(f"P{index}", example, kind, node))
    return rows


def _search_result_of(session: VerificationSession, case) -> Tuple[str, str]:
    kind, node_name = "?", "?"
    for effect in case.effects:
        if isinstance(effect, FieldWrite) and effect.param == 3:
            if effect.field_name == "kind" and effect.value.is_const:
                kind = _KIND_NAMES.get(effect.value.const, "?")
            if effect.field_name == "node":
                node_name = _decode_node_name(session, effect.value)
    return kind, node_name


def _decode_node_name(session: VerificationSession, pointer) -> str:
    from repro.symex.values import Pointer, StructVal

    if not isinstance(pointer, Pointer) or pointer.is_null:
        return "nil"
    content = session.state.memory.content(pointer.block_id)
    if not isinstance(content, StructVal) or content.type_name != "TreeNode":
        return "?"
    name_ptr = content.fields[0]
    codes_list = session.state.memory.content(name_ptr.block_id)
    codes = [c.const for c in codes_list.items]
    name = session.encoder.decode_name(codes)
    return name.to_text() if name else "?"


def render_table1(zone: Optional[Zone] = None) -> str:
    rows = table1_rows(zone)
    lines = [
        "Table 1: all TreeSearch execution paths on the example domain tree",
        f"{'Path':<6} {'Example qname':<28} {'Match kind':<12} Matched node",
    ]
    for row in rows:
        lines.append(
            f"{row.path_id:<6} {row.example_qname:<28} {row.kind:<12} {row.matched_node}"
        )
    lines.append(f"({len(rows)} feasible paths)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — bug classes per version
# ---------------------------------------------------------------------------

#: The paper's Table 2: (index, version, classification keywords).
EXPECTED_TABLE2 = [
    (1, "v1.0", (WRONG_FLAG,), "AA flag missing for certain authoritative answers"),
    (2, "v1.0", (WRONG_AUTHORITY,), "Extraneous NS/SOA authority"),
    (3, "v1.0", (WRONG_ANSWER,), "Incorrect resource record matching on MX"),
    (4, "v2.0", (WRONG_ADDITIONAL,), "Incomplete glue for certain queries"),
    (5, "v2.0", (WRONG_ADDITIONAL,), "Incomplete glue when handling wildcard"),
    (6, "v2.0", (WRONG_ANSWER, WRONG_RCODE), "Incorrect domain tree search for certain wildcard domains"),
    (7, "v2.0", (WRONG_ADDITIONAL,), "Extraneous records in the additional section"),
    (8, "v3.0", (WRONG_ANSWER, WRONG_RCODE), "Incorrect judgments on certain wildcard domains"),
    (9, "dev", (RUNTIME_ERROR,), "Incomplete bug fix may cause invalid memory access"),
]

VERSIONS = ("v1.0", "v2.0", "v3.0", "dev", "verified")


def table2_results(
    zone: Optional[Zone] = None, versions: Sequence[str] = VERSIONS
) -> Dict[str, VerificationResult]:
    """Run the full pipeline per version on the evaluation zone."""
    zone = zone or evaluation_zone()
    return {
        version: VerificationSession(zone, version).verify()
        for version in versions
    }


def render_table2(results: Optional[Dict[str, VerificationResult]] = None) -> str:
    results = results or table2_results()
    lines = [
        "Table 2: issues prevented from reaching production",
        f"{'Idx':<4} {'Version':<9} {'Classification':<28} {'Caught':<7} Example / description",
    ]
    for index, version, categories, description in EXPECTED_TABLE2:
        result = results.get(version)
        caught = False
        example = ""
        if result is not None:
            found = result.bug_categories()
            caught = any(c in found for c in categories)
            for bug in result.bugs:
                if any(c in bug.categories for c in categories):
                    example = bug.query.to_text() if bug.query else "?"
                    break
        lines.append(
            f"{index:<4} {version:<9} {'/'.join(categories):<28} "
            f"{'YES' if caught else 'no':<7} {description}"
            + (f" (e.g. {example})" if example else "")
        )
    verified = results.get("verified")
    if verified is not None:
        status = "VERIFIED (no bugs)" if verified.verified else "UNEXPECTED BUGS"
        lines.append(f"--   verified  {status}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 — porting cost
# ---------------------------------------------------------------------------


def render_table3(base: str = "v2.0", nxt: str = "v3.0") -> str:
    report = porting_report(base, nxt)
    return "Table 3: verification and porting cost\n" + report.describe()


# ---------------------------------------------------------------------------
# Figure 10 — Name-layer refinement (section 6.3)
# ---------------------------------------------------------------------------


def render_fig10(max_labels: int = 3, max_label_len: int = 3) -> str:
    from repro.spec.namespec import check_name_refinement

    node = DnsName.from_text("ab.cd.")
    good = check_name_refinement(
        node, extra_labels=["x", "yz"], max_labels=max_labels, max_label_len=max_label_len
    )
    bad = check_name_refinement(
        node,
        extra_labels=["x", "yz"],
        max_labels=max_labels,
        max_label_len=max_label_len,
        raw_function="compare_raw_noboundary",
    )
    lines = [
        "Figure 10 experiment: byte-level compareRaw vs abstract compareAbs",
        good.describe(),
        "negative control (label-boundary check removed):",
        bad.describe(),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 12 — per-layer verification time
# ---------------------------------------------------------------------------


def render_fig12(zone: Optional[Zone] = None, version: str = "v2.0") -> str:
    from repro.spec.namespec import check_name_refinement

    zone = zone or evaluation_zone()
    session = VerificationSession(zone, version)
    result = session.verify()
    name_report = check_name_refinement(
        DnsName.from_text("ab.cd."), extra_labels=["x", "yz"]
    )
    entries = [("Name", "refine", name_report.elapsed_seconds)]
    entries.extend(
        (layer.name, layer.route, layer.elapsed_seconds) for layer in result.layers
    )
    longest = max(elapsed for _, _, elapsed in entries) or 1e-9
    lines = [
        f"Figure 12: per-layer verification time ({version} on {zone.origin.to_text()})",
    ]
    for name, route, elapsed in entries:
        bar = "#" * max(1, int(40 * elapsed / longest))
        lines.append(f"{name:<12} [{route:<9}] {elapsed:7.2f}s {bar}")
    lines.append("(paper: every layer finishes in under one minute)")
    return "\n".join(lines)

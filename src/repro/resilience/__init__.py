"""Fault-tolerant verification runtime.

The verifier runs continuously against an in-production engine, so the
verifier itself must survive solver blowups, partial results, corrupted
caches and file races without losing proof progress. This package holds
the four pieces that make that true:

- :mod:`repro.resilience.verdicts` — the typed verdict taxonomy
  (``VERIFIED`` / ``BUG`` / ``UNKNOWN(reason)`` / ``ERROR(taxonomy)``);
- :mod:`repro.resilience.budget` — cooperative wall-clock/fuel budgets
  threaded through the executor, the solver and the pipeline;
- :mod:`repro.resilience.checkpoint` — crash-safe JSONL campaign
  checkpoints with atomic publication;
- :mod:`repro.resilience.faults` — deterministic fault injection at named
  sites, plus :mod:`repro.resilience.supervise` (retry/backoff, circuit
  breaker) for the watch daemon.
"""

from repro.resilience.budget import Budget, BudgetExhausted
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointWriter,
    load as load_checkpoint,
    unit_address,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    KNOWN_SITES,
)
from repro.resilience.supervise import CircuitBreaker, RetryPolicy, retry_call
from repro.resilience.verdicts import (
    BUG,
    ERROR,
    UNKNOWN,
    VERIFIED,
    Verdict,
    classify_error,
)
from repro.resilience import faults, verdicts

__all__ = [
    "Budget",
    "BudgetExhausted",
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "CheckpointWriter",
    "load_checkpoint",
    "unit_address",
    "FaultPlan",
    "InjectedFault",
    "KNOWN_SITES",
    "CircuitBreaker",
    "RetryPolicy",
    "retry_call",
    "VERIFIED",
    "BUG",
    "UNKNOWN",
    "ERROR",
    "Verdict",
    "classify_error",
    "faults",
    "verdicts",
]

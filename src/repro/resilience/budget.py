"""Cooperative resource governance for verification runs.

A :class:`Budget` bounds one unit of proof work with a wall-clock deadline
and/or an integer *step fuel*. It is cooperative: the symbolic executor
charges one fuel per interpreted instruction and polls the deadline every
few hundred steps; the solver consults it at check entry and degrades to
``UNKNOWN`` instead of raising. Exhaustion surfaces as
:class:`BudgetExhausted`, which the pipeline converts into a typed
``UNKNOWN(reason)`` verdict carrying the partial-coverage statistics
accumulated so far — the campaign/partition loop then simply moves on.

One Budget instance is shared by everything inside one verification unit
(session, executor, solver), so the bound is global to the unit rather
than per-component.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.resilience.verdicts import REASON_DEADLINE, REASON_FUEL

#: How many executor steps pass between deadline polls (fuel is charged on
#: every step; ``time.monotonic`` is only consulted this often).
DEADLINE_POLL_MASK = 0xFF


class BudgetExhausted(RuntimeError):
    """A budget dimension ran out; partial results remain valid."""

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail


class Budget:
    """Wall-clock deadline plus step fuel for one verification unit.

    ``wall_seconds=None`` / ``fuel=None`` leave that dimension unbounded.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        fuel: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if wall_seconds is not None and wall_seconds <= 0:
            raise ValueError("wall_seconds must be positive")
        if fuel is not None and fuel <= 0:
            raise ValueError("fuel must be positive")
        self.wall_seconds = wall_seconds
        self.initial_fuel = fuel
        self._fuel = fuel
        self._clock = clock
        self._deadline: Optional[float] = None
        self._started_at: Optional[float] = None
        self.steps_charged = 0
        self.solver_consults = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the deadline (idempotent); charging auto-starts too."""
        if self._started_at is None:
            self._started_at = self._clock()
            if self.wall_seconds is not None:
                self._deadline = self._started_at + self.wall_seconds
        return self

    # -- charging ----------------------------------------------------------

    def charge(self, steps: int = 1) -> None:
        """Consume ``steps`` fuel; raise :class:`BudgetExhausted` when the
        tank is dry or (polled) the deadline has passed."""
        if self._started_at is None:
            self.start()
        self.steps_charged += steps
        if self._fuel is not None:
            self._fuel -= steps
            if self._fuel < 0:
                raise BudgetExhausted(
                    REASON_FUEL,
                    f"step fuel exhausted after {self.steps_charged} steps",
                )
        if not (self.steps_charged & DEADLINE_POLL_MASK):
            self.check_deadline()

    def check_deadline(self) -> None:
        """Raise when the wall-clock deadline has passed."""
        if self._started_at is None:
            self.start()
        if self._deadline is not None and self._clock() > self._deadline:
            raise BudgetExhausted(
                REASON_DEADLINE,
                f"deadline of {self.wall_seconds}s passed",
            )

    def exhausted(self) -> Optional[str]:
        """Non-raising probe: the exhaustion reason, or None while solvent.

        This is the solver's entry point — it degrades to ``UNKNOWN``
        rather than raising out of a check.
        """
        self.solver_consults += 1
        if self._started_at is None:
            self.start()
        if self._fuel is not None and self._fuel < 0:
            return REASON_FUEL
        if self._deadline is not None and self._clock() > self._deadline:
            return REASON_DEADLINE
        return None

    # -- introspection ------------------------------------------------------

    @property
    def fuel_remaining(self) -> Optional[int]:
        return self._fuel

    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def snapshot(self) -> Dict[str, object]:
        """Partial-coverage statistics for UNKNOWN verdicts and logs."""
        return {
            "wall_seconds": self.wall_seconds,
            "elapsed_seconds": round(self.elapsed(), 6),
            "fuel": self.initial_fuel,
            "fuel_remaining": self._fuel,
            "steps_charged": self.steps_charged,
            "solver_consults": self.solver_consults,
        }

    def __repr__(self) -> str:
        return (
            f"Budget(wall={self.wall_seconds}, fuel={self._fuel}/"
            f"{self.initial_fuel}, steps={self.steps_charged})"
        )

"""Crash-safe JSONL checkpoints for long-running campaigns.

A checkpoint is an append-only JSON-lines file: one header line pinning
what the campaign is (engine digest, zone digests, knobs — the same
digest-pinning discipline as the incremental cache keys), then one line
per completed (version, layer, partition)-style unit. Publication is
atomic — the whole file is rewritten to a temp file and ``os.replace``\\ d
on every append — so a reader (or a resumed run) never observes a
half-written line even if the writer is SIGKILLed mid-record.

``load`` is deliberately tolerant: lines that fail to decode (a torn
write from a pre-atomic format, manual edits) are skipped and counted, so
a damaged checkpoint degrades to re-running the damaged units rather than
refusing to resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Bump when the line layout changes; mismatched files refuse to resume.
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """The checkpoint exists but describes a different campaign."""


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def unit_address(unit_key: Dict) -> str:
    """Canonical string identity of a unit key (dict-safe map key)."""
    return _canonical(unit_key)


def load(path) -> Tuple[Optional[Dict], Dict[str, Dict], int]:
    """Read a checkpoint: ``(header, {unit_address: payload}, corrupt_lines)``.

    A missing file is an empty checkpoint, not an error.
    """
    path = Path(path)
    header: Optional[Dict] = None
    units: Dict[str, Dict] = {}
    corrupt = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        return None, {}, 0
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if not isinstance(record, dict):
            corrupt += 1
        elif "header" in record:
            header = record["header"]
        elif "unit" in record and "payload" in record:
            units[unit_address(record["unit"])] = record["payload"]
        else:
            corrupt += 1
    return header, units, corrupt


class CheckpointWriter:
    """Append units to a checkpoint with atomic whole-file publication."""

    def __init__(self, path, header: Dict, _lines: Optional[List[str]] = None):
        self.path = Path(path)
        self.header = dict(header, format=CHECKPOINT_FORMAT)
        self._lines = list(_lines) if _lines else []
        if not self._lines:
            self._lines.append(_canonical({"header": self.header}))
            self._publish()

    @classmethod
    def open(cls, path, header: Dict,
             resume: bool = False) -> Tuple["CheckpointWriter", Dict[str, Dict]]:
        """Create (or resume) a checkpoint for ``header``.

        Returns the writer plus the already-completed units. Without
        ``resume`` any existing file is discarded. With it, a file whose
        header disagrees (different campaign) raises
        :class:`CheckpointError` instead of silently mixing runs.
        """
        full_header = dict(header, format=CHECKPOINT_FORMAT)
        if not resume:
            return cls(path, header), {}
        existing_header, units, _corrupt = load(path)
        if existing_header is None:
            return cls(path, header), {}
        if existing_header != full_header:
            raise CheckpointError(
                f"checkpoint {path} was written by a different campaign "
                f"(header mismatch); delete it or drop --resume"
            )
        lines = [_canonical({"header": full_header})]
        for address, payload in units.items():
            lines.append(
                _canonical({"unit": json.loads(address), "payload": payload})
            )
        writer = cls(path, header, _lines=lines)
        writer._publish()  # re-publish drops any corrupt trailing lines
        return writer, units

    def append(self, unit_key: Dict, payload: Dict) -> None:
        self._lines.append(_canonical({"unit": unit_key, "payload": payload}))
        self._publish()

    def _publish(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("\n".join(self._lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

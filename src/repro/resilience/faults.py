"""Deterministic fault injection at named sites.

Every degraded path in the runtime is guarded by a *site*: a string naming
one failure the code claims to survive. Production code consults the
active :class:`FaultPlan` at each site (a no-op when none is installed,
the default); the test suite and the CI smoke job install seeded or
scripted plans and assert that every site degrades to a typed verdict
instead of an uncaught exception.

Known sites and what firing them simulates:

======================  ===================================================
``compile``             GoPy → AbsLLVM compilation fails (``ERROR(compile)``)
``solver.exhaust``      the SAT backend gives up: ``check()`` returns UNKNOWN
``cache.read``          cache entry read raises ``OSError`` (counted, a miss)
``cache.write``         cache entry publish raises ``OSError`` (degrades to RAM)
``cache.corrupt``       cache entry is truncated on disk (evicted, a miss)
``watch.stat``          zone-file ``stat`` raises ``OSError`` (retried/reported)
``watch.read``          zone-file read raises ``OSError`` (retried/reported)
``serve.udp.recv``      datagram lost at the socket layer (dropped, counted)
``serve.udp.send``      reply ``sendto`` raises ``OSError`` (counted)
``serve.tcp.read``      TCP frame read raises ``OSError`` (connection closed)
``serve.tcp.write``     TCP reply write raises ``OSError`` (connection closed)
``serve.reload.read``   serving zone-file read raises ``OSError`` (retried)
``serve.gate.verify``   gate verification blows up (``ERROR`` hold, alarm)
``serve.snapshot.swap`` snapshot build/swap fails post-verify (hold, alarm)
``serve.journal.write`` publish-journal append tears + raises (publish held)
======================  ===================================================

Plans are deterministic by construction: seeded plans draw from their own
``random.Random(seed)`` in consult order, scripted plans fire a fixed
number of times (or follow an explicit bool sequence) per site. Both
record every consult and fire, so a drill can prove coverage.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, Iterable, Optional, Union

from repro.resilience.verdicts import (
    ERR_CACHE_IO,
    ERR_COMPILE,
    ERR_INJECTED,
    ERR_IO,
)

SITE_COMPILE = "compile"
SITE_SOLVER = "solver.exhaust"
SITE_CACHE_READ = "cache.read"
SITE_CACHE_WRITE = "cache.write"
SITE_CACHE_CORRUPT = "cache.corrupt"
SITE_WATCH_STAT = "watch.stat"
SITE_WATCH_READ = "watch.read"
SITE_SERVE_UDP_RECV = "serve.udp.recv"
SITE_SERVE_UDP_SEND = "serve.udp.send"
SITE_SERVE_TCP_READ = "serve.tcp.read"
SITE_SERVE_TCP_WRITE = "serve.tcp.write"
SITE_SERVE_RELOAD_READ = "serve.reload.read"
SITE_SERVE_GATE_VERIFY = "serve.gate.verify"
SITE_SERVE_SNAPSHOT_SWAP = "serve.snapshot.swap"
SITE_SERVE_JOURNAL_WRITE = "serve.journal.write"

#: The serving-plane subset (the sites ``chaosdrill --serve`` fires).
SERVE_SITES = (
    SITE_SERVE_UDP_RECV,
    SITE_SERVE_UDP_SEND,
    SITE_SERVE_TCP_READ,
    SITE_SERVE_TCP_WRITE,
    SITE_SERVE_RELOAD_READ,
    SITE_SERVE_GATE_VERIFY,
    SITE_SERVE_SNAPSHOT_SWAP,
    SITE_SERVE_JOURNAL_WRITE,
)

KNOWN_SITES = (
    SITE_COMPILE,
    SITE_SOLVER,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_CACHE_CORRUPT,
    SITE_WATCH_STAT,
    SITE_WATCH_READ,
) + SERVE_SITES

#: The error taxonomy a raising site maps to (behavioral sites — solver
#: exhaustion, cache corruption — do not raise and are absent here).
SITE_TAXONOMY = {
    SITE_COMPILE: ERR_COMPILE,
    SITE_CACHE_READ: ERR_CACHE_IO,
    SITE_CACHE_WRITE: ERR_CACHE_IO,
    SITE_WATCH_STAT: ERR_IO,
    SITE_WATCH_READ: ERR_IO,
    SITE_SERVE_UDP_RECV: ERR_IO,
    SITE_SERVE_UDP_SEND: ERR_IO,
    SITE_SERVE_TCP_READ: ERR_IO,
    SITE_SERVE_TCP_WRITE: ERR_IO,
    SITE_SERVE_RELOAD_READ: ERR_IO,
    # The gate-verify site simulates the *prover* failing, not IO: it
    # raises a tagged InjectedFault so classify_error files the hold
    # under ERROR(injected), distinguishable from a real disk problem.
    SITE_SERVE_GATE_VERIFY: ERR_INJECTED,
    SITE_SERVE_SNAPSHOT_SWAP: ERR_INJECTED,
    SITE_SERVE_JOURNAL_WRITE: ERR_IO,
}


class InjectedFault(RuntimeError):
    """A fault fired at a raising site; carries its taxonomy so
    classification matches the real failure it simulates."""

    def __init__(self, site: str, taxonomy: str):
        super().__init__(f"injected fault at site {site!r}")
        self.site = site
        self.taxonomy = taxonomy


class FaultPlan:
    """A deterministic schedule of faults.

    ``script`` maps site → either an int (fire on the first N consults of
    that site) or an iterable of bools consumed consult-by-consult (and
    False once drained). ``seed``/``rate`` instead fire each consult with
    probability ``rate`` from a dedicated PRNG — reproducible for a given
    seed and consult order. ``sites`` restricts a seeded plan to a subset.
    """

    def __init__(
        self,
        script: Optional[Dict[str, Union[int, Iterable[bool]]]] = None,
        seed: Optional[int] = None,
        rate: float = 0.0,
        sites: Optional[Iterable[str]] = None,
    ):
        self._script: Dict[str, list] = {}
        for site, spec in (script or {}).items():
            if site not in KNOWN_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            if isinstance(spec, int):
                self._script[site] = [True] * spec
            else:
                self._script[site] = list(spec)
        self._rng = random.Random(seed) if seed is not None else None
        self._rate = rate
        self._sites = frozenset(sites) if sites is not None else None
        self.consults: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    @classmethod
    def seeded(cls, seed: int, rate: float = 0.1,
               sites: Optional[Iterable[str]] = None) -> "FaultPlan":
        return cls(seed=seed, rate=rate, sites=sites)

    @classmethod
    def scripted(cls, script: Dict[str, Union[int, Iterable[bool]]]) -> "FaultPlan":
        return cls(script=script)

    # -- decisions ---------------------------------------------------------

    def consult(self, site: str) -> bool:
        """Record one consult of ``site``; True when the fault fires."""
        self.consults[site] = self.consults.get(site, 0) + 1
        fire = False
        queue = self._script.get(site)
        if queue:
            fire = bool(queue.pop(0))
        elif self._rng is not None and (
            self._sites is None or site in self._sites
        ):
            fire = self._rng.random() < self._rate
        if fire:
            self.fired[site] = self.fired.get(site, 0) + 1
        return fire

    def report(self) -> Dict[str, Dict[str, int]]:
        return {"consults": dict(self.consults), "fired": dict(self.fired)}


# -- spec strings ------------------------------------------------------------

#: Mixes a unit id into a seeded spec's seed; any odd constant works, it
#: only needs to be stable so ``workers=1`` and ``workers=8`` agree.
_UNIT_SEED_STRIDE = 1_000_003


def parse_spec(spec: str) -> FaultPlan:
    """Parse the CLI/facade fault-spec string.

    ``seed:<N>[:<rate>]`` builds a seeded plan; ``site=count,...`` (e.g.
    ``cache.read=2,solver.exhaust=10``) builds a scripted one.
    """
    if spec.startswith("seed:"):
        parts = spec.split(":")
        seed = int(parts[1])
        rate = float(parts[2]) if len(parts) > 2 else 0.1
        return FaultPlan.seeded(seed, rate=rate)
    script: Dict[str, int] = {}
    for item in spec.split(","):
        site, _, count = item.partition("=")
        script[site.strip()] = int(count) if count else 1
    return FaultPlan.scripted(script)


def unit_plan(spec: Optional[str], unit_id: int) -> Optional[FaultPlan]:
    """A fresh plan for one parallel unit, deterministic in ``unit_id``.

    A whole-run plan consults sites in global order, which worker
    scheduling would scramble; instead every unit derives its own plan
    from the spec and its stable id. Seeded specs fold the id into the
    seed (each unit draws an independent but reproducible stream);
    scripted specs are re-instantiated per unit (the script fires the same
    way in every unit). Either way the injection a unit sees depends only
    on ``(spec, unit_id)`` — never on worker count or completion order.
    """
    if spec is None:
        return None
    if spec.startswith("seed:"):
        parts = spec.split(":")
        seed = int(parts[1])
        rate = float(parts[2]) if len(parts) > 2 else 0.1
        return FaultPlan.seeded(seed * _UNIT_SEED_STRIDE + unit_id, rate=rate)
    return parse_spec(spec)


# -- process-global plan registry -------------------------------------------

_active_plan: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    global _active_plan
    _active_plan = plan


def clear() -> None:
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _active_plan


@contextmanager
def active(plan: FaultPlan):
    """Install ``plan`` for the duration of a with-block."""
    previous = _active_plan
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def should_fire(site: str) -> bool:
    """Consult the active plan; always False when none is installed."""
    if _active_plan is None:
        return False
    return _active_plan.consult(site)


def maybe_raise(site: str) -> None:
    """Raise the site's canonical exception when the plan says so.

    IO-flavoured sites raise ``OSError`` (the code under test must handle
    the real thing); others raise :class:`InjectedFault` tagged with the
    site's taxonomy.
    """
    if not should_fire(site):
        return
    taxonomy = SITE_TAXONOMY.get(site, ERR_IO)
    if taxonomy in (ERR_CACHE_IO, ERR_IO):
        raise OSError(f"injected fault at site {site!r}")
    raise InjectedFault(site, taxonomy)

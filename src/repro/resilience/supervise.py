"""Supervision primitives: retry with backoff + jitter, circuit breaking.

Used by the watch daemon (and anything else long-running) to absorb
transient IO without either hammering a flapping resource or looping
forever on a permanent one. Jitter is drawn from a seeded PRNG so retry
schedules are reproducible in tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type


@dataclass
class RetryPolicy:
    """Exponential backoff: ``base_delay * 2^k`` capped at ``max_delay``,
    each delay scaled by a deterministic jitter in ``[1-j, 1+j]``."""

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    jitter_seed: int = 0

    def delays(self):
        """The (max_attempts - 1) sleep durations between attempts."""
        rng = random.Random(self.jitter_seed)
        for attempt in range(max(0, self.max_attempts - 1)):
            delay = min(self.max_delay, self.base_delay * (2 ** attempt))
            yield delay * (1.0 + rng.uniform(-self.jitter, self.jitter))


def retry_call(
    fn: Callable,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` with up to ``policy.max_attempts`` attempts.

    Returns ``(value, attempts_used)``; re-raises the last exception once
    attempts are spent. Only ``retry_on`` exceptions are retried.
    """
    delays = policy.delays()
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn(), attempts
        except retry_on as exc:
            try:
                delay = next(delays)
            except StopIteration:
                raise exc
            sleep(delay)


class CircuitBreaker:
    """Open after ``max_failures`` *consecutive* failures.

    The owner checks :attr:`is_open` before doing more work; any success
    closes the breaker again (the daemon half-opens by construction: a
    poll that succeeds after failures resets the count).
    """

    def __init__(self, max_failures: int = 5):
        if max_failures <= 0:
            raise ValueError("max_failures must be positive")
        self.max_failures = max_failures
        self.consecutive_failures = 0
        self.total_failures = 0
        self.opened_count = 0

    @property
    def is_open(self) -> bool:
        return self.consecutive_failures >= self.max_failures

    @property
    def state(self) -> str:
        return "open" if self.is_open else "closed"

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures == self.max_failures:
            self.opened_count += 1

    def reset(self) -> None:
        self.consecutive_failures = 0

"""The typed verdict taxonomy of the fault-tolerant runtime.

Every verification outcome in DNS-V is one of four kinds:

``VERIFIED``
    the refinement proof closed with no counterexample;
``BUG``
    at least one validated divergence (a real counterexample that
    re-executed natively);
``UNKNOWN(reason)``
    the proof neither closed nor refuted — a budget ran out, the solver
    gave up inside its node limit, or a mismatch could not be validated.
    The reason string is machine-stable (see the ``REASON_*`` constants);
``ERROR(taxonomy)``
    the run itself failed — a compile error, cache IO, an injected fault —
    classified into the ``ERR_*`` taxonomy below.

The point of the taxonomy is that *degradation is data*: a campaign unit
that blows its budget or trips over a corrupted cache entry records a
verdict and the run continues, instead of a stack trace killing hours of
proof progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

# -- verdict kinds ----------------------------------------------------------

VERIFIED = "VERIFIED"
BUG = "BUG"
UNKNOWN = "UNKNOWN"
ERROR = "ERROR"

KINDS: Tuple[str, ...] = (VERIFIED, BUG, UNKNOWN, ERROR)

# -- UNKNOWN reasons --------------------------------------------------------

REASON_DEADLINE = "wall-clock-deadline"
REASON_FUEL = "step-fuel"
REASON_PATHS = "path-budget"
REASON_STEPS = "step-budget"
REASON_DEPTH = "call-depth"
REASON_SOLVER = "solver-unknown"
REASON_UNVALIDATED = "unvalidated-mismatch"

# -- ERROR taxonomy ---------------------------------------------------------

ERR_COMPILE = "compile"
ERR_CACHE_IO = "cache-io"
ERR_ZONE = "zone-parse"
ERR_IO = "io"
ERR_INJECTED = "injected"
ERR_INTERNAL = "internal"


@dataclass(frozen=True)
class Verdict:
    """A typed outcome: kind plus its qualifying reason/taxonomy."""

    kind: str
    reason: Optional[str] = None
    detail: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown verdict kind {self.kind!r}")

    def describe(self) -> str:
        if self.reason:
            return f"{self.kind}({self.reason})"
        return self.kind


def classify_error(exc: BaseException) -> Tuple[str, str]:
    """Map an exception to its ``(taxonomy, detail)`` pair.

    Injected faults carry their own taxonomy (the site declares what it
    simulates) so drills classify identically to the real failure.
    """
    detail = f"{type(exc).__name__}: {exc}"
    taxonomy = getattr(exc, "taxonomy", None)
    if taxonomy is not None:
        return taxonomy, detail
    from repro.frontend.errors import GoPyError

    if isinstance(exc, GoPyError):
        return ERR_COMPILE, detail
    if isinstance(exc, OSError):
        return ERR_IO, detail
    return ERR_INTERNAL, detail

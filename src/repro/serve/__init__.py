"""The verified serving plane.

An asyncio UDP+TCP authoritative server (:class:`ZoneServer`) answering
real DNS packets from an immutable :class:`ServingSnapshot`, behind a
verify-then-publish gate (:class:`PublishGate`): a zone delta only
hot-swaps into the serving snapshot after it re-verifies through
:class:`~repro.incremental.IncrementalVerifier`; BUG/UNKNOWN/ERROR holds
the old snapshot and raises a health alarm. Operational hardening —
per-client token-bucket rate limiting, retry/backoff zone reloading, a
JSON status channel, differential self-checking of live traffic — lives
in the sibling modules.

Entry points: ``repro serve`` (CLI), :meth:`repro.Session.serve` (API),
or construct :class:`ZoneServer` directly::

    server = ZoneServer(zone, "verified", port=5353)
    await server.start()
    result = await server.publish(new_zone)   # gated: held unless VERIFIED
"""

from repro.serve.degrade import LoadSignals, OverloadController, Rung
from repro.serve.gate import PublishGate, PublishResult
from repro.serve.journal import JournalError, JournalRecord, PublishJournal
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import ClientRateLimiter, TokenBucket
from repro.serve.reload import ZoneReloader
from repro.serve.selfcheck import SelfChecker
from repro.serve.server import RecoveryError, ZoneServer
from repro.serve.snapshot import (
    ResolveError,
    ServingSnapshot,
    build_snapshot,
    encode_query_name,
)

__all__ = [
    "ClientRateLimiter",
    "JournalError",
    "JournalRecord",
    "LoadSignals",
    "OverloadController",
    "PublishGate",
    "PublishJournal",
    "PublishResult",
    "RecoveryError",
    "ResolveError",
    "Rung",
    "SelfChecker",
    "ServerMetrics",
    "ServingSnapshot",
    "TokenBucket",
    "ZoneReloader",
    "ZoneServer",
    "build_snapshot",
    "encode_query_name",
]

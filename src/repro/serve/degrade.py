"""Graceful degradation under overload: a five-rung ladder with hysteresis.

A server that verifies every zone change is still only as trustworthy as
its behaviour at saturation — an overloaded event loop answers *nobody*
correctly. :class:`OverloadController` watches cheap load signals (the
sliding-window qps from :class:`~repro.serve.metrics.ServerMetrics`,
in-flight TCP connections, recent SERVFAIL rate) and walks the serving
path down a ladder of progressively cheaper behaviours:

``NORMAL``
    full service.
``SHED_SELFCHECK``
    differential self-check sampling is suspended — the optional
    background load goes first, client-visible behaviour is untouched.
``TRUNCATE``
    UDP queries get a header+question reply with TC=1 (RFC 1035 4.2.1),
    pushing well-behaved clients onto TCP where the kernel's accept queue
    provides back-pressure the datagram socket cannot. Building the
    truncated reply skips the whole resolve path (~40µs → ~2µs).
``SERVFAIL_SHED``
    the lowest-priority clients (a stable hash of the client address —
    deterministic, so one client flaps between polls rather than all of
    them) get a header-only SERVFAIL; the rest still get truncated or
    full service.
``DROP``
    queries are dropped unanswered. The transport still drains the
    socket, so the kernel buffer cannot wedge.

Escalation is immediate (overload is *now*); de-escalation is hysteretic:
pressure must stay below the rung's exit threshold — strictly less than
its entry threshold — for ``hold_seconds`` before the controller steps
down one rung. Every transition is counted and the full state is exposed
on the JSON status channel via :meth:`OverloadController.as_dict`.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

# -- the ladder --------------------------------------------------------------

NORMAL = 0
SHED_SELFCHECK = 1
TRUNCATE = 2
SERVFAIL_SHED = 3
DROP = 4

LEVEL_NAMES: Tuple[str, ...] = (
    "NORMAL",
    "SHED_SELFCHECK",
    "TRUNCATE",
    "SERVFAIL_SHED",
    "DROP",
)


@dataclass(frozen=True)
class Rung:
    """One degradation level and its pressure thresholds.

    ``enter`` is the pressure at which the controller escalates *to* this
    level; ``exit`` (< enter) is the pressure it must stay below for the
    hold period before stepping back down *from* it.
    """

    level: int
    enter: float
    exit: float

    def __post_init__(self):
        if not self.exit < self.enter:
            raise ValueError(
                f"rung {LEVEL_NAMES[self.level]}: exit threshold "
                f"{self.exit} must be below enter threshold {self.enter}"
            )


#: Pressure 1.0 == running exactly at configured capacity. Self-check
#: sampling goes at capacity, truncation at 1.5x, shedding at 2.5x and
#: the floor drops out at 4x.
DEFAULT_LADDER: Tuple[Rung, ...] = (
    Rung(SHED_SELFCHECK, enter=1.0, exit=0.7),
    Rung(TRUNCATE, enter=1.5, exit=1.0),
    Rung(SERVFAIL_SHED, enter=2.5, exit=1.8),
    Rung(DROP, enter=4.0, exit=3.0),
)

#: Fraction of clients counted "lowest-priority" at SERVFAIL_SHED.
SHED_FRACTION = 0.75


def client_rank(client: str) -> float:
    """A stable rank in [0, 1) for one client address. Deterministic so a
    given client's fate is the same on every packet at a given level —
    shedding flickers per *client*, never per *packet*."""
    return (zlib.crc32(client.encode("utf-8", "replace")) % 1024) / 1024.0


@dataclass(frozen=True)
class LoadSignals:
    """One observation of the signals the controller watches."""

    qps: float = 0.0
    inflight: int = 0
    error_rate: float = 0.0  # recent SERVFAIL fraction, [0, 1]


class OverloadController:
    """Walk the degradation ladder from load signals, with hysteresis."""

    def __init__(
        self,
        qps_capacity: float,
        inflight_capacity: int = 64,
        error_capacity: float = 0.5,
        ladder: Tuple[Rung, ...] = DEFAULT_LADDER,
        hold_seconds: float = 1.0,
        interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ):
        if qps_capacity <= 0:
            raise ValueError("qps_capacity must be positive")
        self.qps_capacity = float(qps_capacity)
        self.inflight_capacity = int(inflight_capacity)
        self.error_capacity = float(error_capacity)
        self.ladder = tuple(sorted(ladder, key=lambda r: r.level))
        if [r.level for r in self.ladder] != list(range(1, len(self.ladder) + 1)):
            raise ValueError("ladder must cover levels 1..N contiguously")
        self.hold_seconds = hold_seconds
        self.interval = interval
        self._clock = clock
        self.level = NORMAL
        self.pressure = 0.0
        self._below_exit_since: Optional[float] = None
        self._last_tick = clock() - interval  # first tick evaluates
        self.transitions: Dict[str, int] = {}
        self.escalations = 0
        self.de_escalations = 0

    # -- level math ----------------------------------------------------------

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]

    def compute_pressure(self, signals: LoadSignals) -> float:
        """The worst of the normalized signals: pressure 1.0 means some
        resource is running exactly at capacity."""
        return max(
            signals.qps / self.qps_capacity,
            signals.inflight / max(self.inflight_capacity, 1),
            signals.error_rate / self.error_capacity,
        )

    def _target_up(self, pressure: float) -> int:
        """Highest rung whose entry threshold the pressure has crossed."""
        target = NORMAL
        for rung in self.ladder:
            if pressure >= rung.enter:
                target = rung.level
        return target

    def update(self, signals: LoadSignals) -> int:
        """Feed one observation; returns the (possibly new) level.

        Escalation jumps straight to the highest rung the pressure
        justifies. De-escalation steps down one rung at a time, and only
        after the pressure has stayed below the current rung's exit
        threshold for ``hold_seconds`` continuously.
        """
        now = self._clock()
        self.pressure = pressure = self.compute_pressure(signals)
        target = self._target_up(pressure)
        if target > self.level:
            self._transition(self.level, target)
            self._below_exit_since = None
            return self.level
        if self.level == NORMAL:
            return self.level
        rung = self.ladder[self.level - 1]
        if pressure >= rung.exit:
            self._below_exit_since = None  # hysteresis clock resets
            return self.level
        if self._below_exit_since is None:
            self._below_exit_since = now
        if now - self._below_exit_since >= self.hold_seconds:
            self._transition(self.level, self.level - 1)
            self._below_exit_since = now if self.level > NORMAL else None
        return self.level

    def _transition(self, old: int, new: int) -> None:
        key = f"{LEVEL_NAMES[old]}->{LEVEL_NAMES[new]}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if new > old:
            self.escalations += 1
        else:
            self.de_escalations += 1
        self.level = new

    # -- per-query entry points ---------------------------------------------

    def tick(self, metrics, inflight: int = 0) -> int:
        """Rate-limited update from live server state (the per-query hook:
        at most one pressure evaluation per ``interval`` seconds)."""
        now = self._clock()
        if now - self._last_tick < self.interval:
            return self.level
        self._last_tick = now
        return self.update(LoadSignals(
            qps=metrics.qps(),
            inflight=inflight,
            error_rate=metrics.recent_error_rate(),
        ))

    def should_shed(self, client: str) -> bool:
        """At SERVFAIL_SHED, is this client in the shed set?"""
        return client_rank(client) < SHED_FRACTION

    # -- status --------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "level_name": self.level_name,
            "pressure": round(self.pressure, 4),
            "qps_capacity": self.qps_capacity,
            "inflight_capacity": self.inflight_capacity,
            "escalations": self.escalations,
            "de_escalations": self.de_escalations,
            "transitions": dict(sorted(self.transitions.items())),
        }


def ladder_from_levels(levels: List[Tuple[int, float, float]]) -> Tuple[Rung, ...]:
    """Build a ladder from (level, enter, exit) triples (tests, tuning)."""
    return tuple(Rung(level, enter, exit) for level, enter, exit in levels)

"""The verify-then-publish gate between zone updates and the serving plane.

Every zone delta funnels through :meth:`PublishGate.submit`: the candidate
zone is re-verified by an :class:`~repro.incremental.IncrementalVerifier`
(so unchanged query-space partitions replay from the summary cache and the
gate's latency tracks the *delta*, not the zone), and the typed verdict
decides publication:

- ``VERIFIED``  — a fresh :class:`~repro.serve.snapshot.ServingSnapshot`
  is built and swapped in atomically; in-flight queries finish on the old
  snapshot, new queries see the new one, nothing drops.
- ``BUG`` / ``UNKNOWN`` / ``ERROR`` — the old snapshot keeps serving, the
  candidate is *held*, and a health alarm latches (visible on the status
  channel) until a later submission publishes cleanly.

The verifier deliberately tracks the latest *submitted* zone rather than
the latest *published* one: after a held delta, the next submission is
verified as a delta against what the operator most recently pushed, which
is both cheaper (closure-level invalidation) and what an operator fixing a
bad push expects. The serving snapshot only ever advances on VERIFIED.

``submit`` is synchronous and CPU-bound (it runs the prover); the asyncio
server calls it via a worker thread so the event loop keeps answering
queries mid-verification. Concurrent submissions (API publish racing the
file reloader) are serialized by an internal lock — the gate is one
verifier and one snapshot lineage, so there is nothing to parallelize.
The snapshot swap itself is a single attribute assignment, atomic under
the GIL.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.dns.zone import Zone
from repro.incremental.cache import SummaryCache
from repro.incremental.digest import zone_digest
from repro.incremental.engine import IncrementalVerifier
from repro.resilience import faults
from repro.resilience import verdicts as verdicts_mod
from repro.serve.journal import JournalError, JournalRecord, PublishJournal
from repro.serve.snapshot import ServingSnapshot, build_snapshot

#: How many publish/hold outcomes the gate remembers for the status feed.
HISTORY_LIMIT = 32


@dataclass(frozen=True)
class PublishResult:
    """The outcome of one gated submission."""

    accepted: bool
    verdict: str
    reason: Optional[str]
    records_changed: int
    bugs: int
    verify_seconds: float
    publish_seconds: float  # submit -> swap (or hold) wall time
    sequence: int  # snapshot sequence now serving
    snapshot_digest: str  # digest now serving
    error: Optional[str] = None

    def describe(self) -> str:
        action = "published" if self.accepted else "HELD"
        extra = f" ({self.reason})" if self.reason else ""
        return (
            f"{action}: {self.verdict}{extra}, {self.records_changed} record(s) "
            f"changed, verify {self.verify_seconds:.2f}s, now serving "
            f"#{self.sequence} {self.snapshot_digest[:12]}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "verdict": self.verdict,
            "reason": self.reason,
            "records_changed": self.records_changed,
            "bugs": self.bugs,
            "verify_seconds": round(self.verify_seconds, 6),
            "publish_seconds": round(self.publish_seconds, 6),
            "sequence": self.sequence,
            "snapshot_digest": self.snapshot_digest,
            "error": self.error,
        }


class PublishGate:
    """Owns the currently-published snapshot and the verifier gating it."""

    def __init__(
        self,
        snapshot: ServingSnapshot,
        cache: Optional[SummaryCache] = None,
        options=None,
        workers: Optional[int] = None,
        journal: Optional[PublishJournal] = None,
        clock=time.monotonic,
    ):
        self.snapshot = snapshot
        self._clock = clock
        self._verifier = IncrementalVerifier(
            snapshot.zone,
            snapshot.version,
            cache=cache if cache is not None else SummaryCache(memory_only=True),
            workers=workers,
            options=options,
        )
        self.journal = journal
        self.publishes = 0
        self.holds = 0
        self.errors = 0
        self.publishes_coalesced = 0
        self.journal_failures = 0
        #: Latched on hold, cleared on the next successful publish.
        self.alarm: Optional[Dict[str, object]] = None
        self.last_result: Optional[PublishResult] = None
        self.history: Deque[Dict[str, object]] = deque(maxlen=HISTORY_LIMIT)
        #: Submissions arrive from multiple worker threads (ZoneServer.publish
        #: runs in asyncio.to_thread, ZoneReloader.run in another); the gate
        #: is inherently sequential — one verifier, one snapshot lineage — so
        #: serialize them rather than racing on shared verifier state.
        self._lock = threading.Lock()
        #: Coalescing slot: the newest zone waiting for the lock, so a
        #: burst of submissions verifies only the latest content.
        self._queue_lock = threading.Lock()
        self._queued: Optional[tuple] = None

    # -- gating -------------------------------------------------------------

    def bootstrap(self) -> PublishResult:
        """Verify the zone the gate booted with (no delta, no swap on
        success — the snapshot is already serving). A failing bootstrap
        holds nothing but latches the alarm."""
        return self._gate(self.snapshot.zone, bootstrap=True, source="bootstrap")

    def submit(self, new_zone: Zone, source: str = "publish") -> PublishResult:
        """Verify ``new_zone`` and publish it iff the verdict is VERIFIED."""
        return self._gate(new_zone, bootstrap=False, source=source)

    def submit_coalescing(self, new_zone: Zone,
                          source: str = "publish") -> Optional[PublishResult]:
        """Like :meth:`submit`, but a delta superseded while waiting for
        an in-flight verification is dropped unverified: only the newest
        queued content runs the prover. Returns ``None`` when this
        submission was coalesced away (the superseding caller verifies
        it — counted in ``publishes_coalesced``). A burst of zone-file
        writes therefore costs one verification, not a backlog of
        obsolete ones."""
        token = object()
        with self._queue_lock:
            if self._queued is not None:
                # The delta already waiting is now stale: ours replaces it.
                self.publishes_coalesced += 1
            self._queued = (new_zone, source, token)
        with self._lock:
            with self._queue_lock:
                if self._queued is None or self._queued[2] is not token:
                    # Superseded while we waited; the newer caller verifies.
                    return None
                zone, src, _ = self._queued
                self._queued = None
            return self._gate_locked(zone, bootstrap=False, source=src)

    def _gate(self, zone: Zone, bootstrap: bool, source: str) -> PublishResult:
        with self._lock:
            return self._gate_locked(zone, bootstrap, source)

    def _gate_locked(self, zone: Zone, bootstrap: bool,
                     source: str) -> PublishResult:
        started = time.perf_counter()
        error = None
        bugs = 0
        reason = None
        records_changed = 0
        try:
            # Simulates the prover itself blowing up mid-gate (a worker
            # crash, an assertion in the verifier): the candidate must be
            # held with a typed ERROR, never published on faith.
            faults.maybe_raise(faults.SITE_SERVE_GATE_VERIFY)
            if bootstrap:
                outcome = self._verifier.verify_current()
            else:
                outcome = self._verifier.diff_to(zone)
            verdict = outcome.result.verdict
            reason = outcome.result.unknown_reason
            bugs = len(outcome.result.bugs)
            records_changed = outcome.reuse.records_changed
            verify_seconds = outcome.result.elapsed_seconds
        except Exception as exc:  # injected faults, cache IO, compile errors
            taxonomy, detail = verdicts_mod.classify_error(exc)
            verdict = verdicts_mod.ERROR
            reason = taxonomy
            error = detail
            verify_seconds = time.perf_counter() - started
            self.errors += 1

        accepted = verdict == verdicts_mod.VERIFIED
        if accepted and not bootstrap:
            try:
                # Journal-before-swap: the durable record must exist
                # before any query can be answered from the new snapshot,
                # so a crash at any instruction leaves the journal head
                # at-or-ahead-of the serving state, never behind it.
                self._journal_publish(zone, verdict, source,
                                      self.snapshot.sequence + 1)
                faults.maybe_raise(faults.SITE_SERVE_SNAPSHOT_SWAP)
                self.snapshot = build_snapshot(
                    zone,
                    self.snapshot.version,
                    sequence=self.snapshot.sequence + 1,
                    clock=self._clock,
                )
            except Exception as exc:  # journal IO, snapshot build/swap
                taxonomy, detail = verdicts_mod.classify_error(exc)
                accepted = False
                verdict = verdicts_mod.ERROR
                reason = taxonomy
                error = detail
                self.errors += 1
        if accepted:
            self.publishes += 0 if bootstrap else 1
            self.alarm = None
        else:
            self.holds += 0 if bootstrap else 1
            self.alarm = {
                "verdict": verdict,
                "reason": reason,
                "bugs": bugs,
                "error": error,
                "at": self._clock(),
                "bootstrap": bootstrap,
            }
        result = PublishResult(
            accepted=accepted,
            verdict=verdict,
            reason=reason,
            records_changed=records_changed,
            bugs=bugs,
            verify_seconds=verify_seconds,
            publish_seconds=time.perf_counter() - started,
            sequence=self.snapshot.sequence,
            snapshot_digest=self.snapshot.digest,
            error=error,
        )
        self.last_result = result
        self.history.append(result.to_json())
        return result

    # -- the journal --------------------------------------------------------

    def _journal_publish(self, zone: Zone, verdict: str, source: str,
                         sequence: int) -> None:
        """Durably record an imminent publish. A failed append raises
        (the caller holds the publish): serving a zone the journal does
        not know about would break crash recovery's core invariant."""
        if self.journal is None:
            return
        record = JournalRecord(
            sequence=sequence,
            digest=zone_digest(zone),
            verdict=verdict,
            source=source,
            at=self._clock(),
        )
        try:
            self.journal.append(record)
        except JournalError:
            self.journal_failures += 1
            raise

    def journal_bootstrap(self, source: str = "bootstrap") -> None:
        """Record the currently-serving snapshot (boot, or recovery after
        a journal/zone mismatch) so the journal covers sequence zero."""
        if self.journal is None:
            return
        self._journal_publish(
            self.snapshot.zone,
            verdicts_mod.VERIFIED,
            source,
            self.snapshot.sequence,
        )

    # -- status -------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        last = self.last_result
        payload = {
            "publishes": self.publishes,
            "holds": self.holds,
            "errors": self.errors,
            "publishes_coalesced": self.publishes_coalesced,
            "journal_failures": self.journal_failures,
            "alarm": dict(self.alarm) if self.alarm else None,
            "last_verdict": last.verdict if last else None,
            "last_reason": last.reason if last else None,
            "serving_sequence": self.snapshot.sequence,
            "serving_digest": self.snapshot.digest,
        }
        if self.journal is not None:
            payload["journal"] = self.journal.as_dict()
        return payload

"""The verify-then-publish gate between zone updates and the serving plane.

Every zone delta funnels through :meth:`PublishGate.submit`: the candidate
zone is re-verified by an :class:`~repro.incremental.IncrementalVerifier`
(so unchanged query-space partitions replay from the summary cache and the
gate's latency tracks the *delta*, not the zone), and the typed verdict
decides publication:

- ``VERIFIED``  — a fresh :class:`~repro.serve.snapshot.ServingSnapshot`
  is built and swapped in atomically; in-flight queries finish on the old
  snapshot, new queries see the new one, nothing drops.
- ``BUG`` / ``UNKNOWN`` / ``ERROR`` — the old snapshot keeps serving, the
  candidate is *held*, and a health alarm latches (visible on the status
  channel) until a later submission publishes cleanly.

The verifier deliberately tracks the latest *submitted* zone rather than
the latest *published* one: after a held delta, the next submission is
verified as a delta against what the operator most recently pushed, which
is both cheaper (closure-level invalidation) and what an operator fixing a
bad push expects. The serving snapshot only ever advances on VERIFIED.

``submit`` is synchronous and CPU-bound (it runs the prover); the asyncio
server calls it via a worker thread so the event loop keeps answering
queries mid-verification. Concurrent submissions (API publish racing the
file reloader) are serialized by an internal lock — the gate is one
verifier and one snapshot lineage, so there is nothing to parallelize.
The snapshot swap itself is a single attribute assignment, atomic under
the GIL.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.dns.zone import Zone
from repro.incremental.cache import SummaryCache
from repro.incremental.engine import IncrementalVerifier
from repro.resilience import verdicts as verdicts_mod
from repro.serve.snapshot import ServingSnapshot, build_snapshot

#: How many publish/hold outcomes the gate remembers for the status feed.
HISTORY_LIMIT = 32


@dataclass(frozen=True)
class PublishResult:
    """The outcome of one gated submission."""

    accepted: bool
    verdict: str
    reason: Optional[str]
    records_changed: int
    bugs: int
    verify_seconds: float
    publish_seconds: float  # submit -> swap (or hold) wall time
    sequence: int  # snapshot sequence now serving
    snapshot_digest: str  # digest now serving
    error: Optional[str] = None

    def describe(self) -> str:
        action = "published" if self.accepted else "HELD"
        extra = f" ({self.reason})" if self.reason else ""
        return (
            f"{action}: {self.verdict}{extra}, {self.records_changed} record(s) "
            f"changed, verify {self.verify_seconds:.2f}s, now serving "
            f"#{self.sequence} {self.snapshot_digest[:12]}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "verdict": self.verdict,
            "reason": self.reason,
            "records_changed": self.records_changed,
            "bugs": self.bugs,
            "verify_seconds": round(self.verify_seconds, 6),
            "publish_seconds": round(self.publish_seconds, 6),
            "sequence": self.sequence,
            "snapshot_digest": self.snapshot_digest,
            "error": self.error,
        }


class PublishGate:
    """Owns the currently-published snapshot and the verifier gating it."""

    def __init__(
        self,
        snapshot: ServingSnapshot,
        cache: Optional[SummaryCache] = None,
        options=None,
        workers: Optional[int] = None,
        clock=time.monotonic,
    ):
        self.snapshot = snapshot
        self._clock = clock
        self._verifier = IncrementalVerifier(
            snapshot.zone,
            snapshot.version,
            cache=cache if cache is not None else SummaryCache(memory_only=True),
            workers=workers,
            options=options,
        )
        self.publishes = 0
        self.holds = 0
        self.errors = 0
        #: Latched on hold, cleared on the next successful publish.
        self.alarm: Optional[Dict[str, object]] = None
        self.last_result: Optional[PublishResult] = None
        self.history: Deque[Dict[str, object]] = deque(maxlen=HISTORY_LIMIT)
        #: Submissions arrive from multiple worker threads (ZoneServer.publish
        #: runs in asyncio.to_thread, ZoneReloader.run in another); the gate
        #: is inherently sequential — one verifier, one snapshot lineage — so
        #: serialize them rather than racing on shared verifier state.
        self._lock = threading.Lock()

    # -- gating -------------------------------------------------------------

    def bootstrap(self) -> PublishResult:
        """Verify the zone the gate booted with (no delta, no swap on
        success — the snapshot is already serving). A failing bootstrap
        holds nothing but latches the alarm."""
        return self._gate(self.snapshot.zone, bootstrap=True)

    def submit(self, new_zone: Zone) -> PublishResult:
        """Verify ``new_zone`` and publish it iff the verdict is VERIFIED."""
        return self._gate(new_zone, bootstrap=False)

    def _gate(self, zone: Zone, bootstrap: bool) -> PublishResult:
        with self._lock:
            return self._gate_locked(zone, bootstrap)

    def _gate_locked(self, zone: Zone, bootstrap: bool) -> PublishResult:
        started = time.perf_counter()
        error = None
        bugs = 0
        reason = None
        records_changed = 0
        try:
            if bootstrap:
                outcome = self._verifier.verify_current()
            else:
                outcome = self._verifier.diff_to(zone)
            verdict = outcome.result.verdict
            reason = outcome.result.unknown_reason
            bugs = len(outcome.result.bugs)
            records_changed = outcome.reuse.records_changed
            verify_seconds = outcome.result.elapsed_seconds
        except Exception as exc:  # injected faults, cache IO, compile errors
            taxonomy, detail = verdicts_mod.classify_error(exc)
            verdict = verdicts_mod.ERROR
            reason = taxonomy
            error = detail
            verify_seconds = time.perf_counter() - started
            self.errors += 1

        accepted = verdict == verdicts_mod.VERIFIED
        if accepted and not bootstrap:
            self.snapshot = build_snapshot(
                zone,
                self.snapshot.version,
                sequence=self.snapshot.sequence + 1,
                clock=self._clock,
            )
        if accepted:
            self.publishes += 0 if bootstrap else 1
            self.alarm = None
        else:
            self.holds += 0 if bootstrap else 1
            self.alarm = {
                "verdict": verdict,
                "reason": reason,
                "bugs": bugs,
                "error": error,
                "at": self._clock(),
                "bootstrap": bootstrap,
            }
        result = PublishResult(
            accepted=accepted,
            verdict=verdict,
            reason=reason,
            records_changed=records_changed,
            bugs=bugs,
            verify_seconds=verify_seconds,
            publish_seconds=time.perf_counter() - started,
            sequence=self.snapshot.sequence,
            snapshot_digest=self.snapshot.digest,
            error=error,
        )
        self.last_result = result
        self.history.append(result.to_json())
        return result

    # -- status -------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        last = self.last_result
        return {
            "publishes": self.publishes,
            "holds": self.holds,
            "errors": self.errors,
            "alarm": dict(self.alarm) if self.alarm else None,
            "last_verdict": last.verdict if last else None,
            "last_reason": last.reason if last else None,
            "serving_sequence": self.snapshot.sequence,
            "serving_digest": self.snapshot.digest,
        }

"""The crash-safe publish journal: fsync'd intent records, replayed on boot.

The publish gate's correctness story — *only VERIFIED zones serve* — has
to survive the process dying at any instruction. The journal makes the
publish sequence durable: **before** each snapshot swap the gate appends
one JSON line (sequence, zone digest, verdict, source) and fsyncs it;
only then does the swap happen. On boot :meth:`PublishJournal.head`
replays the file — tolerating a torn final line, which is exactly what a
crash mid-append leaves behind — and the server compares the journal
head against the zone it is about to serve:

- **digests agree** — the on-disk zone is the last VERIFIED publish; the
  server adopts the journaled sequence number and serves immediately.
  SIGKILL-then-restart is bit-identical to never having crashed.
- **digests disagree** — the zone file moved past (or never reached) the
  journal head, so its verification status is unknown; the server
  *refuses to serve it* until a fresh bootstrap verification passes, and
  journals that verification as a new record.

Append ordering gives the recovery invariant: a journaled record may
describe a swap that never happened (crash between append and swap), but
a swap can never have happened without its record — so the journal head
is always an upper bound on what was served, and everything it names was
VERIFIED first.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.resilience import faults

#: Journal format version, first field of every record.
JOURNAL_FORMAT = 1


@dataclass(frozen=True)
class JournalRecord:
    """One durable publish: the state the serving plane may legally reach."""

    sequence: int
    digest: str
    verdict: str
    source: str  # "publish" | "reload:<path>" | "bootstrap" | "recovery"
    at: float = 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "format": JOURNAL_FORMAT,
            "sequence": self.sequence,
            "digest": self.digest,
            "verdict": self.verdict,
            "source": self.source,
            "at": self.at,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JournalRecord":
        return cls(
            sequence=int(payload["sequence"]),
            digest=str(payload["digest"]),
            verdict=str(payload["verdict"]),
            source=str(payload.get("source", "")),
            at=float(payload.get("at", 0.0)),
        )


class JournalError(RuntimeError):
    """The journal could not be appended to (the publish must be held:
    without a durable record the crash-safety invariant is void)."""

    #: classify_error honours this: a journal failure is an IO failure.
    taxonomy = "io"


class PublishJournal:
    """Append-only JSONL journal of VERIFIED publishes, fsync'd per record."""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        self.appends = 0
        self.append_failures = 0
        self.torn_records_skipped = 0

    # -- writing -------------------------------------------------------------

    def _tail_is_torn(self) -> bool:
        """True when the file ends mid-line — the signature of a crash
        (or injected fault) between a partial write and its newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:  # missing or empty file: nothing to seal
            return False

    def append(self, record: JournalRecord) -> None:
        """Durably append one record; raises :class:`JournalError` if the
        record cannot be made durable (the caller must then *hold* the
        publish — serving state must never run ahead of the journal).

        The ``serve.journal.write`` fault site simulates the worst crash
        shape: half the record reaches the disk, then the write dies —
        which is also what SIGKILL mid-append leaves. Replay must shrug
        off that torn tail.
        """
        line = json.dumps(record.to_json(), sort_keys=True)
        try:
            with open(self.path, "a", encoding="utf-8") as handle:
                if self._tail_is_torn():
                    # Seal a torn tail (prior crash mid-append) onto its
                    # own line, or this record would be glued to the
                    # garbage and lost with it on replay.
                    handle.write("\n")
                if faults.should_fire(faults.SITE_SERVE_JOURNAL_WRITE):
                    # Simulated torn write: half a line, no newline, and
                    # the OSError the real failure would raise.
                    handle.write(line[: max(1, len(line) // 2)])
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise OSError(
                        f"injected fault at site "
                        f"{faults.SITE_SERVE_JOURNAL_WRITE!r}"
                    )
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self.append_failures += 1
            raise JournalError(f"journal append failed: {exc}") from exc
        self.appends += 1

    # -- replay --------------------------------------------------------------

    def replay(self) -> List[JournalRecord]:
        """All decodable records in append order. Undecodable lines (a
        torn final append, bit rot) are skipped and counted — recovery
        proceeds from the last *good* record, never aborts."""
        records: List[JournalRecord] = []
        skipped = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                records.append(JournalRecord.from_json(payload))
            except (ValueError, KeyError, TypeError):
                skipped += 1
        # The count reflects the file's current state (idempotent across
        # repeated replays, e.g. head() called from the status channel).
        self.torn_records_skipped = skipped
        return records

    def head(self) -> Optional[JournalRecord]:
        """The most recent durable record, or None for a fresh journal."""
        records = self.replay()
        return records[-1] if records else None

    def as_dict(self) -> Dict[str, object]:
        head = self.head()
        return {
            "path": self.path,
            "appends": self.appends,
            "append_failures": self.append_failures,
            "torn_records_skipped": self.torn_records_skipped,
            "head": head.to_json() if head else None,
        }

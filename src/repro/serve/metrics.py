"""Serving-plane counters: queries, drops, rcodes, and a qps window.

Plain integer counters (atomic enough under the GIL for the single-loop
asyncio server; the only cross-thread writer is the publish gate, which
touches its own fields). ``qps`` is computed over a sliding window of
recent query timestamps so the status channel reports current load, not
lifetime average. The clock is injectable for deterministic tests.

Conservation
------------

Every query that enters :meth:`count_query` leaves through exactly one
exit counter: a built response (``responses``, which includes truncated
and shed replies — the client got *something*) or one of the dropped
buckets (malformed, rate-limited, overload-shed, injected fault).
:meth:`conservation` checks ``queries == responses + dropped``; the
chaos drill asserts it after every soak, so a new serving branch that
forgets its counter is caught by CI, not by an operator's dashboard
silently leaking queries. (``send_failures`` is deliberately outside the
equation: the reply was built and counted, only delivery failed.
TCP frames lost to a read fault never reached the query path, so they
are conserved at zero on both sides.)
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict

#: Sliding-window length for the qps figure, seconds.
QPS_WINDOW_SECONDS = 5.0

#: Sample size for the recent-SERVFAIL-rate overload signal.
ERROR_RATE_WINDOW = 128


class ServerMetrics:
    """Counters for one :class:`~repro.serve.server.ZoneServer`."""

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 window: float = QPS_WINDOW_SECONDS):
        self._clock = clock
        self._window = window
        self._recent: Deque[float] = deque()
        self._recent_errors: Deque[bool] = deque(maxlen=ERROR_RATE_WINDOW)
        self.started_at = clock()
        self.queries_udp = 0
        self.queries_tcp = 0
        self.responses = 0
        self.noerror = 0
        self.nxdomain = 0
        self.formerr = 0
        self.servfail = 0
        self.engine_crashes = 0
        self.decode_failures = 0
        self.encode_failures = 0
        self.dropped_malformed = 0
        self.dropped_ratelimit = 0
        self.dropped_overload = 0
        self.dropped_fault = 0
        self.send_failures = 0
        self.truncated = 0
        self.shed_servfail = 0
        self.selfcheck_suspended = 0
        self.tcp_connections = 0
        self.tcp_disconnects = 0
        self.tcp_idle_timeouts = 0
        self.tcp_read_faults = 0

    # -- recording ----------------------------------------------------------

    def count_query(self, transport: str) -> None:
        if transport == "tcp":
            self.queries_tcp += 1
        else:
            self.queries_udp += 1
        now = self._clock()
        self._recent.append(now)
        floor = now - self._window
        while self._recent and self._recent[0] < floor:
            self._recent.popleft()

    def count_rcode(self, rcode_value: int) -> None:
        self.responses += 1
        self._recent_errors.append(rcode_value == 2)
        if rcode_value == 0:
            self.noerror += 1
        elif rcode_value == 3:
            self.nxdomain += 1
        elif rcode_value == 2:
            self.servfail += 1
        elif rcode_value == 1:
            self.formerr += 1

    # -- reading ------------------------------------------------------------

    @property
    def queries(self) -> int:
        return self.queries_udp + self.queries_tcp

    @property
    def dropped(self) -> int:
        """Queries that entered the path and left without a reply."""
        return (
            self.dropped_malformed
            + self.dropped_ratelimit
            + self.dropped_overload
            + self.dropped_fault
        )

    def qps(self) -> float:
        """Queries per second over the sliding window. Divides by the
        full window length, not the observed span: with one or two fresh
        samples the span is near zero and count/span would explode to
        absurd rates (and slam the overload ladder to DROP on the first
        packet of a quiet second)."""
        now = self._clock()
        floor = now - self._window
        while self._recent and self._recent[0] < floor:
            self._recent.popleft()
        return len(self._recent) / self._window

    def recent_error_rate(self) -> float:
        """SERVFAIL fraction over the last ``ERROR_RATE_WINDOW`` replies
        (an overload-controller input: a saturated or crashing engine
        shows up here before it shows up in qps)."""
        if not self._recent_errors:
            return 0.0
        return sum(self._recent_errors) / len(self._recent_errors)

    def conservation(self) -> Dict[str, object]:
        """The queries-in == replies+drops-out ledger, with its verdict."""
        received = self.queries
        accounted = self.responses + self.dropped
        return {
            "received": received,
            "answered": self.responses,
            "dropped": self.dropped,
            "accounted": accounted,
            "conserved": received == accounted,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "queries_udp": self.queries_udp,
            "queries_tcp": self.queries_tcp,
            "responses": self.responses,
            "noerror": self.noerror,
            "nxdomain": self.nxdomain,
            "formerr": self.formerr,
            "servfail": self.servfail,
            "engine_crashes": self.engine_crashes,
            "decode_failures": self.decode_failures,
            "encode_failures": self.encode_failures,
            "dropped_malformed": self.dropped_malformed,
            "dropped_ratelimit": self.dropped_ratelimit,
            "dropped_overload": self.dropped_overload,
            "dropped_fault": self.dropped_fault,
            "send_failures": self.send_failures,
            "truncated": self.truncated,
            "shed_servfail": self.shed_servfail,
            "selfcheck_suspended": self.selfcheck_suspended,
            "tcp_connections": self.tcp_connections,
            "tcp_disconnects": self.tcp_disconnects,
            "tcp_idle_timeouts": self.tcp_idle_timeouts,
            "tcp_read_faults": self.tcp_read_faults,
            "conservation": self.conservation(),
            "qps": round(self.qps(), 3),
            "uptime_seconds": round(self._clock() - self.started_at, 3),
        }

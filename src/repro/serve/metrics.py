"""Serving-plane counters: queries, drops, rcodes, and a qps window.

Plain integer counters (atomic enough under the GIL for the single-loop
asyncio server; the only cross-thread writer is the publish gate, which
touches its own fields). ``qps`` is computed over a sliding window of
recent query timestamps so the status channel reports current load, not
lifetime average. The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict

#: Sliding-window length for the qps figure, seconds.
QPS_WINDOW_SECONDS = 5.0


class ServerMetrics:
    """Counters for one :class:`~repro.serve.server.ZoneServer`."""

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 window: float = QPS_WINDOW_SECONDS):
        self._clock = clock
        self._window = window
        self._recent: Deque[float] = deque()
        self.started_at = clock()
        self.queries_udp = 0
        self.queries_tcp = 0
        self.responses = 0
        self.noerror = 0
        self.nxdomain = 0
        self.formerr = 0
        self.servfail = 0
        self.engine_crashes = 0
        self.decode_failures = 0
        self.encode_failures = 0
        self.dropped_malformed = 0
        self.dropped_ratelimit = 0
        self.tcp_connections = 0
        self.tcp_disconnects = 0

    # -- recording ----------------------------------------------------------

    def count_query(self, transport: str) -> None:
        if transport == "tcp":
            self.queries_tcp += 1
        else:
            self.queries_udp += 1
        now = self._clock()
        self._recent.append(now)
        floor = now - self._window
        while self._recent and self._recent[0] < floor:
            self._recent.popleft()

    def count_rcode(self, rcode_value: int) -> None:
        self.responses += 1
        if rcode_value == 0:
            self.noerror += 1
        elif rcode_value == 3:
            self.nxdomain += 1
        elif rcode_value == 2:
            self.servfail += 1
        elif rcode_value == 1:
            self.formerr += 1

    # -- reading ------------------------------------------------------------

    @property
    def queries(self) -> int:
        return self.queries_udp + self.queries_tcp

    def qps(self) -> float:
        """Queries per second over the sliding window."""
        now = self._clock()
        floor = now - self._window
        while self._recent and self._recent[0] < floor:
            self._recent.popleft()
        if not self._recent:
            return 0.0
        span = max(now - self._recent[0], 1e-9)
        return len(self._recent) / span

    def as_dict(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "queries_udp": self.queries_udp,
            "queries_tcp": self.queries_tcp,
            "responses": self.responses,
            "noerror": self.noerror,
            "nxdomain": self.nxdomain,
            "formerr": self.formerr,
            "servfail": self.servfail,
            "engine_crashes": self.engine_crashes,
            "decode_failures": self.decode_failures,
            "encode_failures": self.encode_failures,
            "dropped_malformed": self.dropped_malformed,
            "dropped_ratelimit": self.dropped_ratelimit,
            "tcp_connections": self.tcp_connections,
            "tcp_disconnects": self.tcp_disconnects,
            "qps": round(self.qps(), 3),
            "uptime_seconds": round(self._clock() - self.started_at, 3),
        }

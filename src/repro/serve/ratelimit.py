"""Token-bucket rate limiting, per client address.

Classic token bucket: each client's bucket refills at ``rate`` tokens per
second up to ``burst``; a query spends one token, and an empty bucket
means the query is dropped (counted, never answered — the cheapest
response to an abusive sender is silence). Buckets are lazily created and
the client table is capped so a spoofed-source flood cannot grow memory
without bound: when full, the stalest bucket (latest refill time furthest
in the past) is evicted.

The clock is injectable so tests advance time explicitly.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

#: Default cap on tracked clients.
MAX_CLIENTS = 4096


class TokenBucket:
    """One client's allowance."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def allow(self, now: float, cost: float = 1.0) -> bool:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class ClientRateLimiter:
    """Per-client token buckets with a bounded client table."""

    def __init__(
        self,
        rate: float,
        burst: float = None,
        max_clients: int = MAX_CLIENTS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, 2.0 * rate)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self.allowed = 0
        self.denied = 0
        self.evictions = 0

    def allow(self, client: str) -> bool:
        now = self._clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                stalest = min(self._buckets, key=lambda c: self._buckets[c].updated)
                del self._buckets[stalest]
                self.evictions += 1
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
        if bucket.allow(now):
            self.allowed += 1
            return True
        self.denied += 1
        return False

    def as_dict(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "clients": len(self._buckets),
            "allowed": self.allowed,
            "denied": self.denied,
            "evictions": self.evictions,
        }

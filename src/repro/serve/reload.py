"""Zone-file reloading into the publish gate, hardened for production IO.

:class:`ZoneReloader` tails one zone file the way the watch daemon does
(mtime+size polling) but feeds the serving plane: a changed file is read
with retry/backoff (editors and zone transfers rewrite files non-
atomically; a torn read is transient), parsed, and submitted to the
:class:`~repro.serve.gate.PublishGate` — where the verify-then-publish
rule, not the reloader, decides whether the running snapshot advances.

Failure model, reusing :mod:`repro.resilience`:

- transient ``stat``/read errors retry with exponential backoff and
  deterministic jitter (:class:`~repro.resilience.RetryPolicy`);
- consecutive failing polls trip a :class:`~repro.resilience.CircuitBreaker`;
  an open breaker stops the poll loop rather than spinning on a
  permanently broken path — the server keeps serving its last good
  snapshot either way;
- a zone that fails to *parse* counts as a failed poll (malformed input is
  operationally indistinguishable from a half-written file until it
  persists); a zone that parses but fails to *verify* is a successful poll
  whose submission the gate held — that is the gate's alarm, not the
  reloader's.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional

from repro.dns.zonefile import parse_zone_text
from repro.resilience import faults
from repro.resilience.supervise import CircuitBreaker, RetryPolicy, retry_call
from repro.serve.gate import PublishGate, PublishResult


class ZoneReloader:
    """Poll one zone file; submit changes to the publish gate."""

    def __init__(
        self,
        path: os.PathLike,
        gate: PublishGate,
        retry: Optional[RetryPolicy] = None,
        max_failures: int = 5,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.path = os.fspath(path)
        self.gate = gate
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = CircuitBreaker(max_failures=max_failures)
        self._sleep = sleep
        self._last_mtime: Optional[float] = None
        self._last_size: Optional[int] = None
        self.polls = 0
        self.reloads = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self.last_result: Optional[PublishResult] = None

    # -- one poll ------------------------------------------------------------

    def _stat_once(self):
        st = os.stat(self.path)
        return st.st_mtime, st.st_size

    def _read_once(self) -> str:
        # The serve-time analogue of `watch.read`: a torn/failed read of
        # the production zone file. retry_call absorbs a transient one;
        # persistent failures feed the breaker below.
        faults.maybe_raise(faults.SITE_SERVE_RELOAD_READ)
        with open(self.path, "r", encoding="utf-8") as handle:
            return handle.read()

    def prime(self) -> None:
        """Record the file's current identity without reloading — for a
        server that already booted from this file's contents."""
        try:
            self._last_mtime, self._last_size = self._stat_once()
        except OSError:
            pass

    def poll_once(self) -> Optional[PublishResult]:
        """Submit the file to the gate if it changed. Returns the gate's
        result for a processed change, None for no-change or IO failure
        (failures feed the breaker and ``last_error``)."""
        if self.breaker.is_open:
            return None
        self.polls += 1
        try:
            (mtime, size), _ = retry_call(self._stat_once, self.retry,
                                          sleep=self._sleep)
        except OSError as exc:
            return self._fail(f"stat failed: {exc}")
        if (mtime, size) == (self._last_mtime, self._last_size):
            self.breaker.record_success()
            return None
        try:
            text, _ = retry_call(self._read_once, self.retry, sleep=self._sleep)
            zone = parse_zone_text(text)
        except (OSError, ValueError) as exc:
            # Identity deliberately NOT committed: the next poll sees the
            # change again and retries, so a torn read heals once the
            # writer finishes and a persistently bad file keeps feeding
            # the breaker instead of being marked as seen.
            return self._fail(f"zone reload failed: {exc}")
        self._last_mtime, self._last_size = mtime, size
        self.breaker.record_success()
        self.last_error = None
        self.reloads += 1
        # Coalescing: if another submission (an API publish, or a reload
        # racing one) is already waiting on the gate, the stale delta is
        # dropped and only the newest content is verified.
        result = self.gate.submit_coalescing(zone, source=f"reload:{self.path}")
        if result is None:
            # Superseded while queued; the superseding submission's
            # verdict is the gate's latest.
            result = self.gate.last_result
        self.last_result = result
        return result

    def _fail(self, error: str) -> None:
        self.breaker.record_failure()
        self.failures += 1
        self.last_error = error
        return None

    # -- the loop ------------------------------------------------------------

    async def run(self, interval: float = 1.0,
                  max_reloads: Optional[int] = None) -> int:
        """Async poll loop (each poll runs in a worker thread — the gate
        verifies synchronously). Exits when the breaker opens or after
        ``max_reloads`` processed changes; returns the reload count."""
        import asyncio

        processed = 0
        while not self.breaker.is_open:
            result = await asyncio.to_thread(self.poll_once)
            if result is not None:
                processed += 1
                if max_reloads is not None and processed >= max_reloads:
                    break
            await asyncio.sleep(interval)
        return processed

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "polls": self.polls,
            "reloads": self.reloads,
            "failures": self.failures,
            "breaker": self.breaker.state,
            "last_error": self.last_error,
        }

"""Differential self-checking of the live serving path.

The verifier proves the engine against the specification offline; the
self-checker closes the loop on the *running* server by replaying a sample
of real queries two ways — through the serving snapshot (whatever engine
version is deployed) and through a ``verified``-engine snapshot of the
same zone — and alarming on any divergence. A crash of the serving engine
on a sampled query also counts as a divergence (the verified engine, by
construction, answers it).

Sampling is deterministic (every ``every``-th query) and bounded: sampled
queries land in a fixed-size ring buffer that :meth:`run` drains, so an
abusive query rate cannot grow memory or turn the checker into a second
query load. The spec-level cross-check of
:func:`repro.testing.differential.differential_test` is additionally run
over the same sample, so a divergence report distinguishes "engine
disagrees with the verified engine" from "both disagree with the spec".
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.dns.message import Query
from repro.dns.zonefile import zone_to_text
from repro.serve.snapshot import ResolveError, ServingSnapshot, build_snapshot
from repro.testing.differential import differential_test

#: Bound on retained structured divergence records (each carries a full
#: zone snapshot text; an alarming server must not grow without bound).
_EXPORT_CAP = 128


class SelfChecker:
    """Sample live queries; replay them against the verified engine."""

    def __init__(self, every: int = 64, capacity: int = 256,
                 reference_version: str = "verified",
                 clock=time.monotonic):
        if every <= 0:
            raise ValueError("every must be positive")
        self.every = every
        self.reference_version = reference_version
        self._clock = clock
        self._buffer: Deque[Query] = deque(maxlen=capacity)
        self._seen = 0
        self._reference: Optional[ServingSnapshot] = None
        self.runs = 0
        self.queries_checked = 0
        self.divergences = 0
        self.spec_divergences = 0
        self.last_run_at: Optional[float] = None
        self.last_divergence: Optional[str] = None
        #: Structured divergence records awaiting export — each one is a
        #: replayable (zone snapshot, offending query) pair in the exact
        #: shape :meth:`repro.campaign.store.RegressionStore.ingest`
        #: files as a regression corpus entry.
        self._export: Deque[Dict] = deque(maxlen=_EXPORT_CAP)

    @property
    def alarm(self) -> bool:
        return self.divergences > 0 or self.spec_divergences > 0

    # -- sampling (hot path: one modulo and sometimes an append) ------------

    def observe(self, query: Query) -> None:
        self._seen += 1
        if self._seen % self.every == 0:
            self._buffer.append(query)

    @property
    def pending(self) -> int:
        return len(self._buffer)

    # -- replay -------------------------------------------------------------

    def _reference_for(self, snapshot: ServingSnapshot) -> ServingSnapshot:
        ref = self._reference
        if ref is None or ref.digest != snapshot.digest:
            ref = build_snapshot(snapshot.zone, self.reference_version)
            self._reference = ref
        return ref

    def run(self, snapshot: ServingSnapshot) -> Dict[str, object]:
        """Drain the sample buffer and cross-check it; returns a report."""
        queries: List[Query] = []
        seen = set()
        while self._buffer:
            query = self._buffer.popleft()
            key = (query.qname, query.qtype)
            if key not in seen:
                seen.add(key)
                queries.append(query)
        self.runs += 1
        self.last_run_at = self._clock()
        found: List[str] = []
        zone_text: Optional[str] = None

        def export(query: Query, kind: str, detail: str) -> None:
            nonlocal zone_text
            if zone_text is None:  # serialize the snapshot at most once
                zone_text = zone_to_text(snapshot.zone)
            self._export.append({
                "zone_text": zone_text,
                "query": {"qname": query.qname.to_text(),
                          "qtype": query.qtype},
                "version": snapshot.version,
                "kind": kind,
                "detail": detail,
            })

        if queries and snapshot.version != self.reference_version:
            reference = self._reference_for(snapshot)
            for query in queries:
                try:
                    served = snapshot.resolve(query)
                except ResolveError as exc:
                    found.append(f"{query.to_text()}: serving engine crashed: {exc}")
                    export(query, "serving-crash", str(exc))
                    continue
                expected = reference.resolve(query)
                if not served.semantically_equal(expected):
                    found.append(
                        f"{query.to_text()}: {snapshot.version} diverges from "
                        f"{self.reference_version}"
                    )
                    export(query, "engine-divergence",
                           f"{snapshot.version} vs {self.reference_version}")
        spec_divergences = 0
        if queries:
            spec_result = differential_test(
                snapshot.zone, snapshot.version, queries=queries,
                check_reference=False,
            )
            spec_divergences = len(spec_result.divergences)
            self.spec_divergences += spec_divergences
            for divergence in spec_result.divergences:
                export(divergence.query, "spec-divergence",
                       divergence.describe())

        self.queries_checked += len(queries)
        self.divergences += len(found)
        if found:
            self.last_divergence = found[0]
        return {
            "queries": len(queries),
            "divergences": len(found),
            "spec_divergences": spec_divergences,
            "details": found[:10],
        }

    # -- export (feeds the campaign's regression corpus) ---------------------

    @property
    def exportable(self) -> int:
        return len(self._export)

    def export_divergences(self, clear: bool = True) -> List[Dict]:
        """Drain the structured divergence records seen so far.

        Each record is a self-contained reproducer — the zone snapshot
        text plus the offending query — ready for
        :meth:`repro.campaign.store.RegressionStore.ingest`, which turns
        a divergence seen once in production into a regression unit every
        future campaign replays.
        """
        records = list(self._export)
        if clear:
            self._export.clear()
        return records

    def as_dict(self) -> Dict[str, object]:
        return {
            "every": self.every,
            "sampled_pending": self.pending,
            "runs": self.runs,
            "queries_checked": self.queries_checked,
            "divergences": self.divergences,
            "spec_divergences": self.spec_divergences,
            "alarm": self.alarm,
            "last_divergence": self.last_divergence,
            "exportable_records": len(self._export),
        }

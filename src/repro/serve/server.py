"""The asyncio authoritative server: UDP + TCP + a status channel.

:class:`ZoneServer` serves one zone with one engine version from an
immutable :class:`~repro.serve.snapshot.ServingSnapshot`, fronted by the
:class:`~repro.serve.gate.PublishGate` — zone updates only reach the
serving path after they re-verify (see :mod:`repro.serve.gate`).

Transports
----------

- **UDP** (RFC 1035 4.2.1): one datagram in, one datagram out. Malformed
  packets shorter than a header are dropped (there is nothing safe to echo
  back), as are messages with QR=1 (answering a response would start a
  reflection loop, RFC 1035 7.1); other parse failures past the header
  return FORMERR; engine failures return SERVFAIL. Every branch
  increments a metric.
- **TCP** (RFC 1035 4.2.2): two-byte length framing, many pipelined
  queries per connection, mid-message disconnects tolerated. A rate-limit
  drop closes the connection (the TCP analogue of dropping a datagram).
- **Status**: connect to the status port and the server writes one JSON
  document — snapshot digest/sequence, last publish verdict, health alarm,
  qps and drop counters, self-check state — then closes. ``nc host port``
  is the whole monitoring client.

The query path is synchronous (parse → tree walk → serialize, ~40µs) and
runs directly on the event loop; verification runs in a worker thread via
:meth:`ZoneServer.publish` so the server keeps answering during a gate
check. Self-checking replays a sample of live queries against a
``verified``-engine snapshot (:mod:`repro.serve.selfcheck`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from typing import Dict, Optional, Tuple

from repro.dns.message import Query, Response
from repro.dns.rtypes import RCode
from repro.dns.wire import (
    NotAQueryError,
    WireError,
    build_error_response,
    build_response,
    build_truncated_response,
    parse_query,
)
from repro.dns.zone import Zone
from repro.resilience import faults
from repro.serve import degrade as degrade_mod
from repro.serve.gate import PublishGate, PublishResult
from repro.serve.journal import PublishJournal
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import ClientRateLimiter
from repro.serve.selfcheck import SelfChecker
from repro.serve.snapshot import ResolveError, ServingSnapshot, build_snapshot

#: Shortest parseable message: the 12-byte header. Anything shorter is
#: dropped — there is no transaction id worth echoing an error to.
MIN_QUERY_LENGTH = 12

#: Default slowloris guard: a TCP connection that completes no frame for
#: this long is closed and counted (``None`` disables).
DEFAULT_TCP_IDLE_TIMEOUT = 30.0


class RecoveryError(RuntimeError):
    """Boot-time journal recovery failed: the zone on disk disagrees with
    the journal head AND its re-verification did not come back VERIFIED.
    The server refuses to start — serving an unverified zone would void
    the invariant the journal exists to keep."""


def _bind_socket_pair(host: str, port: int,
                      attempts: int = 32) -> Tuple[socket.socket,
                                                   socket.socket]:
    """Bind a UDP and a TCP socket on the *same* port number.

    With ``port=0`` the OS picks the UDP port first, and the matching TCP
    port may already belong to another process — so retry with a fresh
    UDP port until a pair binds, instead of failing start() on whatever
    number the first UDP bind happened to draw. An explicit port gets no
    retries: a collision there is the operator's to resolve.
    """
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    last_error: Optional[OSError] = None
    for _ in range(attempts):
        udp = socket.socket(family, socket.SOCK_DGRAM)
        try:
            udp.bind((host, port))
        except OSError:
            udp.close()
            raise
        chosen = udp.getsockname()[1]
        tcp = socket.socket(family, socket.SOCK_STREAM)
        tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            tcp.bind((host, chosen))
        except OSError as exc:
            udp.close()
            tcp.close()
            if port != 0:
                raise
            last_error = exc
            continue
        return udp, tcp
    raise OSError(
        f"no free matching UDP+TCP port pair on {host} "
        f"after {attempts} attempts"
    ) from last_error


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "ZoneServer"):
        self.server = server
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        reply = self.server.handle_packet(data, addr[0], transport="udp")
        if reply:
            try:
                # `serve.udp.send` simulates sendto failing under memory
                # or buffer pressure; the reply is lost, the loop lives.
                faults.maybe_raise(faults.SITE_SERVE_UDP_SEND)
                self.transport.sendto(reply, addr)
            except OSError:
                self.server.metrics.send_failures += 1


class ZoneServer:
    """One zone, one engine version, served until told otherwise."""

    def __init__(
        self,
        zone: Zone,
        version: str = "verified",
        host: str = "127.0.0.1",
        port: int = 0,
        status_port: Optional[int] = 0,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        selfcheck_every: int = 0,
        selfcheck_interval: float = 30.0,
        cache=None,
        options=None,
        workers: Optional[int] = None,
        journal=None,
        max_qps: Optional[float] = None,
        degrade: Optional[degrade_mod.OverloadController] = None,
        tcp_idle_timeout: Optional[float] = DEFAULT_TCP_IDLE_TIMEOUT,
        clock=time.monotonic,
    ):
        if journal is not None and not isinstance(journal, PublishJournal):
            journal = PublishJournal(journal)
        self._clock = clock
        snapshot = build_snapshot(zone, version, clock=clock)
        #: Set when the journal head names a different zone than the one
        #: booted from disk: start() must re-verify before serving.
        self._recovery_head = None
        self.recovered_sequence: Optional[int] = None
        if journal is not None:
            head = journal.head()
            if head is not None and head.digest == snapshot.digest:
                # Clean recovery: the boot zone IS the last journaled
                # VERIFIED publish. Adopt its sequence number so a
                # SIGKILL/restart is indistinguishable from no crash.
                snapshot = build_snapshot(
                    zone, version, sequence=head.sequence, clock=clock
                )
                self.recovered_sequence = head.sequence
            elif head is not None:
                self._recovery_head = head
        self.version = version
        self.host = host
        self.port = port
        self.status_port = status_port
        self.gate = PublishGate(
            snapshot, cache=cache, options=options, workers=workers,
            journal=journal, clock=clock,
        )
        self.metrics = ServerMetrics(clock=clock)
        self.limiter = (
            ClientRateLimiter(rate_limit, rate_burst, clock=clock)
            if rate_limit
            else None
        )
        self.selfcheck = (
            SelfChecker(every=selfcheck_every, clock=clock)
            if selfcheck_every
            else None
        )
        self.selfcheck_interval = selfcheck_interval
        if degrade is None and max_qps is not None:
            degrade = degrade_mod.OverloadController(max_qps, clock=clock)
        self.degrade = degrade
        self.tcp_idle_timeout = tcp_idle_timeout
        self._inflight_tcp = 0
        self._udp_transport = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._status_server: Optional[asyncio.AbstractServer] = None
        self._selfcheck_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None  # created on start

    # -- the query path (synchronous, runs on the event loop) ---------------

    @property
    def snapshot(self) -> ServingSnapshot:
        return self.gate.snapshot

    @property
    def journal(self) -> Optional[PublishJournal]:
        return self.gate.journal

    def handle_packet(self, data: bytes, client: str,
                      transport: str = "udp") -> bytes:
        """One query in, one (possibly empty) reply out. Pure function of
        the current snapshot — no awaits, no shared mutable state beyond
        counters — so a snapshot swap mid-burst is invisible to it."""
        self.metrics.count_query(transport)
        if transport == "udp" and faults.should_fire(faults.SITE_SERVE_UDP_RECV):
            # Simulates the datagram dying in the socket layer (recv
            # error, kernel buffer overrun): counted, never answered.
            self.metrics.dropped_fault += 1
            return b""
        level = degrade_mod.NORMAL
        if self.degrade is not None:
            level = self.degrade.tick(self.metrics, self._inflight_tcp)
            if level >= degrade_mod.DROP:
                self.metrics.dropped_overload += 1
                return b""
        if self.limiter is not None and not self.limiter.allow(client):
            self.metrics.dropped_ratelimit += 1
            return b""
        if len(data) < MIN_QUERY_LENGTH:
            self.metrics.dropped_malformed += 1
            return b""
        try:
            txid, query = parse_query(data)
        except NotAQueryError:
            # RFC 1035 7.1: never answer a message with QR set — a reply
            # would itself be a response, and a spoofed source address
            # (another server's, or our own) turns that into an infinite
            # reflection loop between authoritatives.
            self.metrics.dropped_malformed += 1
            return b""
        except WireError:
            txid = int.from_bytes(data[:2], "big")
            self.metrics.count_rcode(int(RCode.FORMERR))
            return build_error_response(txid, RCode.FORMERR)

        if level >= degrade_mod.SERVFAIL_SHED and self.degrade.should_shed(client):
            # Header-only SERVFAIL for the (deterministically chosen)
            # lowest-priority clients: one cheap packet, no resolve.
            self.metrics.shed_servfail += 1
            self.metrics.count_rcode(int(RCode.SERVFAIL))
            return build_error_response(txid, RCode.SERVFAIL)
        if level >= degrade_mod.TRUNCATE and transport == "udp":
            # RFC 1035 4.2.1: answer TC=1 so the client retries over TCP,
            # where the accept queue back-pressures. Skips the resolve.
            self.metrics.truncated += 1
            self.metrics.count_rcode(int(RCode.NOERROR))
            return build_truncated_response(txid, query)

        if self.selfcheck is not None:
            if level >= degrade_mod.SHED_SELFCHECK:
                self.metrics.selfcheck_suspended += 1
            else:
                self.selfcheck.observe(query)

        snapshot = self.gate.snapshot  # pin: publishes swap this reference
        try:
            response = snapshot.resolve(query)
        except ResolveError as exc:
            if exc.crash is not None:
                self.metrics.engine_crashes += 1
            else:
                self.metrics.decode_failures += 1
            self.metrics.count_rcode(int(RCode.SERVFAIL))
            return build_error_response(txid, RCode.SERVFAIL, query)
        try:
            wire = build_response(txid, response)
        except WireError:
            self.metrics.encode_failures += 1
            self.metrics.count_rcode(int(RCode.SERVFAIL))
            return build_error_response(txid, RCode.SERVFAIL, query)
        self.metrics.count_rcode(int(response.rcode))
        return wire

    def resolve(self, query: Query) -> Response:
        """Resolve without the wire layer (tests, benchmarks)."""
        return self.gate.snapshot.resolve(query)

    # -- publishing ---------------------------------------------------------

    def publish_sync(self, new_zone: Zone) -> PublishResult:
        """Gate a new zone synchronously (CPU-bound: runs the prover)."""
        return self.gate.submit(new_zone)

    async def publish(self, new_zone: Zone) -> PublishResult:
        """Gate a new zone off-loop; queries keep flowing meanwhile."""
        return await asyncio.to_thread(self.gate.submit, new_zone)

    async def verify_boot(self) -> PublishResult:
        """Verify the zone the server booted with (no swap; a failure
        latches the gate alarm so the status channel shows it). On a
        fresh journal, a passing boot verification is journaled as the
        sequence-zero record — only *verified* zones ever enter the
        journal, including the first one."""
        result = await asyncio.to_thread(self.gate.bootstrap)
        if (result.verdict == "VERIFIED" and self.journal is not None
                and self.journal.head() is None):
            await asyncio.to_thread(self.gate.journal_bootstrap, "bootstrap")
        return result

    # -- self-check ---------------------------------------------------------

    async def run_selfcheck(self) -> Optional[Dict[str, object]]:
        if self.selfcheck is None:
            return None
        return await asyncio.to_thread(self.selfcheck.run, self.gate.snapshot)

    async def _selfcheck_loop(self) -> None:
        while True:
            await asyncio.sleep(self.selfcheck_interval)
            if self.selfcheck.pending:
                await self.run_selfcheck()

    # -- lifecycle ----------------------------------------------------------

    async def _recover_if_needed(self) -> None:
        """Journal recovery, step two: the boot zone's digest did not
        match the journal head, so its verification status is unknown.
        Re-verify before a single query is answered; a non-VERIFIED
        verdict aborts startup (:class:`RecoveryError`), a VERIFIED one
        advances past the stale head and journals the adoption."""
        if self._recovery_head is None:
            return
        head = self._recovery_head
        result = await asyncio.to_thread(self.gate.bootstrap)
        if result.verdict != "VERIFIED":
            raise RecoveryError(
                f"journal head #{head.sequence} digest {head.digest[:12]} "
                f"does not match the boot zone "
                f"{self.gate.snapshot.digest[:12]}, and re-verification "
                f"came back {result.verdict}"
                f"{f' ({result.reason})' if result.reason else ''} — "
                f"refusing to serve an unverified zone"
            )
        # Adopt a sequence past the journal head so the lineage stays
        # monotonic, then journal this zone as the new durable state.
        self.gate.snapshot = build_snapshot(
            self.gate.snapshot.zone,
            self.version,
            sequence=head.sequence + 1,
            clock=self._clock,
        )
        self.recovered_sequence = head.sequence + 1
        await asyncio.to_thread(self.gate.journal_bootstrap, "recovery")
        self._recovery_head = None

    async def start(self) -> None:
        """Bind UDP, TCP and the status channel. ``port=0`` picks a free
        port (the same number is then used for both UDP and TCP);
        ``status_port=None`` disables the status channel, ``0`` picks a
        free one."""
        loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        await self._recover_if_needed()
        udp_sock, tcp_sock = _bind_socket_pair(self.host, self.port)
        self.port = udp_sock.getsockname()[1]
        self._udp_transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), sock=udp_sock
        )
        self._tcp_server = await asyncio.start_server(
            self._serve_tcp, sock=tcp_sock
        )
        if self.status_port is not None:
            self._status_server = await asyncio.start_server(
                self._serve_status, self.host, self.status_port
            )
            self.status_port = self._status_server.sockets[0].getsockname()[1]
        if self.selfcheck is not None and self.selfcheck_interval:
            self._selfcheck_task = asyncio.ensure_future(self._selfcheck_loop())

    async def stop(self) -> None:
        if self._selfcheck_task is not None:
            self._selfcheck_task.cancel()
            try:
                await self._selfcheck_task
            except asyncio.CancelledError:
                pass
            self._selfcheck_task = None
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        for server in (self._tcp_server, self._status_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._tcp_server = None
        self._status_server = None
        if self._stopping is not None:
            self._stopping.set()

    def request_stop(self) -> None:
        """Ask the server to drain and exit (the SIGTERM/SIGINT hook).
        Safe to call multiple times; a no-op before start()."""
        if self._stopping is not None:
            self._stopping.set()

    async def drain(self, grace: float = 5.0) -> None:
        """Graceful shutdown: stop accepting (close the UDP transport and
        the TCP listener), let in-flight TCP connections finish for up to
        ``grace`` seconds, then tear everything down. The journal needs
        no explicit flush — every append fsyncs before returning."""
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        deadline = self._clock() + grace
        while self._inflight_tcp > 0 and self._clock() < deadline:
            await asyncio.sleep(0.05)
        await self.stop()

    async def run_forever(self, duration: Optional[float] = None,
                          grace: float = 5.0) -> None:
        """Serve until :meth:`request_stop` (or for ``duration`` seconds),
        then drain gracefully."""
        if self._stopping is None:
            await self.start()
        try:
            if duration is None:
                await self._stopping.wait()
            else:
                try:
                    await asyncio.wait_for(self._stopping.wait(), duration)
                except asyncio.TimeoutError:
                    pass
        finally:
            await self.drain(grace)

    # -- TCP ----------------------------------------------------------------

    async def _read_framed(self, reader: asyncio.StreamReader,
                           length: int) -> bytes:
        """readexactly under the idle deadline; the slowloris guard. A
        peer that opens a connection and trickles (or never sends) bytes
        would otherwise hold a reader task forever."""
        if self.tcp_idle_timeout is None:
            return await reader.readexactly(length)
        return await asyncio.wait_for(reader.readexactly(length),
                                      self.tcp_idle_timeout)

    async def _serve_tcp(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        self.metrics.tcp_connections += 1
        self._inflight_tcp += 1
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "tcp"
        try:
            while True:
                try:
                    # `serve.tcp.read` simulates the socket read dying
                    # under the peer (RST, interface bounce) before the
                    # frame header completes.
                    faults.maybe_raise(faults.SITE_SERVE_TCP_READ)
                    header = await self._read_framed(reader, 2)
                except asyncio.TimeoutError:
                    self.metrics.tcp_idle_timeouts += 1
                    break
                except OSError:
                    self.metrics.tcp_read_faults += 1
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # clean EOF or mid-header disconnect
                (length,) = struct.unpack("!H", header)
                try:
                    data = await self._read_framed(reader, length)
                except asyncio.TimeoutError:
                    self.metrics.tcp_idle_timeouts += 1
                    break
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    self.metrics.tcp_disconnects += 1
                    break
                reply = self.handle_packet(data, client, transport="tcp")
                if not reply:
                    break  # dropped (rate limit/malformed/shed): close
                try:
                    # `serve.tcp.write` simulates the reply write failing
                    # (peer closed its window and vanished): the reply is
                    # lost, the connection closes, the loop lives.
                    faults.maybe_raise(faults.SITE_SERVE_TCP_WRITE)
                    writer.write(struct.pack("!H", len(reply)) + reply)
                    await writer.drain()
                except (ConnectionError, OSError):
                    self.metrics.tcp_disconnects += 1
                    break
        finally:
            self._inflight_tcp -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- status channel ------------------------------------------------------

    def status(self) -> Dict[str, object]:
        snapshot = self.gate.snapshot
        payload: Dict[str, object] = {
            "version": snapshot.version,
            "origin": snapshot.zone.origin.to_text(),
            "snapshot": {
                "digest": snapshot.digest,
                "sequence": snapshot.sequence,
                "records": len(snapshot.zone),
                "published_at": snapshot.published_at,
            },
            "gate": self.gate.health(),
            "metrics": self.metrics.as_dict(),
            "endpoints": {
                "host": self.host,
                "port": self.port,
                "status_port": self.status_port,
            },
        }
        if self.limiter is not None:
            payload["ratelimit"] = self.limiter.as_dict()
        if self.selfcheck is not None:
            payload["selfcheck"] = self.selfcheck.as_dict()
        if self.degrade is not None:
            payload["degrade"] = self.degrade.as_dict()
        if self.recovered_sequence is not None:
            payload["recovered_sequence"] = self.recovered_sequence
        return payload

    async def _serve_status(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            writer.write(json.dumps(self.status(), sort_keys=True).encode()
                         + b"\n")
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

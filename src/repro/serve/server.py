"""The asyncio authoritative server: UDP + TCP + a status channel.

:class:`ZoneServer` serves one zone with one engine version from an
immutable :class:`~repro.serve.snapshot.ServingSnapshot`, fronted by the
:class:`~repro.serve.gate.PublishGate` — zone updates only reach the
serving path after they re-verify (see :mod:`repro.serve.gate`).

Transports
----------

- **UDP** (RFC 1035 4.2.1): one datagram in, one datagram out. Malformed
  packets shorter than a header are dropped (there is nothing safe to echo
  back), as are messages with QR=1 (answering a response would start a
  reflection loop, RFC 1035 7.1); other parse failures past the header
  return FORMERR; engine failures return SERVFAIL. Every branch
  increments a metric.
- **TCP** (RFC 1035 4.2.2): two-byte length framing, many pipelined
  queries per connection, mid-message disconnects tolerated. A rate-limit
  drop closes the connection (the TCP analogue of dropping a datagram).
- **Status**: connect to the status port and the server writes one JSON
  document — snapshot digest/sequence, last publish verdict, health alarm,
  qps and drop counters, self-check state — then closes. ``nc host port``
  is the whole monitoring client.

The query path is synchronous (parse → tree walk → serialize, ~40µs) and
runs directly on the event loop; verification runs in a worker thread via
:meth:`ZoneServer.publish` so the server keeps answering during a gate
check. Self-checking replays a sample of live queries against a
``verified``-engine snapshot (:mod:`repro.serve.selfcheck`).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from typing import Dict, Optional, Tuple

from repro.dns.message import Query, Response
from repro.dns.rtypes import RCode
from repro.dns.wire import (
    NotAQueryError,
    WireError,
    build_error_response,
    build_response,
    parse_query,
)
from repro.dns.zone import Zone
from repro.serve.gate import PublishGate, PublishResult
from repro.serve.metrics import ServerMetrics
from repro.serve.ratelimit import ClientRateLimiter
from repro.serve.selfcheck import SelfChecker
from repro.serve.snapshot import ResolveError, ServingSnapshot, build_snapshot

#: Shortest parseable message: the 12-byte header. Anything shorter is
#: dropped — there is no transaction id worth echoing an error to.
MIN_QUERY_LENGTH = 12


def _bind_socket_pair(host: str, port: int,
                      attempts: int = 32) -> Tuple[socket.socket,
                                                   socket.socket]:
    """Bind a UDP and a TCP socket on the *same* port number.

    With ``port=0`` the OS picks the UDP port first, and the matching TCP
    port may already belong to another process — so retry with a fresh
    UDP port until a pair binds, instead of failing start() on whatever
    number the first UDP bind happened to draw. An explicit port gets no
    retries: a collision there is the operator's to resolve.
    """
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    last_error: Optional[OSError] = None
    for _ in range(attempts):
        udp = socket.socket(family, socket.SOCK_DGRAM)
        try:
            udp.bind((host, port))
        except OSError:
            udp.close()
            raise
        chosen = udp.getsockname()[1]
        tcp = socket.socket(family, socket.SOCK_STREAM)
        tcp.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            tcp.bind((host, chosen))
        except OSError as exc:
            udp.close()
            tcp.close()
            if port != 0:
                raise
            last_error = exc
            continue
        return udp, tcp
    raise OSError(
        f"no free matching UDP+TCP port pair on {host} "
        f"after {attempts} attempts"
    ) from last_error


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, server: "ZoneServer"):
        self.server = server
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        reply = self.server.handle_packet(data, addr[0], transport="udp")
        if reply:
            self.transport.sendto(reply, addr)


class ZoneServer:
    """One zone, one engine version, served until told otherwise."""

    def __init__(
        self,
        zone: Zone,
        version: str = "verified",
        host: str = "127.0.0.1",
        port: int = 0,
        status_port: Optional[int] = 0,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        selfcheck_every: int = 0,
        selfcheck_interval: float = 30.0,
        cache=None,
        options=None,
        workers: Optional[int] = None,
        clock=time.monotonic,
    ):
        snapshot = build_snapshot(zone, version, clock=clock)
        self.version = version
        self.host = host
        self.port = port
        self.status_port = status_port
        self.gate = PublishGate(
            snapshot, cache=cache, options=options, workers=workers, clock=clock
        )
        self.metrics = ServerMetrics(clock=clock)
        self.limiter = (
            ClientRateLimiter(rate_limit, rate_burst, clock=clock)
            if rate_limit
            else None
        )
        self.selfcheck = (
            SelfChecker(every=selfcheck_every, clock=clock)
            if selfcheck_every
            else None
        )
        self.selfcheck_interval = selfcheck_interval
        self._udp_transport = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._status_server: Optional[asyncio.AbstractServer] = None
        self._selfcheck_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None  # created on start

    # -- the query path (synchronous, runs on the event loop) ---------------

    @property
    def snapshot(self) -> ServingSnapshot:
        return self.gate.snapshot

    def handle_packet(self, data: bytes, client: str,
                      transport: str = "udp") -> bytes:
        """One query in, one (possibly empty) reply out. Pure function of
        the current snapshot — no awaits, no shared mutable state beyond
        counters — so a snapshot swap mid-burst is invisible to it."""
        self.metrics.count_query(transport)
        if self.limiter is not None and not self.limiter.allow(client):
            self.metrics.dropped_ratelimit += 1
            return b""
        if len(data) < MIN_QUERY_LENGTH:
            self.metrics.dropped_malformed += 1
            return b""
        try:
            txid, query = parse_query(data)
        except NotAQueryError:
            # RFC 1035 7.1: never answer a message with QR set — a reply
            # would itself be a response, and a spoofed source address
            # (another server's, or our own) turns that into an infinite
            # reflection loop between authoritatives.
            self.metrics.dropped_malformed += 1
            return b""
        except WireError:
            txid = int.from_bytes(data[:2], "big")
            self.metrics.count_rcode(int(RCode.FORMERR))
            return build_error_response(txid, RCode.FORMERR)

        if self.selfcheck is not None:
            self.selfcheck.observe(query)

        snapshot = self.gate.snapshot  # pin: publishes swap this reference
        try:
            response = snapshot.resolve(query)
        except ResolveError as exc:
            if exc.crash is not None:
                self.metrics.engine_crashes += 1
            else:
                self.metrics.decode_failures += 1
            self.metrics.count_rcode(int(RCode.SERVFAIL))
            return build_error_response(txid, RCode.SERVFAIL, query)
        try:
            wire = build_response(txid, response)
        except WireError:
            self.metrics.encode_failures += 1
            self.metrics.count_rcode(int(RCode.SERVFAIL))
            return build_error_response(txid, RCode.SERVFAIL, query)
        self.metrics.count_rcode(int(response.rcode))
        return wire

    def resolve(self, query: Query) -> Response:
        """Resolve without the wire layer (tests, benchmarks)."""
        return self.gate.snapshot.resolve(query)

    # -- publishing ---------------------------------------------------------

    def publish_sync(self, new_zone: Zone) -> PublishResult:
        """Gate a new zone synchronously (CPU-bound: runs the prover)."""
        return self.gate.submit(new_zone)

    async def publish(self, new_zone: Zone) -> PublishResult:
        """Gate a new zone off-loop; queries keep flowing meanwhile."""
        return await asyncio.to_thread(self.gate.submit, new_zone)

    async def verify_boot(self) -> PublishResult:
        """Verify the zone the server booted with (no swap; a failure
        latches the gate alarm so the status channel shows it)."""
        return await asyncio.to_thread(self.gate.bootstrap)

    # -- self-check ---------------------------------------------------------

    async def run_selfcheck(self) -> Optional[Dict[str, object]]:
        if self.selfcheck is None:
            return None
        return await asyncio.to_thread(self.selfcheck.run, self.gate.snapshot)

    async def _selfcheck_loop(self) -> None:
        while True:
            await asyncio.sleep(self.selfcheck_interval)
            if self.selfcheck.pending:
                await self.run_selfcheck()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind UDP, TCP and the status channel. ``port=0`` picks a free
        port (the same number is then used for both UDP and TCP);
        ``status_port=None`` disables the status channel, ``0`` picks a
        free one."""
        loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        udp_sock, tcp_sock = _bind_socket_pair(self.host, self.port)
        self.port = udp_sock.getsockname()[1]
        self._udp_transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), sock=udp_sock
        )
        self._tcp_server = await asyncio.start_server(
            self._serve_tcp, sock=tcp_sock
        )
        if self.status_port is not None:
            self._status_server = await asyncio.start_server(
                self._serve_status, self.host, self.status_port
            )
            self.status_port = self._status_server.sockets[0].getsockname()[1]
        if self.selfcheck is not None and self.selfcheck_interval:
            self._selfcheck_task = asyncio.ensure_future(self._selfcheck_loop())

    async def stop(self) -> None:
        if self._selfcheck_task is not None:
            self._selfcheck_task.cancel()
            try:
                await self._selfcheck_task
            except asyncio.CancelledError:
                pass
            self._selfcheck_task = None
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        for server in (self._tcp_server, self._status_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._tcp_server = None
        self._status_server = None
        if self._stopping is not None:
            self._stopping.set()

    async def run_forever(self, duration: Optional[float] = None) -> None:
        """Serve until cancelled (or for ``duration`` seconds)."""
        if self._stopping is None:
            await self.start()
        try:
            if duration is None:
                await asyncio.Event().wait()
            else:
                await asyncio.sleep(duration)
        finally:
            await self.stop()

    # -- TCP ----------------------------------------------------------------

    async def _serve_tcp(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        self.metrics.tcp_connections += 1
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "tcp"
        try:
            while True:
                try:
                    header = await reader.readexactly(2)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # clean EOF or mid-header disconnect
                (length,) = struct.unpack("!H", header)
                try:
                    data = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    self.metrics.tcp_disconnects += 1
                    break
                reply = self.handle_packet(data, client, transport="tcp")
                if not reply:
                    break  # dropped (rate limit/malformed): close
                writer.write(struct.pack("!H", len(reply)) + reply)
                try:
                    await writer.drain()
                except ConnectionError:
                    self.metrics.tcp_disconnects += 1
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- status channel ------------------------------------------------------

    def status(self) -> Dict[str, object]:
        snapshot = self.gate.snapshot
        payload: Dict[str, object] = {
            "version": snapshot.version,
            "origin": snapshot.zone.origin.to_text(),
            "snapshot": {
                "digest": snapshot.digest,
                "sequence": snapshot.sequence,
                "records": len(snapshot.zone),
                "published_at": snapshot.published_at,
            },
            "gate": self.gate.health(),
            "metrics": self.metrics.as_dict(),
            "endpoints": {
                "host": self.host,
                "port": self.port,
                "status_port": self.status_port,
            },
        }
        if self.limiter is not None:
            payload["ratelimit"] = self.limiter.as_dict()
        if self.selfcheck is not None:
            payload["selfcheck"] = self.selfcheck.as_dict()
        return payload

    async def _serve_status(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            writer.write(json.dumps(self.status(), sort_keys=True).encode()
                         + b"\n")
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

"""The immutable serving unit: one zone, one engine, one domain tree.

A :class:`ServingSnapshot` bundles everything one query needs — the zone,
its :class:`~repro.engine.encoding.ZoneEncoder`, the engine's in-heap
domain tree and the engine module itself — built once and never mutated.
The server publishes a new snapshot by swapping a single reference
(atomic under the GIL), so in-flight queries keep resolving against the
snapshot they started with and a hot-swap never drops traffic.

Fresh-label encoding
--------------------

Query names routinely contain labels the zone has never seen (NXDOMAIN
traffic, wildcard synthesis). The interner's code space is built for this:
codes between two interned codes denote labels lying strictly between the
neighbouring interned labels. :func:`encode_query_name` allocates a
*distinct* gap code per distinct unknown label — mid-gap, ordered
byte-wise within the gap — so ``a.b.example.com`` with two unknown labels
never collapses into ``x.x.example.com`` (the bug the old example had:
every unknown label mapped to ``interner.max_code``, so distinct unknown
labels in one qname collided, and wildcard matching saw the wrong shape).
The returned overlay maps each fresh code back to the original query
label, so synthesized records (wildcard expansion echoes the query name)
decode to exactly what the client asked for.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.interner import LABEL_SPACING, LabelInterner
from repro.dns.message import Query, Response
from repro.dns.zone import Zone
from repro.engine import control
from repro.engine.encoding import ZoneEncoder
from repro.incremental.digest import zone_digest


class ResolveError(Exception):
    """The engine crashed on a query or its answer did not decode; the
    server degrades the query to SERVFAIL and counts it."""

    def __init__(self, message: str, crash: Optional[BaseException] = None):
        super().__init__(message)
        self.crash = crash


def encode_query_name(
    interner: LabelInterner, name
) -> Tuple[List[int], Dict[int, str]]:
    """Codes for a query name, with distinct order-consistent fresh codes
    for labels outside the interner universe.

    Returns ``(codes, overlay)`` where ``overlay`` maps each fresh code
    back to its label (for decoding responses that echo the query name).
    Unknown labels are ranked against the interned universe and placed
    mid-gap; several unknown labels landing in the same gap are ordered
    byte-wise within it, so every comparison an engine walk can make
    (``<`` / ``>`` / ``==`` against interned codes *and* between fresh
    codes) agrees with canonical label order.
    """
    universe = interner.universe
    unknown: Dict[str, int] = {}  # label -> gap rank
    for label in name.reversed_labels:
        lab = label.lower()
        if not interner.has(lab):
            unknown.setdefault(lab, bisect_left(universe, lab))

    fresh: Dict[str, int] = {}
    overlay: Dict[int, str] = {}
    by_gap: Dict[int, List[str]] = {}
    for lab, rank in unknown.items():
        by_gap.setdefault(rank, []).append(lab)
    for rank, labels in by_gap.items():
        base = rank * LABEL_SPACING + LABEL_SPACING // 2
        for offset, lab in enumerate(sorted(labels)):
            code = base + offset
            fresh[lab] = code
            overlay[code] = lab

    codes = []
    for label in name.reversed_labels:
        lab = label.lower()
        codes.append(interner.code(lab) if interner.has(lab) else fresh[lab])
    return codes, overlay


@dataclass(frozen=True)
class ServingSnapshot:
    """One published state of the serving plane (never mutated in place)."""

    zone: Zone
    version: str
    encoder: ZoneEncoder = field(repr=False)
    tree: object = field(repr=False)  # DomainTree
    module: object = field(repr=False)  # GoPy engine module
    digest: str = ""
    sequence: int = 0
    published_at: float = 0.0

    def resolve(self, query: Query) -> Response:
        """Answer one query against this snapshot.

        Raises :class:`ResolveError` when the engine panics (buggy
        versions do) or the engine's answer fails to decode; the caller
        turns that into SERVFAIL.
        """
        codes, overlay = encode_query_name(self.encoder.interner, query.qname)
        try:
            go_resp = control.run_engine_concrete(
                self.module, self.tree, codes, int(query.qtype)
            )
        except Exception as exc:  # engine panic: IndexError/AttributeError/...
            raise ResolveError(
                f"engine {self.version} crashed on {query.to_text()}: "
                f"{type(exc).__name__}: {exc}",
                crash=exc,
            ) from exc
        decoded = self.encoder.decode_response(query, go_resp, overrides=overlay)
        if decoded is None:
            raise ResolveError(f"answer for {query.to_text()} did not decode")
        return decoded

    def describe(self) -> str:
        return (
            f"snapshot #{self.sequence} of {self.zone.origin.to_text()} "
            f"({len(self.zone)} records, engine {self.version}, "
            f"digest {self.digest[:12]})"
        )


def build_snapshot(
    zone: Zone,
    version: str = "verified",
    sequence: int = 0,
    clock=time.monotonic,
) -> ServingSnapshot:
    """Encode ``zone`` for ``version`` into an immutable serving snapshot."""
    if version not in control.ENGINE_VERSIONS:
        raise ValueError(f"unknown engine version {version!r}")
    encoder = ZoneEncoder(zone)
    return ServingSnapshot(
        zone=zone,
        version=version,
        encoder=encoder,
        tree=control.build_domain_tree(encoder),
        module=control.ENGINE_VERSIONS[version],
        digest=zone_digest(zone),
        sequence=sequence,
        published_at=clock(),
    )

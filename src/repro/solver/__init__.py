"""SMT-lite solver for linear integer arithmetic with boolean structure.

The paper's verifier invokes Z3 on branch conditions that are deliberately
kept within *simple linear integer arithmetic* (sections 4.2 and 6.3): label
codes, list lengths and flags compared with constants or each other. This
subpackage implements a decision procedure that is sound and complete for
exactly that fragment and can produce models — which is everything DNS-V
needs from an SMT solver (satisfiability pruning during symbolic execution
and counterexample generation).

Layout:

- :mod:`repro.solver.terms` — hash-consable term language: linear integer
  expressions, boolean formulas, substitution and evaluation.
- :mod:`repro.solver.theory` — conjunction-level decision procedure for
  linear integer constraints (Gaussian elimination, bound propagation,
  branch-and-bound model search, Fourier–Motzkin fallback).
- :mod:`repro.solver.sat` — DPLL-style search over the boolean skeleton with
  lazy theory checks.
- :mod:`repro.solver.solver` — the incremental :class:`Solver` facade with
  an assertion stack, caching, and validity/entailment helpers.
"""

from repro.solver.terms import (
    IntExpr,
    BoolExpr,
    iconst,
    ivar,
    iadd,
    isub,
    ineg,
    imul,
    btrue,
    bfalse,
    bvar,
    bool_const,
    and_,
    or_,
    not_,
    implies,
    eq,
    ne,
    lt,
    le,
    gt,
    ge,
    beq,
    free_vars,
    substitute,
    eval_expr,
    NonLinearError,
)
from repro.solver.solver import Solver, SolveResult, Model

__all__ = [
    "IntExpr",
    "BoolExpr",
    "iconst",
    "ivar",
    "iadd",
    "isub",
    "ineg",
    "imul",
    "btrue",
    "bfalse",
    "bvar",
    "bool_const",
    "and_",
    "or_",
    "not_",
    "implies",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "beq",
    "free_vars",
    "substitute",
    "eval_expr",
    "NonLinearError",
    "Solver",
    "SolveResult",
    "Model",
]

"""DPLL-style search over the boolean skeleton with lazy theory checks.

Formulas arrive in NNF (guaranteed by the smart constructors in
:mod:`repro.solver.terms`). The search maintains a partial assignment —
boolean literals plus a growing set of linear atoms — and splits on
disjunctions. Conjunctions of atoms are discharged by the theory solver
(:mod:`repro.solver.theory`), whose verdicts are memoised per atom-set since
symbolic execution re-checks many near-identical path conditions.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.solver import theory
from repro.solver.terms import (
    And,
    Atom,
    BoolConst,
    BoolExpr,
    BoolLit,
    Or,
    not_,
)

ModelDict = Dict[str, Union[int, bool]]


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class TheoryCache:
    """Memo of theory verdicts keyed by the exact atom set."""

    def __init__(self):
        self._cache: Dict[FrozenSet[Atom], Tuple[theory.TheoryResult, Optional[Dict[str, int]]]] = {}
        self.hits = 0
        self.misses = 0

    def check(self, atoms: FrozenSet[Atom]):
        cached = self._cache.get(atoms)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = theory.check_conjunction(atoms)
        self._cache[atoms] = result
        return result


class _Search:
    def __init__(self, cache: TheoryCache, node_limit: int):
        self.cache = cache
        self.nodes = node_limit
        self.saw_unknown = False
        self.model: Optional[ModelDict] = None

    def run(
        self,
        pending: List[BoolExpr],
        atoms: Set[Atom],
        bools: Dict[str, bool],
    ) -> bool:
        """Returns True when a satisfying leaf is found (model recorded)."""
        if self.nodes <= 0:
            self.saw_unknown = True
            return False
        self.nodes -= 1

        pending = list(pending)
        atoms = set(atoms)
        bools = dict(bools)
        disjunctions: List[Or] = []

        while pending:
            formula = pending.pop()
            if isinstance(formula, BoolConst):
                if not formula.value:
                    return False
            elif isinstance(formula, BoolLit):
                known = bools.get(formula.name)
                if known is None:
                    bools[formula.name] = formula.positive
                elif known != formula.positive:
                    return False
            elif isinstance(formula, Atom):
                if not_(formula) in atoms:
                    return False
                atoms.add(formula)
            elif isinstance(formula, And):
                pending.extend(formula.args)
            elif isinstance(formula, Or):
                disjunctions.append(formula)
            else:
                raise TypeError(f"not a boolean formula: {formula!r}")

        if not disjunctions:
            verdict, model = self.cache.check(frozenset(atoms))
            if verdict is theory.TheoryResult.SAT:
                full: ModelDict = dict(model or {})
                full.update(bools)
                self.model = full
                return True
            if verdict is theory.TheoryResult.UNKNOWN:
                self.saw_unknown = True
            return False

        # Split on the smallest disjunction first.
        disjunctions.sort(key=lambda d: len(d.args))
        first, rest = disjunctions[0], disjunctions[1:]
        for disjunct in first.args:
            if self.run(rest + [disjunct], atoms, bools):
                return True
        return False


def check_formulas(
    formulas: List[BoolExpr],
    cache: Optional[TheoryCache] = None,
    node_limit: int = 200000,
) -> Tuple[SatResult, Optional[ModelDict]]:
    """Decide the conjunction of ``formulas``.

    A returned model maps every boolean variable the search assigned and
    every integer variable the theory constrained; callers should treat
    missing variables as unconstrained.
    """
    search = _Search(cache or TheoryCache(), node_limit)
    if search.run(list(formulas), set(), {}):
        return SatResult.SAT, search.model
    if search.saw_unknown:
        return SatResult.UNKNOWN, None
    return SatResult.UNSAT, None

"""The incremental solver facade used by the rest of DNS-V.

Plays the role Z3 plays in the paper: path-condition satisfiability during
symbolic execution, equivalence checking during refinement, and model
(counterexample) extraction. The facade adds an assertion stack
(``push``/``pop``), a cross-query theory cache, and convenience entailment
helpers on top of :mod:`repro.solver.sat`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Union

from repro.solver import sat
from repro.solver.terms import BoolExpr, and_, bool_const, eval_expr, free_vars, not_


class SolveResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_FROM_SAT = {
    sat.SatResult.SAT: SolveResult.SAT,
    sat.SatResult.UNSAT: SolveResult.UNSAT,
    sat.SatResult.UNKNOWN: SolveResult.UNKNOWN,
}


class Model:
    """An assignment of symbolic constants; unmentioned variables are
    unconstrained and default as requested."""

    def __init__(self, values: Dict[str, Union[int, bool]]):
        self._values = dict(values)

    def get_int(self, name: str, default: int = 0) -> int:
        value = self._values.get(name, default)
        return int(value)

    def get_bool(self, name: str, default: bool = False) -> bool:
        return bool(self._values.get(name, default))

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, Union[int, bool]]:
        return dict(self._values)

    def evaluate(self, expr):
        """Evaluate an expression, defaulting missing variables to 0/False."""
        names = free_vars(expr)
        filled = {name: self._values.get(name, 0) for name in names}
        return eval_expr(expr, filled)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({inner})"


class Solver:
    """Incremental solver with an assertion stack.

    Typical use by the symbolic executor::

        solver = Solver()
        solver.push()
        solver.add(path_condition)
        if solver.check() is SolveResult.SAT:
            model = solver.model()
        solver.pop()

    UNKNOWN results are rare (budget exhaustion outside the supported
    fragment); callers decide their own sound default — the executor treats
    UNKNOWN branches as feasible, the refinement checker treats UNKNOWN
    proofs as failures.
    """

    def __init__(self, node_limit: int = 200000, budget=None):
        self._assertions: List[BoolExpr] = []
        self._stack: List[int] = []
        self._cache = sat.TheoryCache()
        self._node_limit = node_limit
        self._model: Optional[Model] = None
        self._result_cache: Dict[frozenset, tuple] = {}
        self.num_checks = 0
        #: Optional[repro.resilience.Budget] — consulted cooperatively at
        #: check entry; exhaustion degrades the check to UNKNOWN (the sound
        #: default everywhere) instead of raising out of the search.
        self.budget = budget
        self.budget_unknowns = 0
        self.injected_unknowns = 0

    # -- assertion stack ---------------------------------------------------

    def push(self) -> None:
        self._stack.append(len(self._assertions))

    def pop(self) -> None:
        if not self._stack:
            raise RuntimeError("pop without matching push")
        depth = self._stack.pop()
        del self._assertions[depth:]

    def add(self, *formulas: Union[BoolExpr, bool]) -> None:
        for formula in formulas:
            if isinstance(formula, bool):
                formula = bool_const(formula)
            if not isinstance(formula, BoolExpr):
                raise TypeError(f"not a boolean formula: {formula!r}")
            self._assertions.append(formula)

    @property
    def assertions(self) -> List[BoolExpr]:
        return list(self._assertions)

    # -- checking ------------------------------------------------------------

    def check(self, *extra: Union[BoolExpr, bool]) -> SolveResult:
        from repro.resilience import faults

        formulas = list(self._assertions)
        for formula in extra:
            if isinstance(formula, bool):
                formula = bool_const(formula)
            formulas.append(formula)

        # Degraded modes come first and are never result-cached: a later
        # check of the same formulas under a fresh budget must re-solve.
        if self.budget is not None and self.budget.exhausted() is not None:
            self.budget_unknowns += 1
            self._model = None
            return SolveResult.UNKNOWN
        if faults.should_fire(faults.SITE_SOLVER):
            self.injected_unknowns += 1
            self._model = None
            return SolveResult.UNKNOWN

        key = frozenset(formulas)
        cached = self._result_cache.get(key)
        if cached is not None:
            result, model = cached
            self._model = model
            return result

        self.num_checks += 1
        sat_result, model_dict = sat.check_formulas(
            formulas, self._cache, self._node_limit
        )
        result = _FROM_SAT[sat_result]
        model = Model(model_dict) if model_dict is not None else None
        self._model = model
        self._result_cache[key] = (result, model)
        return result

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available (last check was not SAT)")
        return self._model

    # -- derived judgements -----------------------------------------------

    def is_satisfiable(self, *extra: BoolExpr) -> bool:
        """True unless proven UNSAT. The sound default for path pruning:
        an UNKNOWN branch is still explored."""
        return self.check(*extra) is not SolveResult.UNSAT

    def entails(self, formula: BoolExpr) -> bool:
        """True iff assertions ⊨ formula (proven). UNKNOWN counts as not
        proven — the sound default for refinement obligations."""
        return self.check(not_(formula)) is SolveResult.UNSAT

    def equivalent(self, a: BoolExpr, b: BoolExpr) -> bool:
        """True iff a and b agree under the current assertions (proven)."""
        differ = or_differ(a, b)
        return self.check(differ) is SolveResult.UNSAT


def or_differ(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    """Formula that is true exactly when ``a`` and ``b`` disagree."""
    return and_(a, not_(b)) | and_(not_(a), b)


def conjunction(formulas: Iterable[BoolExpr]) -> BoolExpr:
    return and_(*list(formulas))

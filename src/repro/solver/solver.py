"""The incremental solver facade used by the rest of DNS-V.

Plays the role Z3 plays in the paper: path-condition satisfiability during
symbolic execution, equivalence checking during refinement, and model
(counterexample) extraction. The facade adds an assertion stack
(``push``/``pop``), a cross-query theory cache, and convenience entailment
helpers on top of :mod:`repro.solver.sat`.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Union

from repro.solver import sat
from repro.solver.terms import (
    EQ,
    NE,
    And,
    Atom,
    BoolConst,
    BoolExpr,
    and_,
    bool_const,
    eval_expr,
    free_vars,
    not_,
)


class SolveResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


_FROM_SAT = {
    sat.SatResult.SAT: SolveResult.SAT,
    sat.SatResult.UNSAT: SolveResult.UNSAT,
    sat.SatResult.UNKNOWN: SolveResult.UNKNOWN,
}


class Model:
    """An assignment of symbolic constants; unmentioned variables are
    unconstrained and default as requested."""

    def __init__(self, values: Dict[str, Union[int, bool]]):
        self._values = dict(values)

    def get_int(self, name: str, default: int = 0) -> int:
        value = self._values.get(name, default)
        return int(value)

    def get_bool(self, name: str, default: bool = False) -> bool:
        return bool(self._values.get(name, default))

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> Dict[str, Union[int, bool]]:
        return dict(self._values)

    def evaluate(self, expr):
        """Evaluate an expression, defaulting missing variables to 0/False."""
        names = free_vars(expr)
        filled = {name: self._values.get(name, 0) for name in names}
        return eval_expr(expr, filled)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({inner})"


class Solver:
    """Incremental solver with an assertion stack.

    Typical use by the symbolic executor::

        solver = Solver()
        solver.push()
        solver.add(path_condition)
        if solver.check() is SolveResult.SAT:
            model = solver.model()
        solver.pop()

    UNKNOWN results are rare (budget exhaustion outside the supported
    fragment); callers decide their own sound default — the executor treats
    UNKNOWN branches as feasible, the refinement checker treats UNKNOWN
    proofs as failures.
    """

    def __init__(self, node_limit: int = 200000, budget=None):
        self._assertions: List[BoolExpr] = []
        self._stack: List[int] = []
        self._cache = sat.TheoryCache()
        self._node_limit = node_limit
        self._model: Optional[Model] = None
        self._result_cache: Dict[frozenset, tuple] = {}
        self.num_checks = 0
        #: Optional[repro.resilience.Budget] — consulted cooperatively at
        #: check entry; exhaustion degrades the check to UNKNOWN (the sound
        #: default everywhere) instead of raising out of the search.
        self.budget = budget
        self.budget_unknowns = 0
        self.injected_unknowns = 0
        #: Guard-flagged queries the difference-bound prepass decided
        #: UNSAT without dispatching the sat core (and how many it
        #: looked at). Telemetry only — the prepass never changes a
        #: verdict, it only reaches UNSAT cheaper.
        self.guard_prepass_unsat = 0
        self.guard_prepass_checks = 0

    # -- assertion stack ---------------------------------------------------

    def push(self) -> None:
        self._stack.append(len(self._assertions))

    def pop(self) -> None:
        if not self._stack:
            raise RuntimeError("pop without matching push")
        depth = self._stack.pop()
        del self._assertions[depth:]

    def add(self, *formulas: Union[BoolExpr, bool]) -> None:
        for formula in formulas:
            if isinstance(formula, bool):
                formula = bool_const(formula)
            if not isinstance(formula, BoolExpr):
                raise TypeError(f"not a boolean formula: {formula!r}")
            self._assertions.append(formula)

    @property
    def assertions(self) -> List[BoolExpr]:
        return list(self._assertions)

    # -- checking ------------------------------------------------------------

    def check(self, *extra: Union[BoolExpr, bool],
              guard: bool = False) -> SolveResult:
        """Satisfiability of the assertions plus ``extra``.

        ``guard=True`` marks a panic-guard feasibility query (the
        executor's hot path): a difference-bound prepass scans the
        conjunction for unit-coefficient atoms and runs a Bellman-Ford
        negative-cycle check first. The prepass only ever answers UNSAT
        (a subset of the constraints being infeasible makes the whole
        query infeasible), so results are exactly what the sat core
        would return — just cheaper when the analysis-discharged facts
        already close the cycle.
        """
        from repro.resilience import faults

        formulas = list(self._assertions)
        for formula in extra:
            if isinstance(formula, bool):
                formula = bool_const(formula)
            formulas.append(formula)

        # Degraded modes come first and are never result-cached: a later
        # check of the same formulas under a fresh budget must re-solve.
        if self.budget is not None and self.budget.exhausted() is not None:
            self.budget_unknowns += 1
            self._model = None
            return SolveResult.UNKNOWN
        if faults.should_fire(faults.SITE_SOLVER):
            self.injected_unknowns += 1
            self._model = None
            return SolveResult.UNKNOWN

        key = frozenset(formulas)
        cached = self._result_cache.get(key)
        if cached is not None:
            result, model = cached
            self._model = model
            return result

        if guard:
            self.guard_prepass_checks += 1
            if _difference_infeasible(formulas):
                # Count the dispatch exactly as the sat core would, so
                # every counter downstream is prepass-agnostic.
                self.num_checks += 1
                self.guard_prepass_unsat += 1
                self._model = None
                self._result_cache[key] = (SolveResult.UNSAT, None)
                return SolveResult.UNSAT

        self.num_checks += 1
        sat_result, model_dict = sat.check_formulas(
            formulas, self._cache, self._node_limit
        )
        result = _FROM_SAT[sat_result]
        model = Model(model_dict) if model_dict is not None else None
        self._model = model
        self._result_cache[key] = (result, model)
        return result

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("no model available (last check was not SAT)")
        return self._model

    # -- derived judgements -----------------------------------------------

    def is_satisfiable(self, *extra: BoolExpr) -> bool:
        """True unless proven UNSAT. The sound default for path pruning:
        an UNKNOWN branch is still explored."""
        return self.check(*extra) is not SolveResult.UNSAT

    def entails(self, formula: BoolExpr) -> bool:
        """True iff assertions ⊨ formula (proven). UNKNOWN counts as not
        proven — the sound default for refinement obligations."""
        return self.check(not_(formula)) is SolveResult.UNSAT

    def equivalent(self, a: BoolExpr, b: BoolExpr) -> bool:
        """True iff a and b agree under the current assertions (proven)."""
        differ = or_differ(a, b)
        return self.check(differ) is SolveResult.UNSAT


#: Edge-count ceiling for the guard prepass; past it, Bellman-Ford costs
#: more than it saves and the sat core (with its theory cache) wins.
_PREPASS_MAX_EDGES = 2000


def _difference_infeasible(formulas: List[BoolExpr]) -> bool:
    """True iff the unit-difference fragment of ``formulas`` is already
    infeasible (a negative cycle in the induced constraint graph).

    Only atoms of the form ``±x + c <= 0``, ``x - y + c <= 0`` or their
    equality variants contribute; everything else is ignored, which is
    what makes an UNSAT answer sound and a SAT answer impossible.
    """
    edges: List[tuple] = []  # (u, v, c) meaning u - v <= c; "" is zero
    stack = list(formulas)
    while stack:
        formula = stack.pop()
        if isinstance(formula, And):
            stack.extend(formula.args)
            continue
        if isinstance(formula, BoolConst):
            if not formula.value:
                return True
            continue
        if not isinstance(formula, Atom) or formula.kind == NE:
            continue
        coeffs = formula.expr.coeffs
        if len(coeffs) > 2 or any(abs(c) != 1 for _, c in coeffs):
            continue
        pos = [n for n, c in coeffs if c == 1]
        neg = [n for n, c in coeffs if c == -1]
        if len(pos) > 1 or len(neg) > 1:
            continue
        u = pos[0] if pos else ""
        v = neg[0] if neg else ""
        # expr <= 0 is u - v + const <= 0, i.e. u - v <= -const.
        edges.append((u, v, -formula.expr.const))
        if formula.kind == EQ:
            edges.append((v, u, formula.expr.const))
    if not edges or len(edges) > _PREPASS_MAX_EDGES:
        return False
    nodes = {""}
    for u, v, _ in edges:
        nodes.add(u)
        nodes.add(v)
    # Bellman-Ford from a virtual all-zeros source: a relaxation still
    # firing after |V| full passes witnesses a negative cycle.
    dist = {n: 0 for n in nodes}
    for _ in range(len(nodes)):
        changed = False
        for u, v, c in edges:
            through = dist[v] + c
            if through < dist[u]:
                dist[u] = through
                changed = True
        if not changed:
            return False
    return True


def or_differ(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    """Formula that is true exactly when ``a`` and ``b`` disagree."""
    return and_(a, not_(b)) | and_(not_(a), b)


def conjunction(formulas: Iterable[BoolExpr]) -> BoolExpr:
    return and_(*list(formulas))

"""Term language: linear integer expressions and boolean formulas.

Integer expressions are kept in a *canonical linear form* — a sorted
coefficient map plus a constant — so that nonlinear terms are unrepresentable
by construction. This mirrors the paper's encoding methodology (section 5.4):
branch conditions in the DNS engine reduce to linear comparisons over label
codes, lengths and flags, and restricting the term language to that fragment
is what keeps automated reasoning fast and predictable.

Boolean formulas are built by smart constructors that constant-fold and
normalise on the fly:

- comparisons normalise to two atom kinds over ``e ⋈ 0``: ``LE`` (``e <= 0``)
  and ``EQ`` (``e == 0``), with ``NE`` kept as a third kind because integer
  negation of ``EQ`` would otherwise blow up into disjunctions;
- negation is pushed to atoms immediately (formulas are always in NNF);
- ``and_``/``or_`` flatten, deduplicate and short-circuit on complements.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union


class NonLinearError(TypeError):
    """Raised when an operation would leave the linear fragment."""


# ---------------------------------------------------------------------------
# Integer expressions: canonical linear combinations.
# ---------------------------------------------------------------------------


class IntExpr:
    """A linear integer expression ``sum(coeff_i * var_i) + const``.

    Immutable; ``coeffs`` is a tuple of ``(var_name, coeff)`` sorted by name
    with no zero coefficients.
    """

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Tuple[Tuple[str, int], ...], const: int):
        self.coeffs = coeffs
        self.const = const
        self._hash = hash((coeffs, const))

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    @property
    def is_var(self) -> bool:
        return len(self.coeffs) == 1 and self.coeffs[0][1] == 1 and self.const == 0

    @property
    def var_name(self) -> str:
        if not self.is_var:
            raise ValueError(f"{self} is not a plain variable")
        return self.coeffs[0][0]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntExpr)
            and self.coeffs == other.coeffs
            and self.const == other.const
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.coeffs:
            return str(self.const)
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        text = " + ".join(parts).replace("+ -", "- ")
        if self.const:
            text += f" + {self.const}" if self.const > 0 else f" - {-self.const}"
        return text


def iconst(value: int) -> IntExpr:
    """Integer literal."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"iconst expects an int, got {type(value).__name__}")
    return IntExpr((), value)


def ivar(name: str) -> IntExpr:
    """Symbolic integer constant (a fresh SMT variable)."""
    return IntExpr(((name, 1),), 0)


def _combine(a: IntExpr, b: IntExpr, sign: int) -> IntExpr:
    merged: Dict[str, int] = dict(a.coeffs)
    for name, coeff in b.coeffs:
        merged[name] = merged.get(name, 0) + sign * coeff
    coeffs = tuple(sorted((n, c) for n, c in merged.items() if c != 0))
    return IntExpr(coeffs, a.const + sign * b.const)


def _as_int_expr(value: Union[IntExpr, int]) -> IntExpr:
    if isinstance(value, IntExpr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not integer expressions")
    if isinstance(value, int):
        return iconst(value)
    raise TypeError(f"not an integer expression: {value!r}")


def iadd(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> IntExpr:
    return _combine(_as_int_expr(a), _as_int_expr(b), 1)


def isub(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> IntExpr:
    return _combine(_as_int_expr(a), _as_int_expr(b), -1)


def ineg(a: Union[IntExpr, int]) -> IntExpr:
    return isub(0, a)


def imul(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> IntExpr:
    """Multiplication; at least one side must be constant (linearity)."""
    ea, eb = _as_int_expr(a), _as_int_expr(b)
    if not ea.is_const and not eb.is_const:
        raise NonLinearError(f"nonlinear product ({ea}) * ({eb})")
    if eb.is_const:
        ea, eb = eb, ea
    k = ea.const
    if k == 0:
        return iconst(0)
    coeffs = tuple((name, coeff * k) for name, coeff in eb.coeffs)
    return IntExpr(coeffs, eb.const * k)


# ---------------------------------------------------------------------------
# Boolean formulas (always in NNF).
# ---------------------------------------------------------------------------


class BoolExpr:
    """Base class for boolean formulas. All instances are immutable."""

    __slots__ = ()

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return and_(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return or_(self, other)

    def __invert__(self) -> "BoolExpr":
        return not_(self)


class BoolConst(BoolExpr):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, BoolConst) and self.value == other.value

    def __hash__(self):
        return hash(("bconst", self.value))

    def __repr__(self):
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


def btrue() -> BoolExpr:
    return TRUE


def bfalse() -> BoolExpr:
    return FALSE


def bool_const(value: bool) -> BoolExpr:
    return TRUE if value else FALSE


class BoolLit(BoolExpr):
    """A (possibly negated) boolean variable."""

    __slots__ = ("name", "positive", "_hash")

    def __init__(self, name: str, positive: bool = True):
        self.name = name
        self.positive = positive
        self._hash = hash(("blit", name, positive))

    def __eq__(self, other):
        return (
            isinstance(other, BoolLit)
            and self.name == other.name
            and self.positive == other.positive
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return self.name if self.positive else f"!{self.name}"


def bvar(name: str) -> BoolExpr:
    """Symbolic boolean constant."""
    return BoolLit(name, True)


#: Atom kinds: expr <= 0, expr == 0, expr != 0.
LE, EQ, NE = "le", "eq", "ne"
_NEGATED_KIND = {EQ: NE, NE: EQ}


class Atom(BoolExpr):
    """A normalised linear atom ``expr <kind> 0``."""

    __slots__ = ("kind", "expr", "_hash")

    def __init__(self, kind: str, expr: IntExpr):
        self.kind = kind
        self.expr = expr
        self._hash = hash(("atom", kind, expr))

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.kind == other.kind
            and self.expr == other.expr
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        op = {LE: "<=", EQ: "==", NE: "!="}[self.kind]
        return f"({self.expr} {op} 0)"


class NaryBool(BoolExpr):
    """Shared representation for conjunction/disjunction."""

    __slots__ = ("args", "_hash")
    symbol = "?"

    def __init__(self, args: Tuple[BoolExpr, ...]):
        self.args = args
        self._hash = hash((type(self).__name__, args))

    def __eq__(self, other):
        return type(other) is type(self) and self.args == other.args

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "(" + f" {self.symbol} ".join(map(repr, self.args)) + ")"


class And(NaryBool):
    __slots__ = ()
    symbol = "&&"


class Or(NaryBool):
    __slots__ = ()
    symbol = "||"


def _normalize_atom(kind: str, expr: IntExpr) -> BoolExpr:
    """Fold constants and divide out the gcd."""
    if expr.is_const:
        value = expr.const
        result = {LE: value <= 0, EQ: value == 0, NE: value != 0}[kind]
        return bool_const(result)
    gcd = 0
    for _, coeff in expr.coeffs:
        gcd = math.gcd(gcd, abs(coeff))
    const = expr.const
    if gcd > 1:
        if kind == LE:
            # g*a + c <= 0  <=>  a <= floor(-c/g)  <=>  a - floor(-c/g) <= 0.
            # Python's // is floor division, which keeps this exact over ints.
            floor_bound = (-expr.const) // gcd
            expr = IntExpr(
                tuple((n, c // gcd) for n, c in expr.coeffs), -floor_bound
            )
        else:
            if expr.const % gcd != 0:
                # g*a + c == 0 has no integer solution.
                return bool_const(kind == NE)
            expr = IntExpr(
                tuple((n, c // gcd) for n, c in expr.coeffs), expr.const // gcd
            )
    if kind in (EQ, NE):
        # Canonical sign: first coefficient positive.
        if expr.coeffs[0][1] < 0:
            expr = IntExpr(
                tuple((n, -c) for n, c in expr.coeffs), -expr.const
            )
    return Atom(kind, expr)


def le(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    """a <= b"""
    return _normalize_atom(LE, isub(a, b))


def lt(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    """a < b (integers: a + 1 <= b)"""
    return _normalize_atom(LE, iadd(isub(a, b), 1))


def ge(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    return le(b, a)


def gt(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    return lt(b, a)


def eq(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    """a == b"""
    return _normalize_atom(EQ, isub(a, b))


def ne(a: Union[IntExpr, int], b: Union[IntExpr, int]) -> BoolExpr:
    """a != b"""
    return _normalize_atom(NE, isub(a, b))


def beq(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    """Boolean equivalence, expanded into NNF."""
    return or_(and_(a, b), and_(not_(a), not_(b)))


def not_(formula: BoolExpr) -> BoolExpr:
    """Negation, pushed down so results stay in NNF."""
    if isinstance(formula, BoolConst):
        return bool_const(not formula.value)
    if isinstance(formula, BoolLit):
        return BoolLit(formula.name, not formula.positive)
    if isinstance(formula, Atom):
        if formula.kind == LE:
            # not(e <= 0)  <=>  -e + 1 <= 0
            return _normalize_atom(LE, iadd(ineg(formula.expr), 1))
        return Atom(_NEGATED_KIND[formula.kind], formula.expr)
    if isinstance(formula, And):
        return or_(*[not_(arg) for arg in formula.args])
    if isinstance(formula, Or):
        return and_(*[not_(arg) for arg in formula.args])
    raise TypeError(f"not a boolean formula: {formula!r}")


def _flatten(cls, formulas: Iterable[BoolExpr], absorbing: BoolConst, neutral: BoolConst):
    seen = []
    seen_set = set()
    for formula in formulas:
        if not isinstance(formula, BoolExpr):
            raise TypeError(f"not a boolean formula: {formula!r}")
        if formula == absorbing:
            return None  # caller returns absorbing
        if formula == neutral:
            continue
        args = formula.args if isinstance(formula, cls) else (formula,)
        for arg in args:
            if arg == absorbing:
                return None
            if arg == neutral or arg in seen_set:
                continue
            seen.append(arg)
            seen_set.add(arg)
    # Complement detection: p and !p.
    for arg in seen:
        if not_(arg) in seen_set and isinstance(arg, (BoolLit, Atom)):
            return None
    return seen


def and_(*formulas: BoolExpr) -> BoolExpr:
    args = _flatten(And, formulas, FALSE, TRUE)
    if args is None:
        return FALSE
    if not args:
        return TRUE
    if len(args) == 1:
        return args[0]
    return And(tuple(args))


def or_(*formulas: BoolExpr) -> BoolExpr:
    args = _flatten(Or, formulas, TRUE, FALSE)
    if args is None:
        return TRUE
    if not args:
        return FALSE
    if len(args) == 1:
        return args[0]
    return Or(tuple(args))


def implies(a: BoolExpr, b: BoolExpr) -> BoolExpr:
    return or_(not_(a), b)


# ---------------------------------------------------------------------------
# Traversal, substitution, evaluation.
# ---------------------------------------------------------------------------

Expr = Union[IntExpr, BoolExpr]


def free_vars(expr: Expr) -> FrozenSet[str]:
    """Names of all symbolic constants (int and bool) in ``expr``."""
    if isinstance(expr, IntExpr):
        return frozenset(name for name, _ in expr.coeffs)
    if isinstance(expr, BoolConst):
        return frozenset()
    if isinstance(expr, BoolLit):
        return frozenset((expr.name,))
    if isinstance(expr, Atom):
        return free_vars(expr.expr)
    if isinstance(expr, NaryBool):
        out: FrozenSet[str] = frozenset()
        for arg in expr.args:
            out |= free_vars(arg)
        return out
    raise TypeError(f"not an expression: {expr!r}")


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace symbolic constants by expressions.

    Int variables map to :class:`IntExpr` (or plain ints); bool variables map
    to :class:`BoolExpr`. Used when instantiating summary specifications at a
    call site (section 5.3's naming-convention association).
    """
    if isinstance(expr, IntExpr):
        result = iconst(expr.const)
        for name, coeff in expr.coeffs:
            replacement = mapping.get(name)
            if replacement is None:
                replacement = ivar(name)
            elif isinstance(replacement, int) and not isinstance(replacement, bool):
                replacement = iconst(replacement)
            elif not isinstance(replacement, IntExpr):
                raise TypeError(f"int variable {name} mapped to non-int {replacement!r}")
            result = iadd(result, imul(coeff, replacement))
        return result
    if isinstance(expr, BoolConst):
        return expr
    if isinstance(expr, BoolLit):
        replacement = mapping.get(expr.name)
        if replacement is None:
            return expr
        if isinstance(replacement, bool):
            replacement = bool_const(replacement)
        if not isinstance(replacement, BoolExpr):
            raise TypeError(f"bool variable {expr.name} mapped to non-bool {replacement!r}")
        return replacement if expr.positive else not_(replacement)
    if isinstance(expr, Atom):
        return _normalize_atom(expr.kind, substitute(expr.expr, mapping))
    if isinstance(expr, And):
        return and_(*[substitute(arg, mapping) for arg in expr.args])
    if isinstance(expr, Or):
        return or_(*[substitute(arg, mapping) for arg in expr.args])
    raise TypeError(f"not an expression: {expr!r}")


def eval_expr(expr: Expr, model: Mapping[str, Union[int, bool]]) -> Union[int, bool]:
    """Evaluate under a full model; raises KeyError on missing variables."""
    if isinstance(expr, IntExpr):
        total = expr.const
        for name, coeff in expr.coeffs:
            total += coeff * int(model[name])
        return total
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, BoolLit):
        value = bool(model[expr.name])
        return value if expr.positive else not value
    if isinstance(expr, Atom):
        value = eval_expr(expr.expr, model)
        return {LE: value <= 0, EQ: value == 0, NE: value != 0}[expr.kind]
    if isinstance(expr, And):
        return all(eval_expr(arg, model) for arg in expr.args)
    if isinstance(expr, Or):
        return any(eval_expr(arg, model) for arg in expr.args)
    raise TypeError(f"not an expression: {expr!r}")

"""Decision procedure for conjunctions of linear integer constraints.

The SAT layer hands this module a set of normalised atoms (``e <= 0``,
``e == 0``, ``e != 0`` over linear integer expressions) and expects one of:

- ``UNSAT`` — proven infeasible;
- ``SAT`` plus an integer model;
- ``UNKNOWN`` — the (rare) escape hatch when the heuristic budget runs out.

The procedure is complete for the shapes DNS-V produces (section 6.3:
variable-vs-constant and variable-vs-variable comparisons, bounded domains,
disequality sets from interned label codes):

1. Gaussian elimination of equalities (exact, over rationals), preferring
   unit-coefficient pivots so back-substitution stays integral.
2. Interval propagation over the inequalities to a fixpoint, with integer
   floor/ceil tightening.
3. Backtracking model search picking the tightest variable first, skipping
   values excluded by disequalities.
4. A Fourier–Motzkin rational-infeasibility check as a safety net so that
   budget exhaustion can still return a definite UNSAT when one exists.
"""

from __future__ import annotations

import enum
import itertools
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.solver.terms import Atom, EQ, LE, NE

LinComb = Dict[str, Fraction]


class TheoryResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class _Constraint:
    """``coeffs . vars + const (kind) 0`` with rational coefficients."""

    __slots__ = ("coeffs", "const", "kind")

    def __init__(self, coeffs: LinComb, const: Fraction, kind: str):
        self.coeffs = {n: c for n, c in coeffs.items() if c != 0}
        self.const = const
        self.kind = kind

    @classmethod
    def from_atom(cls, atom: Atom) -> "_Constraint":
        coeffs = {name: Fraction(coeff) for name, coeff in atom.expr.coeffs}
        return cls(coeffs, Fraction(atom.expr.const), atom.kind)

    def substitute(self, name: str, replacement: LinComb, rep_const: Fraction) -> "_Constraint":
        if name not in self.coeffs:
            return self
        factor = self.coeffs[name]
        coeffs = dict(self.coeffs)
        del coeffs[name]
        for var, coeff in replacement.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + factor * coeff
        return _Constraint(coeffs, self.const + factor * rep_const, self.kind)

    def assign(self, name: str, value: int) -> "_Constraint":
        return self.substitute(name, {}, Fraction(value))

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def const_holds(self) -> bool:
        value = self.const
        return {LE: value <= 0, EQ: value == 0, NE: value != 0}[self.kind]

    def __repr__(self) -> str:
        op = {LE: "<=", EQ: "==", NE: "!="}[self.kind]
        terms = " + ".join(f"{c}*{n}" for n, c in sorted(self.coeffs.items()))
        return f"{terms or 0} + {self.const} {op} 0"


_POS_INF = None  # sentinel meaning "unbounded"


class _Bounds:
    """Per-variable integer intervals; None means unbounded on that side."""

    def __init__(self):
        self.lo: Dict[str, Optional[int]] = {}
        self.hi: Dict[str, Optional[int]] = {}

    def ensure(self, name: str) -> None:
        self.lo.setdefault(name, None)
        self.hi.setdefault(name, None)

    def tighten_lo(self, name: str, value: int) -> bool:
        cur = self.lo.get(name)
        if cur is None or value > cur:
            self.lo[name] = value
            return True
        return False

    def tighten_hi(self, name: str, value: int) -> bool:
        cur = self.hi.get(name)
        if cur is None or value < cur:
            self.hi[name] = value
            return True
        return False

    def empty(self, name: str) -> bool:
        lo, hi = self.lo.get(name), self.hi.get(name)
        return lo is not None and hi is not None and lo > hi

    def copy(self) -> "_Bounds":
        out = _Bounds()
        out.lo = dict(self.lo)
        out.hi = dict(self.hi)
        return out


def _ceil_div(a: Fraction) -> int:
    return -((-a.numerator) // a.denominator)


def _floor_div(a: Fraction) -> int:
    return a.numerator // a.denominator


def _propagate(constraints: List[_Constraint], bounds: _Bounds, rounds: int = 30) -> bool:
    """Interval propagation; returns False on proven emptiness."""
    les = [c for c in constraints if c.kind == LE and not c.is_const]
    for c in constraints:
        for name in c.coeffs:
            bounds.ensure(name)
    for _ in range(rounds):
        changed = False
        for c in les:
            # sum ci*xi + const <= 0. For each xi:
            #   ci*xi <= -const - sum_{j != i} cj*xj
            for name, coeff in c.coeffs.items():
                rhs_max = -c.const
                feasible = True
                for other, ocoeff in c.coeffs.items():
                    if other == name:
                        continue
                    if ocoeff > 0:
                        olo = bounds.lo.get(other)
                        if olo is None:
                            feasible = False
                            break
                        rhs_max -= ocoeff * olo
                    else:
                        ohi = bounds.hi.get(other)
                        if ohi is None:
                            feasible = False
                            break
                        rhs_max -= ocoeff * ohi
                if not feasible:
                    continue
                if coeff > 0:
                    changed |= bounds.tighten_hi(name, _floor_div(rhs_max / coeff))
                else:
                    changed |= bounds.tighten_lo(name, _ceil_div(rhs_max / coeff))
                if bounds.empty(name):
                    return False
        if not changed:
            break
    return True


def _fourier_motzkin_unsat(les: Sequence[_Constraint], limit: int = 4000) -> bool:
    """True iff the LE system is infeasible over the *rationals* (hence over
    the integers). Used as a certain-UNSAT fallback."""
    system: List[Tuple[LinComb, Fraction]] = [
        (dict(c.coeffs), c.const) for c in les
    ]
    while True:
        variables: Set[str] = set()
        for coeffs, _ in system:
            variables.update(coeffs)
        if not variables:
            return any(const > 0 for _, const in system)
        # Eliminate the variable occurring least often to limit blowup.
        var = min(variables, key=lambda v: sum(1 for c, _ in system if v in c))
        uppers, lowers, rest = [], [], []
        for coeffs, const in system:
            coeff = coeffs.get(var, Fraction(0))
            if coeff > 0:
                uppers.append((coeffs, const, coeff))
            elif coeff < 0:
                lowers.append((coeffs, const, coeff))
            else:
                rest.append((coeffs, const))
        new_system = rest
        for ucoeffs, uconst, uc in uppers:
            for lcoeffs, lconst, lc in lowers:
                # uc*x <= -u_rest  and  lc*x >= -l_rest (lc < 0):
                # combine to eliminate x.
                coeffs: LinComb = {}
                for name, c in ucoeffs.items():
                    if name != var:
                        coeffs[name] = coeffs.get(name, Fraction(0)) + c / uc
                for name, c in lcoeffs.items():
                    if name != var:
                        coeffs[name] = coeffs.get(name, Fraction(0)) - c / lc
                const = uconst / uc - lconst / lc
                coeffs = {n: c for n, c in coeffs.items() if c != 0}
                if not coeffs:
                    if const > 0:
                        return True
                else:
                    new_system.append((coeffs, const))
        if len(new_system) > limit:
            return False  # give up: not proven infeasible
        system = [
            (coeffs, const) for coeffs, const in new_system
        ]
        if not system:
            return False


class _SearchBudget:
    def __init__(self, nodes: int):
        self.nodes = nodes
        self.exhausted = False

    def spend(self) -> bool:
        if self.nodes <= 0:
            self.exhausted = True
            return False
        self.nodes -= 1
        return True


def check_conjunction(
    atoms: Iterable[Atom],
    node_limit: int = 50000,
) -> Tuple[TheoryResult, Optional[Dict[str, int]]]:
    """Decide a conjunction of linear integer atoms.

    Returns ``(SAT, model)``, ``(UNSAT, None)`` or ``(UNKNOWN, None)``.
    The model assigns every variable mentioned by the atoms (unconstrained
    variables get arbitrary in-bound values).
    """
    constraints = [_Constraint.from_atom(a) for a in atoms]
    all_vars: Set[str] = set()
    for c in constraints:
        all_vars.update(c.coeffs)

    # Step 1: Gaussian elimination of equalities.
    substitution: Dict[str, Tuple[LinComb, Fraction]] = {}
    remaining: List[_Constraint] = []
    eqs = [c for c in constraints if c.kind == EQ]
    others = [c for c in constraints if c.kind != EQ]
    for eq_c in eqs:
        for name, (rep, rep_const) in substitution.items():
            eq_c = eq_c.substitute(name, rep, rep_const)
        if eq_c.is_const:
            if not eq_c.const_holds():
                return TheoryResult.UNSAT, None
            continue
        # Only eliminate with a unit-coefficient pivot (keeps back
        # substitution integral). Non-unit equations go to the search as a
        # pair of inequalities — complete over the bounded domains DNS-V
        # produces, and exact because fully-assigned constraints are folded.
        pivot = None
        for name, coeff in eq_c.coeffs.items():
            if abs(coeff) == 1:
                pivot = name
                break
        if pivot is None:
            others.append(_Constraint(dict(eq_c.coeffs), eq_c.const, LE))
            others.append(
                _Constraint(
                    {n: -c for n, c in eq_c.coeffs.items()}, -eq_c.const, LE
                )
            )
            others.append(_Constraint(dict(eq_c.coeffs), eq_c.const, EQ))
            continue
        pcoeff = eq_c.coeffs[pivot]
        rep = {
            name: -coeff / pcoeff
            for name, coeff in eq_c.coeffs.items()
            if name != pivot
        }
        rep_const = -eq_c.const / pcoeff
        # Apply the new substitution to earlier ones.
        for name in list(substitution):
            old_rep, old_const = substitution[name]
            if pivot in old_rep:
                factor = old_rep.pop(pivot)
                for var, coeff in rep.items():
                    old_rep[var] = old_rep.get(var, Fraction(0)) + factor * coeff
                substitution[name] = (
                    {n: c for n, c in old_rep.items() if c != 0},
                    old_const + factor * rep_const,
                )
        substitution[pivot] = (rep, rep_const)

    for c in others:
        for name, (rep, rep_const) in substitution.items():
            c = c.substitute(name, rep, rep_const)
        if c.is_const:
            if not c.const_holds():
                return TheoryResult.UNSAT, None
            continue
        remaining.append(c)

    # Step 2: interval propagation.
    bounds = _Bounds()
    for var in all_vars:
        bounds.ensure(var)
    if not _propagate(remaining, bounds):
        return TheoryResult.UNSAT, None

    # Step 3: backtracking search for an integer model.
    budget = _SearchBudget(node_limit)
    assignment = _search(remaining, bounds, {}, budget)
    if assignment is not None:
        model = _complete_model(assignment, substitution, bounds, all_vars)
        if model is not None:
            return TheoryResult.SAT, model
        return TheoryResult.UNKNOWN, None

    if budget.exhausted:
        les = [c for c in remaining if c.kind == LE]
        if _fourier_motzkin_unsat(les):
            return TheoryResult.UNSAT, None
        return TheoryResult.UNKNOWN, None
    return TheoryResult.UNSAT, None


def _search(
    constraints: List[_Constraint],
    bounds: _Bounds,
    assignment: Dict[str, int],
    budget: _SearchBudget,
) -> Optional[Dict[str, int]]:
    if not budget.spend():
        return None

    # Fold fully-assigned constraints; collect free variables.
    active: List[_Constraint] = []
    free: Set[str] = set()
    for c in constraints:
        if c.is_const:
            if not c.const_holds():
                return None
            continue
        active.append(c)
        free.update(c.coeffs)
    if not active:
        return dict(assignment)

    local = bounds.copy()
    if not _propagate(active, local):
        return None
    for var in free:
        if local.empty(var):
            return None

    var = _pick_variable(active, local, free)
    forbidden = _unit_forbidden_values(active, var)
    for value in _candidates(local.lo.get(var), local.hi.get(var), forbidden, budget):
        if not budget.spend():
            return None
        new_constraints = [c.assign(var, value) for c in active]
        new_bounds = local.copy()
        new_bounds.lo[var] = new_bounds.hi[var] = value
        assignment[var] = value
        result = _search(new_constraints, new_bounds, assignment, budget)
        if result is not None:
            return result
        del assignment[var]
        if budget.exhausted:
            return None
    return None


def _pick_variable(constraints: List[_Constraint], bounds: _Bounds, free: Set[str]) -> str:
    def width(name: str) -> Tuple[int, int]:
        lo, hi = bounds.lo.get(name), bounds.hi.get(name)
        if lo is not None and hi is not None:
            return (0, hi - lo)
        if lo is not None or hi is not None:
            return (1, 0)
        return (2, 0)

    occurrences: Dict[str, int] = {name: 0 for name in free}
    for c in constraints:
        for name in c.coeffs:
            occurrences[name] = occurrences.get(name, 0) + 1
    return min(free, key=lambda n: (width(n), -occurrences.get(n, 0), n))


def _unit_forbidden_values(constraints: List[_Constraint], var: str) -> Set[int]:
    """Values directly excluded by unit disequalities ``var != value``."""
    out: Set[int] = set()
    for c in constraints:
        if c.kind == NE and set(c.coeffs) == {var}:
            coeff = c.coeffs[var]
            value = -c.const / coeff
            if value.denominator == 1:
                out.add(int(value))
    return out


def _candidates(
    lo: Optional[int],
    hi: Optional[int],
    forbidden: Set[int],
    budget: _SearchBudget,
    limit: int = 4096,
):
    """Yield candidate integer values within [lo, hi] avoiding forbidden
    values: ascending from lo when it exists, expanding from 0 otherwise.

    If the generator truncates while more in-domain values could exist, it
    marks the budget exhausted so the caller reports UNKNOWN instead of an
    unsound UNSAT.
    """
    produced = 0
    if lo is not None:
        value = lo
        while hi is None or value <= hi:
            if produced >= limit:
                budget.exhausted = True
                return
            if value not in forbidden:
                yield value
                produced += 1
            value += 1
        return
    if hi is not None:
        value = hi
        while True:
            if produced >= limit:
                budget.exhausted = True
                return
            if value not in forbidden:
                yield value
                produced += 1
            value -= 1
    else:
        for value in itertools.chain([0], *[(k, -k) for k in range(1, limit)]):
            if value not in forbidden:
                yield value
                produced += 1
        budget.exhausted = True


def _complete_model(
    assignment: Dict[str, int],
    substitution: Dict[str, Tuple[LinComb, Fraction]],
    bounds: _Bounds,
    all_vars: Set[str],
) -> Optional[Dict[str, int]]:
    model = dict(assignment)
    # Free variables never touched by the search: any in-bound value works.
    for var in all_vars:
        if var in model or var in substitution:
            continue
        lo, hi = bounds.lo.get(var), bounds.hi.get(var)
        if lo is not None:
            model[var] = lo
        elif hi is not None:
            model[var] = hi
        else:
            model[var] = 0
    # Back-substitute eliminated variables; order-independent because each
    # substitution RHS only mentions non-eliminated variables.
    for var, (rep, rep_const) in substitution.items():
        value = rep_const
        for name, coeff in rep.items():
            if name not in model:
                model[name] = 0
            value += coeff * model[name]
        if value.denominator != 1:
            return None  # non-integral witness; caller reports UNKNOWN
        model[var] = int(value)
    return model

"""Specifications (paper section 6.1).

- :mod:`repro.spec.toplevel` — the ~200-line executable top-level
  specification of authoritative resolution (Figure 9): unlike the engine,
  it never walks a tree; it resolves by iterative filtering over the flat
  zone RR list, following RFC 1034/2308/4592 behaviour. Written in GoPy so
  the same refinement machinery that runs the engine runs the spec.
- :mod:`repro.spec.namespec` — the manual abstract specification of the
  Name layer (Figure 10) and the interface relation used by the
  section 6.3 refinement experiment.
- :mod:`repro.spec.reference` — an independent plain-Python reference
  resolver over :mod:`repro.dns` objects, used as the third implementation
  that validates counterexamples and powers the differential tester.
"""

from repro.spec.reference import reference_resolve

__all__ = ["reference_resolve"]
